//! Programs: a set of rules plus inline facts and `@`-annotations.

use crate::fact::Fact;
use crate::rule::{Rule, RuleId};
use crate::symbol::{intern, Sym};
use std::collections::BTreeSet;
use std::fmt;

/// The kind of an `@`-annotation (Section 5, "Annotations").
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AnnotationKind {
    /// `@input("P")` — P is an extensional (source) predicate.
    Input,
    /// `@output("P")` — P is a sink / answer predicate (the paper's `Ans`).
    Output,
    /// `@bind("P", "source spec")` — bind P to an external source.
    Bind,
    /// `@qbind("P", "query spec")` — bind P to an external query.
    QBind,
    /// `@mapping("P", position, "column")` — harmonise named and positional
    /// perspectives.
    Mapping,
    /// `@post("P", "directive")` — post-processing directive (sorting,
    /// SQL-style aggregation, certain-answer filtering).
    Post,
}

impl AnnotationKind {
    /// The surface keyword of the annotation.
    pub fn keyword(&self) -> &'static str {
        match self {
            AnnotationKind::Input => "input",
            AnnotationKind::Output => "output",
            AnnotationKind::Bind => "bind",
            AnnotationKind::QBind => "qbind",
            AnnotationKind::Mapping => "mapping",
            AnnotationKind::Post => "post",
        }
    }

    /// Parse an annotation keyword.
    pub fn from_keyword(kw: &str) -> Option<AnnotationKind> {
        Some(match kw {
            "input" => AnnotationKind::Input,
            "output" => AnnotationKind::Output,
            "bind" => AnnotationKind::Bind,
            "qbind" => AnnotationKind::QBind,
            "mapping" => AnnotationKind::Mapping,
            "post" => AnnotationKind::Post,
            _ => return None,
        })
    }
}

/// An `@`-annotation attached to a predicate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Annotation {
    /// The annotation kind.
    pub kind: AnnotationKind,
    /// The annotated predicate.
    pub predicate: Sym,
    /// Further positional arguments (source specs, directives, ...).
    pub args: Vec<String>,
}

impl Annotation {
    /// Convenience constructor.
    pub fn new(kind: AnnotationKind, predicate: &str, args: Vec<String>) -> Self {
        Annotation {
            kind,
            predicate: intern(predicate),
            args,
        }
    }
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}(\"{}\"", self.kind.keyword(), self.predicate)?;
        for a in &self.args {
            write!(f, ", \"{a}\"")?;
        }
        write!(f, ").")
    }
}

/// A Vadalog program: rules, inline facts and annotations.
#[derive(Clone, Default, PartialEq, Debug)]
pub struct Program {
    /// The rules, in source order. `RuleId(i)` refers to `rules[i]`.
    pub rules: Vec<Rule>,
    /// Inline facts (ground atoms written directly in the program text).
    pub facts: Vec<Fact>,
    /// Annotations.
    pub annotations: Vec<Annotation>,
}

impl Program {
    /// The empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a program from rules only.
    pub fn from_rules(rules: Vec<Rule>) -> Self {
        Program {
            rules,
            facts: Vec::new(),
            annotations: Vec::new(),
        }
    }

    /// Append a rule, returning its id.
    pub fn add_rule(&mut self, rule: Rule) -> RuleId {
        self.rules.push(rule);
        RuleId((self.rules.len() - 1) as u32)
    }

    /// Append an inline fact.
    pub fn add_fact(&mut self, fact: Fact) {
        self.facts.push(fact);
    }

    /// Append an annotation.
    pub fn add_annotation(&mut self, annotation: Annotation) {
        self.annotations.push(annotation);
    }

    /// Look up a rule by id.
    pub fn rule(&self, id: RuleId) -> Option<&Rule> {
        self.rules.get(id.0 as usize)
    }

    /// Iterate over `(RuleId, &Rule)` pairs.
    pub fn rules_with_ids(&self) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.rules
            .iter()
            .enumerate()
            .map(|(i, r)| (RuleId(i as u32), r))
    }

    /// Predicates marked `@input`.
    pub fn input_predicates(&self) -> BTreeSet<Sym> {
        self.annotated(AnnotationKind::Input)
    }

    /// Predicates marked `@output` (the answer predicates `Ans`).
    ///
    /// If no `@output` annotation is present, every predicate that appears in
    /// a head but never in a body is treated as an output, which matches how
    /// the paper underlines answer predicates in its examples.
    pub fn output_predicates(&self) -> BTreeSet<Sym> {
        let explicit = self.annotated(AnnotationKind::Output);
        if !explicit.is_empty() {
            return explicit;
        }
        let mut heads = BTreeSet::new();
        let mut bodies = BTreeSet::new();
        for r in &self.rules {
            heads.extend(r.head_predicates());
            bodies.extend(r.body_predicates());
        }
        let derived: BTreeSet<Sym> = heads.difference(&bodies).copied().collect();
        if derived.is_empty() {
            heads
        } else {
            derived
        }
    }

    /// Predicates with an annotation of the given kind.
    pub fn annotated(&self, kind: AnnotationKind) -> BTreeSet<Sym> {
        self.annotations
            .iter()
            .filter(|a| a.kind == kind)
            .map(|a| a.predicate)
            .collect()
    }

    /// Extensional predicates: those marked `@input`, plus every predicate
    /// that occurs in the facts or only in rule bodies.
    pub fn edb_predicates(&self) -> BTreeSet<Sym> {
        let mut out = self.input_predicates();
        for f in &self.facts {
            out.insert(f.predicate);
        }
        let mut heads = BTreeSet::new();
        let mut bodies = BTreeSet::new();
        for r in &self.rules {
            heads.extend(r.head_predicates());
            bodies.extend(r.body_predicates());
            for a in r.negated_atoms() {
                bodies.insert(a.predicate);
            }
        }
        out.extend(bodies.difference(&heads).copied());
        out
    }

    /// Intensional predicates: those appearing in some rule head.
    pub fn idb_predicates(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        for r in &self.rules {
            out.extend(r.head_predicates());
        }
        out
    }

    /// All predicates mentioned anywhere in the program.
    pub fn all_predicates(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        for r in &self.rules {
            out.extend(r.body_predicates());
            out.extend(r.head_predicates());
            for a in r.negated_atoms() {
                out.insert(a.predicate);
            }
        }
        for f in &self.facts {
            out.insert(f.predicate);
        }
        for a in &self.annotations {
            out.insert(a.predicate);
        }
        out
    }

    /// Total number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Is the program empty (no rules)?
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Merge another program into this one (rules, facts, annotations are
    /// appended).
    pub fn extend(&mut self, other: Program) {
        self.rules.extend(other.rules);
        self.facts.extend(other.facts);
        self.annotations.extend(other.annotations);
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.annotations {
            writeln!(f, "{a}")?;
        }
        for fact in &self.facts {
            writeln!(f, "{fact}.")?;
        }
        for r in &self.rules {
            writeln!(f, "{r}.")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::rule::Rule;

    fn example3() -> Program {
        // Company(x) → ∃p KeyPerson(p, x)
        // Control(x, y), KeyPerson(p, x) → KeyPerson(p, y)
        let mut p = Program::new();
        p.add_rule(Rule::tgd(
            vec![Atom::vars("Company", &["x"])],
            vec![Atom::vars("KeyPerson", &["p", "x"])],
        ));
        p.add_rule(Rule::tgd(
            vec![
                Atom::vars("Control", &["x", "y"]),
                Atom::vars("KeyPerson", &["p", "x"]),
            ],
            vec![Atom::vars("KeyPerson", &["p", "y"])],
        ));
        p
    }

    #[test]
    fn rule_ids_are_positional() {
        let p = example3();
        assert_eq!(p.len(), 2);
        assert!(p.rule(RuleId(0)).unwrap().is_linear());
        assert!(!p.rule(RuleId(1)).unwrap().is_linear());
        assert!(p.rule(RuleId(2)).is_none());
    }

    #[test]
    fn edb_and_idb_are_derived_from_rule_structure() {
        let p = example3();
        let edb: Vec<String> = p.edb_predicates().iter().map(|s| s.as_str()).collect();
        let idb: Vec<String> = p.idb_predicates().iter().map(|s| s.as_str()).collect();
        assert!(edb.contains(&"Company".to_string()));
        assert!(edb.contains(&"Control".to_string()));
        assert_eq!(idb, vec!["KeyPerson".to_string()]);
    }

    #[test]
    fn output_defaults_to_head_only_predicates_then_all_heads() {
        let p = example3();
        // KeyPerson appears in both heads and bodies, and nothing else is a
        // head: fall back to all head predicates.
        let out: Vec<String> = p.output_predicates().iter().map(|s| s.as_str()).collect();
        assert_eq!(out, vec!["KeyPerson".to_string()]);
    }

    #[test]
    fn explicit_output_annotation_wins() {
        let mut p = example3();
        p.add_annotation(Annotation::new(AnnotationKind::Output, "Company", vec![]));
        let out: Vec<String> = p.output_predicates().iter().map(|s| s.as_str()).collect();
        assert_eq!(out, vec!["Company".to_string()]);
    }

    #[test]
    fn annotation_keywords_round_trip() {
        for k in [
            AnnotationKind::Input,
            AnnotationKind::Output,
            AnnotationKind::Bind,
            AnnotationKind::QBind,
            AnnotationKind::Mapping,
            AnnotationKind::Post,
        ] {
            assert_eq!(AnnotationKind::from_keyword(k.keyword()), Some(k));
        }
        assert_eq!(AnnotationKind::from_keyword("nope"), None);
    }

    #[test]
    fn extend_merges_programs() {
        let mut p = example3();
        let mut q = Program::new();
        q.add_fact(Fact::new("Company", vec!["HSBC".into()]));
        q.add_annotation(Annotation::new(AnnotationKind::Input, "Company", vec![]));
        p.extend(q);
        assert_eq!(p.facts.len(), 1);
        assert_eq!(p.annotations.len(), 1);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn display_emits_parseable_text_shape() {
        let p = example3();
        let text = p.to_string();
        assert!(text.contains("Company(x) -> KeyPerson(p, x)."));
        assert!(text.contains("Control(x, y), KeyPerson(p, x) -> KeyPerson(p, y)."));
    }
}
