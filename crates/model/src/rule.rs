//! Rules: existential rules (tuple-generating dependencies), negative
//! constraints and equality-generating dependencies, together with body
//! conditions and assignments (Section 2 and Section 5 of the paper).

use crate::atom::Atom;
use crate::expr::{CmpOp, Expr};
use crate::term::{Term, Var};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a rule inside a [`crate::program::Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RuleId(pub u32);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ρ{}", self.0)
    }
}

/// An atom in a rule head. Alias of [`Atom`]; kept as a distinct name so
/// signatures read like the paper ("head atoms").
pub type HeadAtom = Atom;

/// A comparison condition in a rule body, e.g. `w > 0.5`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Condition {
    /// Left-hand expression.
    pub left: Expr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand expression.
    pub right: Expr,
}

impl Condition {
    /// Convenience constructor.
    pub fn new(left: Expr, op: CmpOp, right: Expr) -> Self {
        Condition { left, op, right }
    }

    /// Variables mentioned on either side.
    pub fn variables(&self) -> Vec<Var> {
        let mut out = self.left.variables();
        for v in self.right.variables() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// An assignment in a rule body, e.g. `v = msum(w, <y>)` or
/// `total = w1 + w2`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Assignment {
    /// The variable being defined.
    pub var: Var,
    /// The defining expression (may contain a monotonic aggregation).
    pub expr: Expr,
}

impl Assignment {
    /// Convenience constructor.
    pub fn new(var: Var, expr: Expr) -> Self {
        Assignment { var, expr }
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.var, self.expr)
    }
}

/// A body literal: a (possibly negated) atom, a condition or an assignment.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Literal {
    /// A positive atom.
    Atom(Atom),
    /// A negated atom (`not R(x̄)`), interpreted under stratified negation.
    Negated(Atom),
    /// A comparison condition.
    Condition(Condition),
    /// An assignment.
    Assignment(Assignment),
}

impl Literal {
    /// The positive atom, if this literal is one.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Literal::Atom(a) => Some(a),
            _ => None,
        }
    }

    /// Variables mentioned by the literal.
    pub fn variables(&self) -> Vec<Var> {
        match self {
            Literal::Atom(a) | Literal::Negated(a) => a.variables().collect(),
            Literal::Condition(c) => c.variables(),
            Literal::Assignment(a) => {
                let mut vs = a.expr.variables();
                if !vs.contains(&a.var) {
                    vs.push(a.var);
                }
                vs
            }
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Atom(a) => write!(f, "{a}"),
            Literal::Negated(a) => write!(f, "not {a}"),
            Literal::Condition(c) => write!(f, "{c}"),
            Literal::Assignment(a) => write!(f, "{a}"),
        }
    }
}

/// The head of a rule.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum RuleHead {
    /// Ordinary (possibly multi-atom) TGD head, with implicit existential
    /// quantification of head-only variables.
    Atoms(Vec<HeadAtom>),
    /// Negative constraint: `ϕ(x̄) → ⊥`.
    Falsum,
    /// Equality-generating dependency: `ϕ(x̄) → xi = xj`.
    Equality(Term, Term),
}

impl fmt::Display for RuleHead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleHead::Atoms(atoms) => {
                for (i, a) in atoms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                Ok(())
            }
            RuleHead::Falsum => write!(f, "⊥"),
            RuleHead::Equality(a, b) => write!(f, "{a} = {b}"),
        }
    }
}

/// A Vadalog rule.
///
/// A rule is a first-order sentence `∀x̄∀ȳ (ϕ(x̄, ȳ) → ∃z̄ ψ(x̄, z̄))` where the
/// body ϕ is a conjunction of [`Literal`]s and the head ψ is a [`RuleHead`].
/// Existential variables are *implicit*: every head variable that is not
/// bound by a positive body atom or by an assignment is existentially
/// quantified, as in Examples 3–7 of the paper.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Rule {
    /// Optional textual label (the paper numbers rules `1:`, `2:`, ...).
    pub label: Option<String>,
    /// Body literals.
    pub body: Vec<Literal>,
    /// Head.
    pub head: RuleHead,
}

impl Rule {
    /// Build a plain TGD from body atoms and head atoms.
    pub fn tgd(body: Vec<Atom>, head: Vec<Atom>) -> Self {
        Rule {
            label: None,
            body: body.into_iter().map(Literal::Atom).collect(),
            head: RuleHead::Atoms(head),
        }
    }

    /// Build a rule with arbitrary body literals and a single head atom.
    pub fn new(body: Vec<Literal>, head: Atom) -> Self {
        Rule {
            label: None,
            body,
            head: RuleHead::Atoms(vec![head]),
        }
    }

    /// Build a negative constraint `body → ⊥`.
    pub fn constraint(body: Vec<Literal>) -> Self {
        Rule {
            label: None,
            body,
            head: RuleHead::Falsum,
        }
    }

    /// Build an equality-generating dependency `body → a = b`.
    pub fn egd(body: Vec<Literal>, a: Term, b: Term) -> Self {
        Rule {
            label: None,
            body,
            head: RuleHead::Equality(a, b),
        }
    }

    /// Attach a label, builder-style.
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = Some(label.to_string());
        self
    }

    /// The positive body atoms, in order.
    pub fn body_atoms(&self) -> Vec<&Atom> {
        self.body.iter().filter_map(Literal::as_atom).collect()
    }

    /// The negated body atoms, in order.
    pub fn negated_atoms(&self) -> Vec<&Atom> {
        self.body
            .iter()
            .filter_map(|l| match l {
                Literal::Negated(a) => Some(a),
                _ => None,
            })
            .collect()
    }

    /// The body conditions, in order.
    pub fn conditions(&self) -> Vec<&Condition> {
        self.body
            .iter()
            .filter_map(|l| match l {
                Literal::Condition(c) => Some(c),
                _ => None,
            })
            .collect()
    }

    /// The body assignments, in order.
    pub fn assignments(&self) -> Vec<&Assignment> {
        self.body
            .iter()
            .filter_map(|l| match l {
                Literal::Assignment(a) => Some(a),
                _ => None,
            })
            .collect()
    }

    /// The head atoms (empty for constraints and EGDs).
    pub fn head_atoms(&self) -> Vec<&Atom> {
        match &self.head {
            RuleHead::Atoms(atoms) => atoms.iter().collect(),
            _ => Vec::new(),
        }
    }

    /// Is this a *linear* rule, i.e. does the body contain at most one
    /// (positive) atom? (Section 2.1.)
    pub fn is_linear(&self) -> bool {
        self.body_atoms().len() <= 1
    }

    /// Is this a plain TGD (atoms head, no negation, no constraints/EGDs)?
    pub fn is_tgd(&self) -> bool {
        matches!(self.head, RuleHead::Atoms(_))
    }

    /// Variables bound by the body: variables of positive atoms plus
    /// assignment-defined variables.
    pub fn body_bound_variables(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        for a in self.body_atoms() {
            out.extend(a.variables());
        }
        for asg in self.assignments() {
            out.insert(asg.var);
        }
        out
    }

    /// Variables appearing in the head.
    pub fn head_variables(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        match &self.head {
            RuleHead::Atoms(atoms) => {
                for a in atoms {
                    out.extend(a.variables());
                }
            }
            RuleHead::Falsum => {}
            RuleHead::Equality(a, b) => {
                if let Some(v) = a.as_var() {
                    out.insert(v);
                }
                if let Some(v) = b.as_var() {
                    out.insert(v);
                }
            }
        }
        out
    }

    /// The existentially quantified variables of the rule: head variables not
    /// bound by the body.
    pub fn existential_variables(&self) -> BTreeSet<Var> {
        let bound = self.body_bound_variables();
        self.head_variables()
            .into_iter()
            .filter(|v| !bound.contains(v))
            .collect()
    }

    /// Frontier variables: head variables that *are* bound by the body.
    pub fn frontier_variables(&self) -> BTreeSet<Var> {
        let bound = self.body_bound_variables();
        self.head_variables()
            .into_iter()
            .filter(|v| bound.contains(v))
            .collect()
    }

    /// Does this rule have existential quantification in its head?
    pub fn has_existentials(&self) -> bool {
        !self.existential_variables().is_empty()
    }

    /// All distinct variables in the rule.
    pub fn all_variables(&self) -> BTreeSet<Var> {
        let mut out = self.body_bound_variables();
        for l in &self.body {
            out.extend(l.variables());
        }
        out.extend(self.head_variables());
        out
    }

    /// Does any body assignment contain a monotonic aggregation?
    pub fn has_aggregation(&self) -> bool {
        self.assignments()
            .iter()
            .any(|a| a.expr.contains_aggregate())
    }

    /// Predicates appearing in positive body atoms.
    pub fn body_predicates(&self) -> Vec<crate::symbol::Sym> {
        self.body_atoms().iter().map(|a| a.predicate).collect()
    }

    /// Predicates appearing in the head.
    pub fn head_predicates(&self) -> Vec<crate::symbol::Sym> {
        self.head_atoms().iter().map(|a| a.predicate).collect()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(l) = &self.label {
            write!(f, "{l}: ")?;
        }
        for (i, lit) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{lit}")?;
        }
        write!(f, " -> {}", self.head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, Aggregation};

    /// Rule 1 of Example 7: Company(x) → ∃p∃s Owns(p, s, x)
    fn company_owns() -> Rule {
        Rule::tgd(
            vec![Atom::vars("Company", &["x"])],
            vec![Atom::vars("Owns", &["p", "s", "x"])],
        )
    }

    /// Rule 4 of Example 7: PSC(x,p), Controls(x,y) → ∃s Owns(p, s, y)
    fn psc_controls_owns() -> Rule {
        Rule::tgd(
            vec![
                Atom::vars("PSC", &["x", "p"]),
                Atom::vars("Controls", &["x", "y"]),
            ],
            vec![Atom::vars("Owns", &["p", "s", "y"])],
        )
    }

    #[test]
    fn existential_variables_are_head_only_variables() {
        let r = company_owns();
        let ex: Vec<_> = r.existential_variables().into_iter().collect();
        assert_eq!(ex, vec![Var::new("p"), Var::new("s")]);
        assert_eq!(
            r.frontier_variables().into_iter().collect::<Vec<_>>(),
            vec![Var::new("x")]
        );
        assert!(r.has_existentials());
        assert!(r.is_linear());
    }

    #[test]
    fn non_linear_rule_detection() {
        let r = psc_controls_owns();
        assert!(!r.is_linear());
        assert_eq!(
            r.existential_variables().into_iter().collect::<Vec<_>>(),
            vec![Var::new("s")]
        );
    }

    #[test]
    fn assignment_bound_variables_are_not_existential() {
        // Control(x,y), Own(y,z,w), v = msum(w, <y>), v > 0.5 -> Control(x,z)
        let r = Rule {
            label: None,
            body: vec![
                Literal::Atom(Atom::vars("Control", &["x", "y"])),
                Literal::Atom(Atom::vars("Own", &["y", "z", "w"])),
                Literal::Assignment(Assignment::new(
                    Var::new("v"),
                    Expr::Aggregate(Aggregation {
                        func: AggFunc::MSum,
                        arg: Box::new(Expr::var("w")),
                        contributors: vec![Var::new("y")],
                    }),
                )),
                Literal::Condition(Condition::new(
                    Expr::var("v"),
                    CmpOp::Gt,
                    Expr::constant(0.5),
                )),
            ],
            head: RuleHead::Atoms(vec![Atom::vars("Control", &["x", "z"])]),
        };
        assert!(r.existential_variables().is_empty());
        assert!(r.has_aggregation());
        assert_eq!(r.conditions().len(), 1);
        assert_eq!(r.assignments().len(), 1);
        assert_eq!(r.body_atoms().len(), 2);
    }

    #[test]
    fn constraints_and_egds() {
        // Own(x, x, w) -> ⊥  (rule 6 of Example 6)
        let c = Rule::constraint(vec![Literal::Atom(Atom::vars("Own", &["x", "x", "w"]))]);
        assert!(!c.is_tgd());
        assert!(c.head_atoms().is_empty());
        assert_eq!(c.head_variables().len(), 0);

        // Incorp(y,z), Own(x1,y,w1), Own(x2,z,w1) -> x1 = x2 (rule 5, Example 6)
        let e = Rule::egd(
            vec![
                Literal::Atom(Atom::vars("Incorp", &["y", "z"])),
                Literal::Atom(Atom::vars("Own", &["x1", "y", "w1"])),
                Literal::Atom(Atom::vars("Own", &["x2", "z", "w1"])),
            ],
            Term::var("x1"),
            Term::var("x2"),
        );
        assert!(!e.is_tgd());
        assert_eq!(e.head_variables().len(), 2);
        assert!(e.existential_variables().is_empty());
    }

    #[test]
    fn negated_atoms_are_tracked_separately() {
        let r = Rule {
            label: None,
            body: vec![
                Literal::Atom(Atom::vars("Company", &["x"])),
                Literal::Negated(Atom::vars("Dissolved", &["x"])),
            ],
            head: RuleHead::Atoms(vec![Atom::vars("Active", &["x"])]),
        };
        assert_eq!(r.body_atoms().len(), 1);
        assert_eq!(r.negated_atoms().len(), 1);
    }

    #[test]
    fn display_reads_like_the_paper() {
        let r = company_owns().with_label("1");
        assert_eq!(r.to_string(), "1: Company(x) -> Owns(p, s, x)");
    }

    #[test]
    fn predicate_lists() {
        let r = psc_controls_owns();
        let body: Vec<String> = r.body_predicates().iter().map(|s| s.as_str()).collect();
        assert_eq!(body, vec!["PSC", "Controls"]);
        let head: Vec<String> = r.head_predicates().iter().map(|s| s.as_str()).collect();
        assert_eq!(head, vec!["Owns"]);
    }
}
