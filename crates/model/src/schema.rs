//! Relational schema: predicate symbols with arities (and optional column
//! names), derived from programs and databases.

use crate::program::Program;
use crate::symbol::{intern, Sym};
use std::collections::BTreeMap;
use std::fmt;

/// Information about one predicate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PredicateInfo {
    /// Predicate symbol.
    pub predicate: Sym,
    /// Arity.
    pub arity: usize,
    /// Optional column names (used by `@mapping` annotations and CSV record
    /// managers).
    pub columns: Option<Vec<String>>,
}

/// A schema: a finite set of predicate symbols with associated arity
/// (Section 2.1).
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Schema {
    predicates: BTreeMap<Sym, PredicateInfo>,
}

/// Error raised when the same predicate is used with two different arities.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArityConflict {
    /// The offending predicate.
    pub predicate: String,
    /// Arity already recorded.
    pub existing: usize,
    /// Conflicting arity.
    pub new: usize,
}

impl fmt::Display for ArityConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "predicate {} used with arity {} and {}",
            self.predicate, self.existing, self.new
        )
    }
}

impl std::error::Error for ArityConflict {}

impl Schema {
    /// The empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or re-register) a predicate with its arity.
    pub fn declare(&mut self, predicate: &str, arity: usize) -> Result<(), ArityConflict> {
        self.declare_sym(intern(predicate), arity)
    }

    /// Register a predicate by symbol.
    pub fn declare_sym(&mut self, predicate: Sym, arity: usize) -> Result<(), ArityConflict> {
        match self.predicates.get(&predicate) {
            Some(info) if info.arity != arity => Err(ArityConflict {
                predicate: predicate.as_str(),
                existing: info.arity,
                new: arity,
            }),
            Some(_) => Ok(()),
            None => {
                self.predicates.insert(
                    predicate,
                    PredicateInfo {
                        predicate,
                        arity,
                        columns: None,
                    },
                );
                Ok(())
            }
        }
    }

    /// Attach column names to a predicate (it must already be declared or
    /// it is declared with the columns' arity).
    pub fn set_columns(&mut self, predicate: Sym, columns: Vec<String>) {
        let arity = columns.len();
        let entry = self
            .predicates
            .entry(predicate)
            .or_insert_with(|| PredicateInfo {
                predicate,
                arity,
                columns: None,
            });
        entry.columns = Some(columns);
    }

    /// Arity of a predicate, if declared.
    pub fn arity(&self, predicate: Sym) -> Option<usize> {
        self.predicates.get(&predicate).map(|i| i.arity)
    }

    /// Information record for a predicate, if declared.
    pub fn info(&self, predicate: Sym) -> Option<&PredicateInfo> {
        self.predicates.get(&predicate)
    }

    /// Is the predicate declared?
    pub fn contains(&self, predicate: Sym) -> bool {
        self.predicates.contains_key(&predicate)
    }

    /// All declared predicates, in deterministic order.
    pub fn predicates(&self) -> impl Iterator<Item = &PredicateInfo> {
        self.predicates.values()
    }

    /// Number of declared predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Infer the schema of a program from all atoms in rules, facts and
    /// annotations. Fails on arity conflicts.
    pub fn infer(program: &Program) -> Result<Schema, ArityConflict> {
        let mut schema = Schema::new();
        for rule in &program.rules {
            for atom in rule.body_atoms() {
                schema.declare_sym(atom.predicate, atom.arity())?;
            }
            for atom in rule.negated_atoms() {
                schema.declare_sym(atom.predicate, atom.arity())?;
            }
            for atom in rule.head_atoms() {
                schema.declare_sym(atom.predicate, atom.arity())?;
            }
        }
        for fact in &program.facts {
            schema.declare_sym(fact.predicate, fact.arity())?;
        }
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::fact::Fact;
    use crate::program::Program;
    use crate::rule::Rule;

    #[test]
    fn declare_and_lookup() {
        let mut s = Schema::new();
        s.declare("Own", 3).unwrap();
        s.declare("Control", 2).unwrap();
        assert_eq!(s.arity(intern("Own")), Some(3));
        assert_eq!(s.arity(intern("Missing")), None);
        assert!(s.contains(intern("Control")));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn conflicting_arity_is_rejected() {
        let mut s = Schema::new();
        s.declare("Own", 3).unwrap();
        let err = s.declare("Own", 2).unwrap_err();
        assert_eq!(err.existing, 3);
        assert_eq!(err.new, 2);
        // redeclaring with same arity is fine
        assert!(s.declare("Own", 3).is_ok());
    }

    #[test]
    fn infer_from_program() {
        let mut p = Program::new();
        p.add_rule(Rule::tgd(
            vec![Atom::vars("Own", &["x", "y", "w"])],
            vec![Atom::vars("SoftLink", &["x", "y"])],
        ));
        p.add_fact(Fact::new(
            "Own",
            vec!["a".into(), "b".into(), 0.3f64.into()],
        ));
        let schema = Schema::infer(&p).unwrap();
        assert_eq!(schema.arity(intern("Own")), Some(3));
        assert_eq!(schema.arity(intern("SoftLink")), Some(2));
    }

    #[test]
    fn infer_detects_conflicts() {
        let mut p = Program::new();
        p.add_rule(Rule::tgd(
            vec![Atom::vars("P", &["x"])],
            vec![Atom::vars("Q", &["x"])],
        ));
        p.add_fact(Fact::new("P", vec!["a".into(), "b".into()]));
        assert!(Schema::infer(&p).is_err());
    }

    #[test]
    fn columns_can_be_attached() {
        let mut s = Schema::new();
        s.set_columns(
            intern("Own"),
            vec!["comp1".into(), "comp2".into(), "w".into()],
        );
        let info = s.info(intern("Own")).unwrap();
        assert_eq!(info.arity, 3);
        assert_eq!(info.columns.as_ref().unwrap().len(), 3);
    }
}
