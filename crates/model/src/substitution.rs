//! Variable substitutions (bindings of rule variables to values).

use crate::term::Var;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A substitution σ: a partial mapping from variables to values.
///
/// Backed by a `BTreeMap` so iteration is deterministic — determinism of rule
/// application order is what makes the chase (and therefore every number in
/// EXPERIMENTS.md) reproducible.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Substitution {
    bindings: BTreeMap<Var, Value>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `var` to `value`, overwriting any previous binding.
    pub fn bind(&mut self, var: Var, value: Value) {
        self.bindings.insert(var, value);
    }

    /// The value bound to `var`, if any.
    pub fn get(&self, var: Var) -> Option<&Value> {
        self.bindings.get(&var)
    }

    /// Whether `var` is bound.
    pub fn contains(&self, var: Var) -> bool {
        self.bindings.contains_key(&var)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Is the substitution empty?
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Iterate over the bindings in deterministic (variable) order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Value)> {
        self.bindings.iter()
    }

    /// Merge another substitution into this one; fails (returns `false`) on
    /// conflicting bindings, in which case `self` is left unchanged.
    pub fn merge(&mut self, other: &Substitution) -> bool {
        for (v, val) in other.iter() {
            if let Some(existing) = self.get(*v) {
                if existing != val {
                    return false;
                }
            }
        }
        for (v, val) in other.iter() {
            self.bind(*v, val.clone());
        }
        true
    }

    /// Restrict the substitution to the given variables.
    pub fn project(&self, vars: &[Var]) -> Substitution {
        let mut out = Substitution::new();
        for v in vars {
            if let Some(val) = self.get(*v) {
                out.bind(*v, val.clone());
            }
        }
        out
    }

    /// The set of variables bound by this substitution.
    pub fn domain(&self) -> Vec<Var> {
        self.bindings.keys().copied().collect()
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, val)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} ↦ {val}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Var, Value)> for Substitution {
    fn from_iter<T: IntoIterator<Item = (Var, Value)>>(iter: T) -> Self {
        Substitution {
            bindings: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_get() {
        let mut s = Substitution::new();
        assert!(s.is_empty());
        s.bind(Var::new("x"), Value::Int(1));
        assert_eq!(s.get(Var::new("x")), Some(&Value::Int(1)));
        assert!(s.contains(Var::new("x")));
        assert!(!s.contains(Var::new("y")));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn merge_detects_conflicts_and_is_atomic() {
        let mut a = Substitution::new();
        a.bind(Var::new("x"), Value::Int(1));
        let mut b = Substitution::new();
        b.bind(Var::new("x"), Value::Int(2));
        b.bind(Var::new("y"), Value::Int(3));
        assert!(!a.merge(&b));
        // a unchanged on failed merge
        assert_eq!(a.len(), 1);
        assert!(!a.contains(Var::new("y")));

        let mut c = Substitution::new();
        c.bind(Var::new("y"), Value::Int(3));
        assert!(a.merge(&c));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn project_restricts_domain() {
        let s: Substitution = [
            (Var::new("x"), Value::Int(1)),
            (Var::new("y"), Value::Int(2)),
            (Var::new("z"), Value::Int(3)),
        ]
        .into_iter()
        .collect();
        let p = s.project(&[Var::new("x"), Var::new("z"), Var::new("missing")]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(Var::new("z")), Some(&Value::Int(3)));
        assert_eq!(p.get(Var::new("y")), None);
    }

    #[test]
    fn iteration_is_deterministic() {
        let s: Substitution = [
            (Var::new("b"), Value::Int(2)),
            (Var::new("a"), Value::Int(1)),
        ]
        .into_iter()
        .collect();
        let order: Vec<_> = s.iter().map(|(v, _)| *v).collect();
        let order2: Vec<_> = s.iter().map(|(v, _)| *v).collect();
        assert_eq!(order, order2);
        assert_eq!(order.len(), 2);
    }
}
