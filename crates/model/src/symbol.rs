//! Global string interner for predicate, variable and function names.
//!
//! Rules and facts mention the same handful of names millions of times during
//! a chase; interning turns every comparison and hash into an integer
//! operation, which matters in the hot join/termination paths.

use crate::sync::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned string (predicate name, variable name, function name, ...).
///
/// `Sym` is `Copy`, 4 bytes, and compares/hashes as an integer. Use
/// [`intern`] to obtain one and [`resolve`] (or `Display`) to get the text
/// back.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// Raw bits of this symbol. The table is sharded by string hash, so this
    /// is an opaque encoding (shard in the low bits, position within the
    /// shard above them), not a dense insertion index.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Resolve this symbol back to its string form.
    pub fn as_str(self) -> String {
        resolve(self)
    }
}

/// log2 of the shard count. The shard number lives in the low bits of every
/// [`Sym`], mirroring the value interner's layout.
const SYM_SHARD_BITS: u32 = 4;
/// Number of interner shards (a power of two so `hash & mask` selects one).
const SYM_SHARDS: usize = 1 << SYM_SHARD_BITS;
const SYM_SHARD_MASK: u32 = (SYM_SHARDS as u32) - 1;

#[derive(Default)]
struct SymShard {
    /// string -> local index within this shard's `strings` table.
    map: HashMap<String, u32>,
    strings: Vec<String>,
}

/// The sharded symbol table: one lock per shard, selected by the string's
/// hash, so parallel sweeps interning names never serialise on a single
/// global write lock.
struct Interner {
    shards: [RwLock<SymShard>; SYM_SHARDS],
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        shards: std::array::from_fn(|_| RwLock::new(SymShard::default())),
    })
}

fn sym_shard_of(s: &str) -> u32 {
    use std::hash::{Hash, Hasher};
    let mut h = crate::fxhash::FxHasher::default();
    s.hash(&mut h);
    (h.finish() as u32) & SYM_SHARD_MASK
}

fn compose_sym(shard_no: u32, local: u32) -> Sym {
    Sym((local << SYM_SHARD_BITS) | shard_no)
}

/// Intern a string, returning its [`Sym`]. Idempotent: the same text always
/// yields the same symbol for the lifetime of the process. The fast path
/// takes one read lock on the owning shard; a miss upgrades to a write lock
/// on that shard only.
pub fn intern(s: &str) -> Sym {
    let shard_no = sym_shard_of(s);
    let shard = &interner().shards[shard_no as usize];
    {
        let guard = shard.read();
        if let Some(&local) = guard.map.get(s) {
            return compose_sym(shard_no, local);
        }
    }
    let mut guard = shard.write();
    if let Some(&local) = guard.map.get(s) {
        return compose_sym(shard_no, local);
    }
    assert!(
        guard.strings.len() < (u32::MAX >> SYM_SHARD_BITS) as usize,
        "symbol interner shard overflow"
    );
    let local = guard.strings.len() as u32;
    guard.strings.push(s.to_string());
    guard.map.insert(s.to_string(), local);
    compose_sym(shard_no, local)
}

/// Resolve a [`Sym`] back to its string form.
///
/// # Panics
/// Panics if the symbol was not produced by [`intern`] in this process
/// (impossible through the public API).
pub fn resolve(sym: Sym) -> String {
    interner().shards[(sym.0 & SYM_SHARD_MASK) as usize]
        .read()
        .strings[(sym.0 >> SYM_SHARD_BITS) as usize]
        .clone()
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", resolve(*self))
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", resolve(*self))
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Self {
        intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Self {
        intern(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("Company");
        let b = intern("Company");
        assert_eq!(a, b);
        assert_eq!(resolve(a), "Company");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = intern("Owns");
        let b = intern("Controls");
        assert_ne!(a, b);
        assert_eq!(resolve(a), "Owns");
        assert_eq!(resolve(b), "Controls");
    }

    #[test]
    fn display_round_trips() {
        let a = intern("StrongLink");
        assert_eq!(a.to_string(), "StrongLink");
        assert_eq!(format!("{a:?}"), "Sym(\"StrongLink\")");
    }

    #[test]
    fn symbols_are_ordered_consistently_with_creation() {
        let a = intern("zzz_first_created");
        let b = intern("aaa_second_created");
        // Ordering is by interner index, not lexicographic: stable, cheap.
        assert!(a.index() != b.index());
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| intern("shared-name")))
            .collect();
        let syms: Vec<Sym> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
