//! Global string interner for predicate, variable and function names.
//!
//! Rules and facts mention the same handful of names millions of times during
//! a chase; interning turns every comparison and hash into an integer
//! operation, which matters in the hot join/termination paths.

use crate::sync::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned string (predicate name, variable name, function name, ...).
///
/// `Sym` is `Copy`, 4 bytes, and compares/hashes as an integer. Use
/// [`intern`] to obtain one and [`resolve`] (or `Display`) to get the text
/// back.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// Raw index of this symbol in the interner table.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Resolve this symbol back to its string form.
    pub fn as_str(self) -> String {
        resolve(self)
    }
}

struct Interner {
    map: HashMap<String, u32>,
    strings: Vec<String>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

/// Intern a string, returning its [`Sym`]. Idempotent: the same text always
/// yields the same symbol for the lifetime of the process.
pub fn intern(s: &str) -> Sym {
    {
        let guard = interner().read();
        if let Some(&id) = guard.map.get(s) {
            return Sym(id);
        }
    }
    let mut guard = interner().write();
    if let Some(&id) = guard.map.get(s) {
        return Sym(id);
    }
    let id = guard.strings.len() as u32;
    guard.strings.push(s.to_string());
    guard.map.insert(s.to_string(), id);
    Sym(id)
}

/// Resolve a [`Sym`] back to its string form.
///
/// # Panics
/// Panics if the symbol was not produced by [`intern`] in this process
/// (impossible through the public API).
pub fn resolve(sym: Sym) -> String {
    interner().read().strings[sym.0 as usize].clone()
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", resolve(*self))
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", resolve(*self))
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Self {
        intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Self {
        intern(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("Company");
        let b = intern("Company");
        assert_eq!(a, b);
        assert_eq!(resolve(a), "Company");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = intern("Owns");
        let b = intern("Controls");
        assert_ne!(a, b);
        assert_eq!(resolve(a), "Owns");
        assert_eq!(resolve(b), "Controls");
    }

    #[test]
    fn display_round_trips() {
        let a = intern("StrongLink");
        assert_eq!(a.to_string(), "StrongLink");
        assert_eq!(format!("{a:?}"), "Sym(\"StrongLink\")");
    }

    #[test]
    fn symbols_are_ordered_consistently_with_creation() {
        let a = intern("zzz_first_created");
        let b = intern("aaa_second_created");
        // Ordering is by interner index, not lexicographic: stable, cheap.
        assert!(a.index() != b.index());
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| intern("shared-name")))
            .collect();
        let syms: Vec<Sym> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
