//! Poison-free wrappers over the std sync primitives.
//!
//! The workspace's shared tables (symbol interner, value interner, buffer
//! cache) are append-only or evict-only: a panicked holder cannot leave them
//! in a state a later reader must not see, so lock poisoning is recovered
//! from rather than propagated. This module keeps that policy in one place
//! instead of hand-rolling it at every lock site.

/// `std::sync::RwLock` with poison recovery on both guards.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a read guard, recovering from poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire a write guard, recovering from poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// `std::sync::Mutex` with poison recovery.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locks_recover_from_poisoning() {
        let lock = std::sync::Arc::new(Mutex::new(7));
        let cloned = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = cloned.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*lock.lock(), 7);

        let rw = std::sync::Arc::new(RwLock::new(1));
        let cloned = rw.clone();
        let _ = std::thread::spawn(move || {
            let _guard = cloned.write();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(*rw.read(), 1);
    }
}
