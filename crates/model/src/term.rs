//! Terms as they appear in rules: constants or variables.

use crate::symbol::{intern, Sym};
use crate::value::Value;
use std::fmt;

/// A (regular) variable appearing in a rule.
///
/// Variables are identified by their interned name; the scope of a variable
/// is a single rule, as usual in Datalog.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub Sym);

impl Var {
    /// Create (or look up) a variable by name.
    pub fn new(name: &str) -> Self {
        Var(intern(name))
    }

    /// The variable's name.
    pub fn name(&self) -> String {
        self.0.as_str()
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A term: either a constant [`Value`] or a [`Var`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A constant value (possibly a labelled null, e.g. in intermediate
    /// rewritten rules).
    Const(Value),
    /// A variable.
    Var(Var),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(name: &str) -> Self {
        Term::Var(Var::new(name))
    }

    /// Shorthand for a constant term.
    pub fn constant(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }

    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this term is one.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            Term::Var(_) => None,
        }
    }

    /// Is this term a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Is this term a constant?
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v}"),
            Term::Var(v) => write!(f, "{v}"),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_with_same_name_are_equal() {
        assert_eq!(Var::new("x"), Var::new("x"));
        assert_ne!(Var::new("x"), Var::new("y"));
    }

    #[test]
    fn term_accessors() {
        let t = Term::var("x");
        assert!(t.is_var());
        assert_eq!(t.as_var(), Some(Var::new("x")));
        assert_eq!(t.as_const(), None);

        let c = Term::constant(5i64);
        assert!(c.is_const());
        assert_eq!(c.as_const(), Some(&Value::Int(5)));
        assert_eq!(c.as_var(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::var("comp").to_string(), "comp");
        assert_eq!(Term::constant("HSBC").to_string(), "\"HSBC\"");
    }
}
