//! Runtime values: typed constants and labelled nulls.
//!
//! The paper's model (Section 2.1) uses three disjoint countable sets:
//! constants `C`, labelled nulls `N` and variables `V`. Variables live in
//! [`crate::term::Term`]; this module holds the first two. Labelled nulls are
//! the ν values invented by the chase to witness existential quantifiers, and
//! the whole termination machinery of Section 3 revolves around renaming them
//! consistently, so they are first-class values here.

use crate::sync::RwLock;
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, OnceLock};

/// Identifier of a labelled null (ν_i).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NullId(pub u64);

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ν{}", self.0)
    }
}

/// Factory of fresh labelled nulls.
///
/// Each chase / reasoning session owns one factory so that null identity is
/// deterministic given a deterministic rule-application order.
#[derive(Debug, Default)]
pub struct NullFactory {
    next: AtomicU64,
}

impl NullFactory {
    /// Create a factory starting at ν0.
    pub fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
        }
    }

    /// Create a factory whose first null will be `start`.
    pub fn starting_at(start: u64) -> Self {
        Self {
            next: AtomicU64::new(start),
        }
    }

    /// Mint a fresh labelled null.
    pub fn fresh(&self) -> NullId {
        NullId(self.next.fetch_add(1, AtomicOrdering::Relaxed))
    }

    /// Mint a fresh labelled null wrapped as a [`Value`].
    pub fn fresh_value(&self) -> Value {
        Value::Null(self.fresh())
    }

    /// Number of nulls produced so far.
    pub fn produced(&self) -> u64 {
        self.next.load(AtomicOrdering::Relaxed)
    }
}

/// An interned [`Value`]: 4 bytes, `Copy`, compares and hashes as an integer.
///
/// Two `ValueId`s are equal exactly when the values they intern are equal
/// under [`Value`]'s total equality (which identifies `Int(2)` and
/// `Float(2.0)`), so an equi-join on `ValueId`s is an equi-join on values.
/// This is the currency of the storage layer's row representation and of the
/// engine's probe path: relations store rows of `ValueId`s and the
/// slot-machine join compares ids, materialising `Value`s only at the API
/// boundary. Obtain one with [`intern_value`] and convert back with
/// [`resolve_value`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ValueId(u32);

impl ValueId {
    /// Raw bits of this id. The table is sharded by value hash, so this is
    /// an opaque encoding (shard number in the low bits, position within the
    /// shard above them), not a dense insertion index — use it only as a
    /// compact key.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// log2 of the shard count. The shard number lives in the low bits of every
/// [`ValueId`], so resolving never has to consult a directory.
const VALUE_SHARD_BITS: u32 = 4;
/// Number of interner shards (a power of two so `hash & mask` selects one).
const VALUE_SHARDS: usize = 1 << VALUE_SHARD_BITS;
const VALUE_SHARD_MASK: u32 = (VALUE_SHARDS as u32) - 1;

#[derive(Default)]
struct ValueShard {
    /// value -> local index within this shard's `values` table.
    map: HashMap<Value, u32>,
    values: Vec<Value>,
    /// Order key of each value, computed once at intern time so probe paths
    /// can compare ids order-wise without resolving (see [`order_key_of`]).
    keys: Vec<OrderKey>,
}

impl ValueShard {
    /// Intern under an already-held write lock on this shard.
    fn intern(&mut self, shard_no: u32, v: &Value) -> ValueId {
        match self.map.get(v) {
            Some(&local) => ValueId::compose(shard_no, local),
            None => {
                assert!(
                    self.values.len() < (u32::MAX >> VALUE_SHARD_BITS) as usize,
                    "value interner shard overflow"
                );
                let local = self.values.len() as u32;
                self.keys.push(v.order_key());
                self.values.push(v.clone());
                self.map.insert(v.clone(), local);
                ValueId::compose(shard_no, local)
            }
        }
    }
}

/// The sharded global value table: one lock per shard, selected by the
/// value's hash, so concurrent intern/resolve traffic on different values
/// contends only `1/VALUE_SHARDS` of the time and there is no global write
/// lock on the hot intern path at all.
struct ValueInterner {
    shards: [RwLock<ValueShard>; VALUE_SHARDS],
}

fn value_interner() -> &'static ValueInterner {
    static INTERNER: OnceLock<ValueInterner> = OnceLock::new();
    INTERNER.get_or_init(|| ValueInterner {
        shards: std::array::from_fn(|_| RwLock::new(ValueShard::default())),
    })
}

/// Shard selector. Derived from [`Value`]'s own `Hash`, which already
/// normalises the cross-variant equality classes (`Int(2)` hashes like
/// `Float(2.0)`), so equal values always land in the same shard.
fn value_shard_of(v: &Value) -> u32 {
    let mut h = crate::fxhash::FxHasher::default();
    v.hash(&mut h);
    (std::hash::Hasher::finish(&h) as u32) & VALUE_SHARD_MASK
}

impl ValueId {
    #[inline]
    fn compose(shard_no: u32, local: u32) -> ValueId {
        ValueId((local << VALUE_SHARD_BITS) | shard_no)
    }

    #[inline]
    fn shard_no(self) -> u32 {
        self.0 & VALUE_SHARD_MASK
    }

    #[inline]
    fn local(self) -> u32 {
        self.0 >> VALUE_SHARD_BITS
    }
}

/// Intern a value, returning its [`ValueId`]. Idempotent for the lifetime of
/// the process: values equal under [`Value`]'s `Eq` always yield the same id
/// (each shard keeps the representation interned first, so `Float(2.0)`
/// resolves to `Int(2)` if the integer arrived first — consistent with how
/// the set-semantics store always kept the first-inserted representative).
///
/// The table is sharded by value hash: the fast path takes one read lock on
/// one shard, and a miss upgrades to a write lock on that shard only —
/// interning never serialises the whole table.
///
/// The table is process-global and append-only: entries are never reclaimed.
/// In particular, labelled nulls minted for candidate facts that a
/// termination strategy then suppresses stay in the table; a scoped
/// (per-session) interner is a known follow-up (see ROADMAP "Performance").
pub fn intern_value(v: &Value) -> ValueId {
    let shard_no = value_shard_of(v);
    let shard = &value_interner().shards[shard_no as usize];
    {
        let guard = shard.read();
        if let Some(&local) = guard.map.get(v) {
            return ValueId::compose(shard_no, local);
        }
    }
    shard.write().intern(shard_no, v)
}

/// Look up the id of a value **without** interning it: `None` means the
/// value has never been interned, so no stored row can contain it — the
/// fast negative path for membership probes.
pub fn find_value_id(v: &Value) -> Option<ValueId> {
    let shard_no = value_shard_of(v);
    value_interner().shards[shard_no as usize]
        .read()
        .map
        .get(v)
        .copied()
        .map(|local| ValueId::compose(shard_no, local))
}

/// Resolve a [`ValueId`] back to the value it interns (a clone out of the
/// owning shard's table; strings are `Arc`-backed so this is cheap).
///
/// # Panics
/// Panics if the id was not produced by [`intern_value`] in this process
/// (impossible through the public API).
pub fn resolve_value(id: ValueId) -> Value {
    value_interner().shards[id.shard_no() as usize]
        .read()
        .values[id.local() as usize]
        .clone()
}

/// Resolve a whole row of ids, acquiring the read lock of each shard the
/// row touches at most once — the batched form of [`resolve_value`] the
/// storage layer uses to materialise facts. Guards are taken in **ascending
/// shard order**: overlapping multi-guard holders all lock in the same
/// global order, so they can never form a cycle with queued writers (std's
/// `RwLock` makes no reader/writer priority guarantee).
pub fn resolve_values(ids: &[ValueId]) -> Vec<Value> {
    let interner = value_interner();
    let mut needed = [false; VALUE_SHARDS];
    for id in ids {
        needed[id.shard_no() as usize] = true;
    }
    let guards: [Option<std::sync::RwLockReadGuard<'_, ValueShard>>; VALUE_SHARDS] =
        std::array::from_fn(|shard_no| needed[shard_no].then(|| interner.shards[shard_no].read()));
    ids.iter()
        .map(|id| {
            guards[id.shard_no() as usize]
                .as_ref()
                .expect("guard held")
                .values[id.local() as usize]
                .clone()
        })
        .collect()
}

/// Intern a whole row of values, acquiring each shard's read lock at most
/// once — the batched form of [`intern_value`]. The common case (every value
/// already interned) touches no write lock; rows carrying fresh values fall
/// back to per-value interning against the owning shards only.
pub fn intern_values(values: &[Value]) -> Box<[ValueId]> {
    let interner = value_interner();
    let shards: Vec<u32> = values.iter().map(value_shard_of).collect();
    let mut out = Vec::with_capacity(values.len());
    {
        // Ascending-shard-order guard acquisition, for the same
        // deadlock-freedom argument as in [`resolve_values`].
        let mut needed = [false; VALUE_SHARDS];
        for &shard_no in &shards {
            needed[shard_no as usize] = true;
        }
        let guards: [Option<std::sync::RwLockReadGuard<'_, ValueShard>>; VALUE_SHARDS] =
            std::array::from_fn(|shard_no| {
                needed[shard_no].then(|| interner.shards[shard_no].read())
            });
        let mut all_known = true;
        for (v, &shard_no) in values.iter().zip(&shards) {
            let guard = guards[shard_no as usize].as_ref().expect("guard held");
            match guard.map.get(v) {
                Some(&local) => out.push(ValueId::compose(shard_no, local)),
                None => {
                    all_known = false;
                    break;
                }
            }
        }
        if all_known {
            return out.into_boxed_slice();
        }
    }
    values.iter().map(intern_value).collect()
}

impl Value {
    /// Intern this value (see [`intern_value`]).
    pub fn interned(&self) -> ValueId {
        intern_value(self)
    }
}

/// An **order-preserving probe key**: a compact `(class, bits)` pair whose
/// `Ord` is a monotone approximation of the comparison order conditions use
/// ([`crate::expr::CmpOp`]'s effective order: numeric comparison across
/// `Int`/`Float`, then [`Value`]'s cross-variant total order).
///
/// The two guarantees the sorted-run index layer builds on:
///
/// * **monotone** — `key(a) < key(b)` implies `a` sorts strictly before `b`
///   (so everything strictly inside a key range satisfies the comparison
///   without resolving a single value);
/// * **equality-coarse** — `a == b` implies `key(a) == key(b)` (so only the
///   *boundary* entries whose key ties the bound's key ever need an exact,
///   resolved comparison).
///
/// Keys are lossy: distinct values may share a key (strings sharing an
/// 8-byte prefix, integers beyond 2^53 colliding as `f64`, composite
/// list/set values, which all map to one key per class). Ties are always
/// settled by resolving the values, never assumed equal.
///
/// Class layout mirrors the cross-variant order of [`Value::cmp`]:
/// numerics (`Int` and `Float` share a class, like they share an equality
/// relation) < strings < booleans < dates < labelled nulls < lists < sets.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OrderKey {
    class: u8,
    bits: u64,
}

/// Class byte of numeric values (`Int` and `Float` merged).
const KEY_CLASS_NUMERIC: u8 = 0;
/// Class byte of string values.
const KEY_CLASS_STR: u8 = 1;
/// Class byte of booleans.
const KEY_CLASS_BOOL: u8 = 2;
/// Class byte of dates.
const KEY_CLASS_DATE: u8 = 3;
/// Class byte of labelled nulls (excluded from order comparisons: ordering
/// a null against anything is `false` under `CmpOp`).
const KEY_CLASS_NULL: u8 = 4;
/// Class byte of lists.
const KEY_CLASS_LIST: u8 = 5;
/// Class byte of sets.
const KEY_CLASS_SET: u8 = 6;

/// Monotone `f64` → `u64` bit trick: flip all bits of negatives, flip the
/// sign bit of positives, giving `total_cmp` order as unsigned comparison.
/// `-0.0` is normalised to `0.0` first because `CmpOp`'s numeric comparison
/// (IEEE `partial_cmp`) treats them as equal while `total_cmp` does not.
fn f64_key_bits(f: f64) -> u64 {
    let f = if f == 0.0 { 0.0 } else { f };
    let b = f.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

impl OrderKey {
    /// Is this the key of a labelled null? Null-class entries never satisfy
    /// an ordering comparison and are skipped by index range scans.
    pub fn is_null_class(self) -> bool {
        self.class == KEY_CLASS_NULL
    }
}

impl Value {
    /// The order-preserving probe key of this value (see [`OrderKey`]).
    pub fn order_key(&self) -> OrderKey {
        let (class, bits) = match self {
            Value::Int(i) => (KEY_CLASS_NUMERIC, f64_key_bits(*i as f64)),
            Value::Float(f) => (KEY_CLASS_NUMERIC, f64_key_bits(*f)),
            Value::Str(s) => {
                let bytes = s.as_bytes();
                let mut prefix = [0u8; 8];
                let n = bytes.len().min(8);
                prefix[..n].copy_from_slice(&bytes[..n]);
                (KEY_CLASS_STR, u64::from_be_bytes(prefix))
            }
            Value::Bool(b) => (KEY_CLASS_BOOL, *b as u64),
            Value::Date(d) => (KEY_CLASS_DATE, (*d as u64) ^ (1 << 63)),
            Value::Null(n) => (KEY_CLASS_NULL, n.0),
            Value::List(_) => (KEY_CLASS_LIST, 0),
            Value::Set(_) => (KEY_CLASS_SET, 0),
        };
        OrderKey { class, bits }
    }
}

/// The order key of an interned value, read from the per-shard key cache
/// (computed once at intern time — no value is resolved).
pub fn order_key_of(id: ValueId) -> OrderKey {
    value_interner().shards[id.shard_no() as usize].read().keys[id.local() as usize]
}

/// Order keys of a whole row of ids, acquiring each shard's read lock at
/// most once (the batched form of [`order_key_of`], used when the storage
/// layer flushes an index tail into a sorted run). Guards are taken in
/// ascending shard order, like [`resolve_values`].
pub fn order_keys_of(ids: &[ValueId]) -> Vec<OrderKey> {
    let interner = value_interner();
    let mut needed = [false; VALUE_SHARDS];
    for id in ids {
        needed[id.shard_no() as usize] = true;
    }
    let guards: [Option<std::sync::RwLockReadGuard<'_, ValueShard>>; VALUE_SHARDS] =
        std::array::from_fn(|shard_no| needed[shard_no].then(|| interner.shards[shard_no].read()));
    ids.iter()
        .map(|id| {
            guards[id.shard_no() as usize]
                .as_ref()
                .expect("guard held")
                .keys[id.local() as usize]
        })
        .collect()
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", resolve_value(*self))
    }
}

/// A runtime value: a constant of one of the supported Vadalog data types
/// (Section 5, "Data Types") or a labelled null.
///
/// `Value` implements total `Ord`/`Hash` (floats compare by bit pattern via a
/// total order) so it can be used directly as a join/index key.
#[derive(Clone, Debug)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float with a total order (NaN sorts last).
    Float(f64),
    /// Interned-ish string constant (cheap to clone).
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// Date, stored as days since the Unix epoch.
    Date(i64),
    /// Labelled null ν_i produced by existential quantification.
    Null(NullId),
    /// Composite list value.
    List(Vec<Value>),
    /// Composite set value (used by `munion` aggregation).
    Set(BTreeSet<Value>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }

    /// Build a string value from an owned `String`.
    pub fn string(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }

    /// Is this value a labelled null?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Is this value ground, i.e. free of labelled nulls (recursively)?
    pub fn is_ground(&self) -> bool {
        match self {
            Value::Null(_) => false,
            Value::List(vs) => vs.iter().all(Value::is_ground),
            Value::Set(vs) => vs.iter().all(Value::is_ground),
            _ => true,
        }
    }

    /// Numeric view of the value, if it is an `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view of the value, if it is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view of the value, if it is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The null id, if this value is a labelled null.
    pub fn as_null(&self) -> Option<NullId> {
        match self {
            Value::Null(n) => Some(*n),
            _ => None,
        }
    }

    /// A small integer tag identifying the variant, used for cross-variant
    /// ordering.
    fn tag(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Float(_) => 1,
            Value::Str(_) => 2,
            Value::Bool(_) => 3,
            Value::Date(_) => 4,
            Value::Null(_) => 5,
            Value::List(_) => 6,
            Value::Set(_) => 7,
        }
    }

    /// Compare two numeric values across Int/Float; `None` when either side
    /// is not numeric.
    pub fn numeric_cmp(&self, other: &Value) -> Option<Ordering> {
        let (a, b) = (self.as_f64()?, other.as_f64()?);
        a.partial_cmp(&b)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            // Mixed numeric comparisons use numeric order so joins over
            // heterogeneous columns behave predictably.
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Null(a), Null(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            (Set(a), Set(b)) => a.cmp(b),
            _ => self.tag().cmp(&other.tag()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                0u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                // Hash floats that are whole numbers like the equal Int so
                // Int(2) and Float(2.0) (which compare equal) hash equally.
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                    0u8.hash(state);
                    (*f as i64).hash(state);
                } else {
                    1u8.hash(state);
                    f.to_bits().hash(state);
                }
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
            Value::Null(n) => {
                5u8.hash(state);
                n.hash(state);
            }
            Value::List(vs) => {
                6u8.hash(state);
                vs.hash(state);
            }
            Value::Set(vs) => {
                7u8.hash(state);
                for v in vs {
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(d) => write!(f, "date({d})"),
            Value::Null(n) => write!(f, "{n}"),
            Value::List(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Set(vs) => {
                write!(f, "{{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::string(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_factory_is_monotonic_and_unique() {
        let f = NullFactory::new();
        let a = f.fresh();
        let b = f.fresh();
        assert_ne!(a, b);
        assert!(b.0 > a.0);
        assert_eq!(f.produced(), 2);
    }

    #[test]
    fn ground_detection_recurses_into_composites() {
        let f = NullFactory::new();
        let ground = Value::List(vec![Value::Int(1), Value::str("x")]);
        let non_ground = Value::List(vec![Value::Int(1), f.fresh_value()]);
        assert!(ground.is_ground());
        assert!(!non_ground.is_ground());
    }

    #[test]
    fn mixed_numeric_equality_and_hash_agree() {
        let a = Value::Int(2);
        let b = Value::Float(2.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn ordering_is_total_across_variants() {
        let vs = vec![
            Value::Int(3),
            Value::str("abc"),
            Value::Bool(true),
            Value::Null(NullId(0)),
            Value::Float(1.5),
        ];
        let mut sorted = vs.clone();
        sorted.sort();
        // sorting must not panic and must be idempotent
        let mut again = sorted.clone();
        again.sort();
        assert_eq!(sorted, again);
    }

    #[test]
    fn numeric_cmp_compares_across_int_and_float() {
        assert_eq!(
            Value::Int(1).numeric_cmp(&Value::Float(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::str("x").numeric_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("HSBC").to_string(), "\"HSBC\"");
        assert_eq!(Value::Null(NullId(7)).to_string(), "ν7");
    }

    #[test]
    fn value_interning_is_idempotent_and_respects_equality() {
        let a = intern_value(&Value::str("interner-test-a"));
        let b = intern_value(&Value::str("interner-test-a"));
        let c = intern_value(&Value::str("interner-test-b"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(resolve_value(a), Value::str("interner-test-a"));
        // cross-variant numeric equality maps to one id
        let i = intern_value(&Value::Int(271_828));
        let f = intern_value(&Value::Float(271_828.0));
        assert_eq!(i, f);
        // nulls intern like any other value
        let n = intern_value(&Value::Null(NullId(u64::MAX - 17)));
        assert_eq!(resolve_value(n), Value::Null(NullId(u64::MAX - 17)));
    }

    #[test]
    fn concurrent_interning_across_shards_is_consistent() {
        let values: Vec<Value> = (0..64)
            .map(|i| Value::str(&format!("shard-stress-{i}")))
            .collect();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let vs = values.clone();
                std::thread::spawn(move || vs.iter().map(intern_value).collect::<Vec<ValueId>>())
            })
            .collect();
        let ids: Vec<Vec<ValueId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in ids.windows(2) {
            assert_eq!(w[0], w[1], "racing threads must agree on every id");
        }
        for (v, id) in values.iter().zip(&ids[0]) {
            assert_eq!(&resolve_value(*id), v);
            assert_eq!(find_value_id(v), Some(*id));
        }
    }

    #[test]
    fn find_value_id_does_not_intern() {
        let probe = Value::str("never-interned-probe-value-xyzzy");
        assert_eq!(find_value_id(&probe), None);
        let id = intern_value(&probe);
        assert_eq!(find_value_id(&probe), Some(id));
    }

    #[test]
    fn order_keys_are_monotone_and_equality_coarse() {
        let f = NullFactory::new();
        let values = vec![
            Value::Float(f64::NEG_INFINITY),
            Value::Int(-3),
            Value::Float(-0.5),
            Value::Float(-0.0),
            Value::Int(0),
            Value::Float(0.25),
            Value::Int(7),
            Value::Float(f64::INFINITY),
            Value::str(""),
            Value::str("a"),
            Value::str("ab"),
            Value::str("b"),
            Value::Bool(false),
            Value::Bool(true),
            Value::Date(-10),
            Value::Date(10),
            f.fresh_value(),
            Value::List(vec![Value::Int(1)]),
            Value::Set(BTreeSet::from([Value::Int(2)])),
        ];
        for a in &values {
            for b in &values {
                let (ka, kb) = (a.order_key(), b.order_key());
                if a == b {
                    assert_eq!(ka, kb, "{a} == {b} but keys differ");
                }
                if ka < kb {
                    assert_eq!(
                        a.cmp(b),
                        Ordering::Less,
                        "key({a}) < key({b}) but {a} !< {b}"
                    );
                }
            }
        }
        // -0.0 is normalised onto 0.0's key so boundary checks catch it
        assert_eq!(
            Value::Float(-0.0).order_key(),
            Value::Float(0.0).order_key()
        );
        // lossy cases share a key but stay ordered by the exact comparison
        assert_eq!(
            Value::str("prefix-shared-1").order_key(),
            Value::str("prefix-shared-2").order_key()
        );
        assert!(Value::Null(NullId(3)).order_key().is_null_class());
        assert!(!Value::Int(3).order_key().is_null_class());
    }

    #[test]
    fn order_key_of_reads_the_intern_time_cache() {
        let v = Value::str("order-key-cache-probe");
        let id = intern_value(&v);
        assert_eq!(order_key_of(id), v.order_key());
        let ids: Vec<ValueId> = [Value::Int(11), Value::Float(2.5), Value::str("zz")]
            .iter()
            .map(intern_value)
            .collect();
        let keys = order_keys_of(&ids);
        assert_eq!(keys.len(), 3);
        for (id, key) in ids.iter().zip(&keys) {
            assert_eq!(order_key_of(*id), *key);
            assert_eq!(resolve_value(*id).order_key(), *key);
        }
    }

    #[test]
    fn sets_and_lists_compare_structurally() {
        let s1 = Value::Set(BTreeSet::from([Value::Int(1), Value::Int(2)]));
        let s2 = Value::Set(BTreeSet::from([Value::Int(2), Value::Int(1)]));
        assert_eq!(s1, s2);
        let l1 = Value::List(vec![Value::Int(1), Value::Int(2)]);
        let l2 = Value::List(vec![Value::Int(2), Value::Int(1)]);
        assert_ne!(l1, l2);
    }
}
