//! Property-based tests for the core data model: values, facts,
//! isomorphism / pattern-isomorphism keys, substitutions and atom matching.
//!
//! These check the invariants the chase and the termination machinery of
//! Section 3 of the paper rely on: isomorphism must be an equivalence
//! relation insensitive to bijective null renaming, pattern-isomorphism must
//! additionally be insensitive to bijective constant renaming, and atom
//! matching must agree with substitution application.

use proptest::prelude::*;
use std::collections::HashMap;
use vadalog_model::prelude::*;
use vadalog_model::{facts_isomorphic, facts_pattern_isomorphic, iso_key, pattern_key};

/// A small pool of predicate names so that collisions are frequent enough to
/// be interesting.
fn predicate_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["P", "Q", "Own", "Control", "PSC", "StrongLink"])
        .prop_map(|s| s.to_string())
}

/// Ground values only (no nulls, no composites).
fn ground_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::Int),
        prop::sample::select(vec!["a", "b", "c", "hsbc", "iba"]).prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

/// Values that may also be labelled nulls (drawn from a small pool so the
/// same null shows up in several positions).
fn value_with_nulls() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => ground_value(),
        2 => (0u64..6).prop_map(|n| Value::Null(NullId(n))),
    ]
}

fn fact_with_nulls() -> impl Strategy<Value = Fact> {
    (
        predicate_name(),
        prop::collection::vec(value_with_nulls(), 1..5),
    )
        .prop_map(|(p, args)| Fact::new(&p, args))
}

fn ground_fact() -> impl Strategy<Value = Fact> {
    (
        predicate_name(),
        prop::collection::vec(ground_value(), 1..5),
    )
        .prop_map(|(p, args)| Fact::new(&p, args))
}

/// Apply a bijective renaming of labelled nulls (offsetting ids into a fresh
/// range keeps the map injective).
fn rename_nulls_bijectively(f: &Fact, offset: u64) -> Fact {
    let rename: HashMap<NullId, Value> = f
        .nulls()
        .into_iter()
        .map(|n| (n, Value::Null(NullId(n.0 + offset))))
        .collect();
    f.rename_nulls(&rename)
}

proptest! {
    // ---------------------------------------------------------------- iso

    /// Isomorphism is reflexive.
    #[test]
    fn iso_is_reflexive(f in fact_with_nulls()) {
        prop_assert!(facts_isomorphic(&f, &f));
        prop_assert_eq!(iso_key(&f), iso_key(&f));
    }

    /// Bijectively renaming labelled nulls never changes the isomorphism
    /// class (Section 3.1: "there exists a bijection of labelled nulls into
    /// labelled nulls").
    #[test]
    fn iso_invariant_under_null_renaming(f in fact_with_nulls(), offset in 100u64..200) {
        let renamed = rename_nulls_bijectively(&f, offset);
        prop_assert!(facts_isomorphic(&f, &renamed));
        prop_assert_eq!(iso_key(&f), iso_key(&renamed));
    }

    /// Isomorphic facts agree on predicate, arity and on every constant
    /// position.
    #[test]
    fn iso_preserves_constants(f in fact_with_nulls(), offset in 100u64..200) {
        let renamed = rename_nulls_bijectively(&f, offset);
        prop_assert_eq!(f.predicate, renamed.predicate);
        prop_assert_eq!(f.arity(), renamed.arity());
        for (a, b) in f.args.iter().zip(renamed.args.iter()) {
            if a.is_ground() {
                prop_assert_eq!(a, b);
            }
        }
    }

    /// Two ground facts are isomorphic iff they are equal.
    #[test]
    fn ground_iso_is_equality(a in ground_fact(), b in ground_fact()) {
        prop_assert_eq!(facts_isomorphic(&a, &b), a == b);
    }

    /// iso_key equality and facts_isomorphic agree (the key is a canonical
    /// form, which is what lets the ground structure use it as a hash key).
    #[test]
    fn iso_key_agrees_with_predicate(a in fact_with_nulls(), b in fact_with_nulls()) {
        prop_assert_eq!(iso_key(&a) == iso_key(&b), facts_isomorphic(&a, &b));
    }

    // ------------------------------------------------------- pattern iso

    /// Isomorphism implies pattern-isomorphism (constants map by identity,
    /// which is a bijection).
    #[test]
    fn iso_implies_pattern_iso(f in fact_with_nulls(), offset in 100u64..200) {
        let renamed = rename_nulls_bijectively(&f, offset);
        prop_assert!(facts_pattern_isomorphic(&f, &renamed));
        prop_assert_eq!(pattern_key(&f), pattern_key(&renamed));
    }

    /// pattern_key equality and facts_pattern_isomorphic agree.
    #[test]
    fn pattern_key_agrees_with_predicate(a in fact_with_nulls(), b in fact_with_nulls()) {
        prop_assert_eq!(
            pattern_key(&a) == pattern_key(&b),
            facts_pattern_isomorphic(&a, &b)
        );
    }

    /// Renaming *constants* bijectively preserves the pattern class: the
    /// paper's example is P(1,2,x,y) ≈ P(3,4,z,y) but ≉ P(5,5,z,y).
    #[test]
    fn pattern_iso_invariant_under_constant_renaming(
        p in predicate_name(),
        ints in prop::collection::vec(0i64..10, 1..5),
        shift in 100i64..200,
    ) {
        let a = Fact::new(&p, ints.iter().map(|i| Value::Int(*i)).collect());
        // A strictly monotone shift is a bijection on the used constants.
        let b = Fact::new(&p, ints.iter().map(|i| Value::Int(*i + shift)).collect());
        prop_assert!(facts_pattern_isomorphic(&a, &b));
    }

    /// Collapsing two distinct constants to the same constant breaks
    /// pattern-isomorphism (there is no bijection any more).
    #[test]
    fn pattern_iso_detects_collapsed_constants(x in 0i64..50, y in 51i64..100) {
        let distinct = Fact::new("P", vec![Value::Int(x), Value::Int(y)]);
        let collapsed = Fact::new("P", vec![Value::Int(x), Value::Int(x)]);
        prop_assert!(!facts_pattern_isomorphic(&distinct, &collapsed));
    }

    // ------------------------------------------------------ homomorphism

    /// Every set of facts maps homomorphically into itself, and into any
    /// superset of itself.
    #[test]
    fn homomorphism_into_superset(
        facts in prop::collection::vec(fact_with_nulls(), 0..6),
        extra in prop::collection::vec(ground_fact(), 0..4),
    ) {
        use vadalog_model::is_homomorphic;
        prop_assert!(is_homomorphic(&facts, &facts));
        let mut superset = facts.clone();
        superset.extend(extra);
        prop_assert!(is_homomorphic(&facts, &superset));
    }

    /// Ground facts are preserved verbatim by any homomorphism, so a set of
    /// ground facts maps into a target iff it is a subset of it.
    #[test]
    fn ground_homomorphism_is_containment(
        source in prop::collection::vec(ground_fact(), 0..5),
        target in prop::collection::vec(ground_fact(), 0..8),
    ) {
        use vadalog_model::is_homomorphic;
        let contained = source.iter().all(|f| target.contains(f));
        prop_assert_eq!(is_homomorphic(&source, &target), contained);
    }

    // ------------------------------------------------------ substitutions

    /// Binding then reading back returns the bound value; unbound variables
    /// stay unbound.
    #[test]
    fn substitution_bind_get(vals in prop::collection::vec(ground_value(), 1..6)) {
        let mut s = Substitution::new();
        for (i, v) in vals.iter().enumerate() {
            s.bind(Var::new(&format!("x{i}")), v.clone());
        }
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(s.get(Var::new(&format!("x{i}"))), Some(v));
        }
        prop_assert_eq!(s.get(Var::new("unbound")), None);
        prop_assert_eq!(s.len(), vals.len());
    }

    /// Merging substitutions with disjoint domains always succeeds and is
    /// order-insensitive on the resulting bindings.
    #[test]
    fn substitution_merge_disjoint(
        left in prop::collection::vec(ground_value(), 1..4),
        right in prop::collection::vec(ground_value(), 1..4),
    ) {
        let mut a = Substitution::new();
        for (i, v) in left.iter().enumerate() {
            a.bind(Var::new(&format!("l{i}")), v.clone());
        }
        let mut b = Substitution::new();
        for (i, v) in right.iter().enumerate() {
            b.bind(Var::new(&format!("r{i}")), v.clone());
        }
        let mut ab = a.clone();
        prop_assert!(ab.merge(&b));
        let mut ba = b.clone();
        prop_assert!(ba.merge(&a));
        prop_assert_eq!(ab.len(), ba.len());
        for (v, val) in ab.iter() {
            prop_assert_eq!(ba.get(*v), Some(val));
        }
    }

    /// Merging a substitution with itself never fails and never changes it.
    #[test]
    fn substitution_merge_idempotent(vals in prop::collection::vec(ground_value(), 1..5)) {
        let mut s = Substitution::new();
        for (i, v) in vals.iter().enumerate() {
            s.bind(Var::new(&format!("x{i}")), v.clone());
        }
        let mut merged = s.clone();
        prop_assert!(merged.merge(&s));
        prop_assert_eq!(merged.len(), s.len());
    }

    /// Merging conflicting bindings fails.
    #[test]
    fn substitution_merge_conflict(a in ground_value(), b in ground_value()) {
        prop_assume!(a != b);
        let mut s1 = Substitution::new();
        s1.bind(Var::new("x"), a);
        let mut s2 = Substitution::new();
        s2.bind(Var::new("x"), b);
        let mut merged = s1.clone();
        prop_assert!(!merged.merge(&s2));
    }

    /// project() keeps exactly the requested variables.
    #[test]
    fn substitution_project(vals in prop::collection::vec(ground_value(), 2..6), keep in 1usize..3) {
        let mut s = Substitution::new();
        for (i, v) in vals.iter().enumerate() {
            s.bind(Var::new(&format!("x{i}")), v.clone());
        }
        let kept: Vec<Var> = (0..keep.min(vals.len())).map(|i| Var::new(&format!("x{i}"))).collect();
        let projected = s.project(&kept);
        prop_assert_eq!(projected.len(), kept.len());
        for v in &kept {
            prop_assert_eq!(projected.get(*v), s.get(*v));
        }
    }

    // ------------------------------------------------------- atom matching

    /// If an atom with distinct variables is applied to a substitution and
    /// produces a fact, then matching that fact against the atom recovers a
    /// substitution compatible with the original.
    #[test]
    fn apply_then_match_roundtrip(
        p in predicate_name(),
        vals in prop::collection::vec(ground_value(), 1..5),
    ) {
        let vars: Vec<String> = (0..vals.len()).map(|i| format!("v{i}")).collect();
        let atom = Atom::vars(&p, &vars.iter().map(String::as_str).collect::<Vec<_>>());
        let mut s = Substitution::new();
        for (name, v) in vars.iter().zip(vals.iter()) {
            s.bind(Var::new(name), v.clone());
        }
        let fact = atom.apply(&s).expect("fully bound atom must ground");
        let recovered = atom
            .match_fact(&fact, &Substitution::new())
            .expect("matching the fact we just built must succeed");
        for name in &vars {
            prop_assert_eq!(recovered.get(Var::new(name)), s.get(Var::new(name)));
        }
        // and applying the recovered substitution reproduces the fact
        prop_assert_eq!(atom.apply(&recovered), Some(fact));
    }

    /// Matching fails whenever predicate or arity disagree.
    #[test]
    fn match_respects_predicate_and_arity(f in ground_fact()) {
        let vars: Vec<String> = (0..f.arity() + 1).map(|i| format!("v{i}")).collect();
        let wrong_arity = Atom::vars(
            &f.predicate_name(),
            &vars.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        prop_assert!(wrong_arity.match_fact(&f, &Substitution::new()).is_none());

        let vars: Vec<String> = (0..f.arity()).map(|i| format!("v{i}")).collect();
        let wrong_pred = Atom::vars(
            "ZZZ_NotARealPredicate",
            &vars.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        prop_assert!(wrong_pred.match_fact(&f, &Substitution::new()).is_none());
    }

    /// A repeated variable in the atom only matches facts with equal values
    /// at those positions.
    #[test]
    fn repeated_variables_force_equality(a in ground_value(), b in ground_value()) {
        let atom = Atom::vars("P", &["x", "x"]);
        let fact = Fact::new("P", vec![a.clone(), b.clone()]);
        let matched = atom.match_fact(&fact, &Substitution::new()).is_some();
        prop_assert_eq!(matched, a == b);
    }

    // ------------------------------------------------------------- values

    /// Value ordering is a total order: antisymmetric and transitive on the
    /// generated triples, and consistent with equality.
    #[test]
    fn value_order_is_total(a in value_with_nulls(), b in value_with_nulls(), c in value_with_nulls()) {
        use std::cmp::Ordering::*;
        // consistency of eq and cmp
        prop_assert_eq!(a == b, a.cmp(&b) == Equal);
        // antisymmetry
        if a.cmp(&b) == Less {
            prop_assert_eq!(b.cmp(&a), Greater);
        }
        // transitivity
        if a.cmp(&b) != Greater && b.cmp(&c) != Greater {
            prop_assert!(a.cmp(&c) != Greater);
        }
    }

    /// Equal values hash equally (required for the hash-based indices).
    #[test]
    fn equal_values_hash_equally(a in value_with_nulls(), b in value_with_nulls()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            a.hash(&mut ha);
            let mut hb = DefaultHasher::new();
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// A fact is ground exactly when it mentions no nulls.
    #[test]
    fn groundness_matches_null_census(f in fact_with_nulls()) {
        prop_assert_eq!(f.is_ground(), f.nulls().is_empty());
    }

    /// Renaming nulls to fresh ids leaves the null count unchanged, and
    /// renaming them all to constants makes the fact ground.
    #[test]
    fn rename_nulls_to_constants_grounds(f in fact_with_nulls()) {
        let rename: HashMap<NullId, Value> = f
            .nulls()
            .into_iter()
            .map(|n| (n, Value::Int(n.0 as i64)))
            .collect();
        let grounded = f.rename_nulls(&rename);
        prop_assert!(grounded.is_ground());
        prop_assert_eq!(grounded.arity(), f.arity());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Expression evaluation: integer addition and multiplication are
    /// commutative under the engine's evaluator.
    #[test]
    fn expr_arithmetic_commutes(a in -1000i64..1000, b in -1000i64..1000) {
        let subst = Substitution::new();
        for op in [BinOp::Add, BinOp::Mul] {
            let lhs = Expr::Binary(op, Box::new(Expr::constant(a)), Box::new(Expr::constant(b)));
            let rhs = Expr::Binary(op, Box::new(Expr::constant(b)), Box::new(Expr::constant(a)));
            prop_assert_eq!(lhs.eval(&subst).unwrap(), rhs.eval(&subst).unwrap());
        }
    }

    /// Comparison operators and their flipped versions agree when the
    /// operands are swapped.
    #[test]
    fn cmp_flip_is_consistent(a in ground_value(), b in ground_value()) {
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Neq] {
            prop_assert_eq!(op.eval(&a, &b), op.flipped().eval(&b, &a));
        }
    }
}
