//! The ontology model: a DL-Lite_R / OWL 2 QL-style TBox (axioms over class
//! and property expressions) plus an ABox (assertions about individuals).
//!
//! OWL 2 QL is the profile the paper singles out (requirement 2 and the
//! discussion of TriQ-Lite in Section 2). Its TBox axioms all fall into the
//! shapes below, every one of which translates into a single existential
//! rule or negative constraint — see [`crate::translate`](mod@crate::translate).

use std::collections::BTreeSet;
use std::fmt;

/// A property (role) expression: a named property or its inverse.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PropertyExpr {
    /// A named object property `R`.
    Named(String),
    /// The inverse `R⁻` of a named property.
    Inverse(String),
}

impl PropertyExpr {
    /// A named property.
    pub fn named(name: &str) -> Self {
        PropertyExpr::Named(name.to_string())
    }

    /// The inverse of a named property.
    pub fn inverse(name: &str) -> Self {
        PropertyExpr::Inverse(name.to_string())
    }

    /// The underlying property name.
    pub fn name(&self) -> &str {
        match self {
            PropertyExpr::Named(n) | PropertyExpr::Inverse(n) => n,
        }
    }

    /// Is this an inverse role?
    pub fn is_inverse(&self) -> bool {
        matches!(self, PropertyExpr::Inverse(_))
    }

    /// The inverse of this expression (`(R⁻)⁻ = R`).
    pub fn inverted(&self) -> PropertyExpr {
        match self {
            PropertyExpr::Named(n) => PropertyExpr::Inverse(n.clone()),
            PropertyExpr::Inverse(n) => PropertyExpr::Named(n.clone()),
        }
    }
}

impl fmt::Display for PropertyExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyExpr::Named(n) => write!(f, "{n}"),
            PropertyExpr::Inverse(n) => write!(f, "{n}⁻"),
        }
    }
}

/// A class expression of the kind allowed in OWL 2 QL / DL-Lite_R.
///
/// On the *left-hand side* of an inclusion only named classes and
/// unqualified existentials (`∃R`, `∃R⁻`) are allowed; on the *right-hand
/// side* qualified existentials (`∃R.B`) are additionally allowed. The
/// translation enforces this by construction of [`Axiom`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ClassExpr {
    /// A named class `A`.
    Named(String),
    /// Unqualified existential restriction `∃R` (or `∃R⁻`): the individuals
    /// with at least one `R`-successor (resp. predecessor).
    Some(PropertyExpr),
    /// Qualified existential restriction `∃R.B`: the individuals with an
    /// `R`-successor in class `B`. Only allowed on right-hand sides.
    SomeValuesFrom(PropertyExpr, String),
}

impl ClassExpr {
    /// A named class.
    pub fn named(name: &str) -> Self {
        ClassExpr::Named(name.to_string())
    }

    /// `∃R` for a named property.
    pub fn some(property: &str) -> Self {
        ClassExpr::Some(PropertyExpr::named(property))
    }

    /// `∃R⁻` for a named property.
    pub fn some_inverse(property: &str) -> Self {
        ClassExpr::Some(PropertyExpr::inverse(property))
    }

    /// `∃R.B` for a named property and class.
    pub fn some_values_from(property: &str, class: &str) -> Self {
        ClassExpr::SomeValuesFrom(PropertyExpr::named(property), class.to_string())
    }

    /// Is this expression allowed on the left-hand side of an inclusion
    /// (i.e. is it a DL-Lite_R *basic concept*)?
    pub fn is_basic(&self) -> bool {
        !matches!(self, ClassExpr::SomeValuesFrom(_, _))
    }
}

impl fmt::Display for ClassExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassExpr::Named(n) => write!(f, "{n}"),
            ClassExpr::Some(p) => write!(f, "∃{p}"),
            ClassExpr::SomeValuesFrom(p, c) => write!(f, "∃{p}.{c}"),
        }
    }
}

/// A TBox axiom.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Axiom {
    /// `A ⊑ B`: class inclusion. The left-hand side must be basic.
    SubClassOf(ClassExpr, ClassExpr),
    /// `A ⊓ B ⊑ ⊥`: class disjointness (both sides basic).
    DisjointClasses(ClassExpr, ClassExpr),
    /// `R ⊑ S`: property inclusion (either side may be inverse).
    SubPropertyOf(PropertyExpr, PropertyExpr),
    /// `R ⊓ S ⊑ ⊥`: property disjointness.
    DisjointProperties(PropertyExpr, PropertyExpr),
    /// `∃R ⊑ A` written as a domain axiom (a common OWL shorthand).
    Domain(String, String),
    /// `∃R⁻ ⊑ A` written as a range axiom.
    Range(String, String),
    /// `R ≡ S⁻`: inverse properties.
    InverseProperties(String, String),
    /// `R ≡ R⁻`: symmetric property (the paper's opening Example 1 —
    /// `Spouse(x, y, …) → Spouse(y, x, …)` — is exactly this shape).
    SymmetricProperty(String),
    /// `R(x, x)` is never true: irreflexive property, a negative constraint.
    IrreflexiveProperty(String),
}

impl Axiom {
    /// `lhs ⊑ rhs`; panics if `lhs` is not a basic concept (OWL 2 QL
    /// restriction).
    pub fn sub_class_of(lhs: ClassExpr, rhs: ClassExpr) -> Self {
        assert!(
            lhs.is_basic(),
            "the left-hand side of a class inclusion must be a basic concept in OWL 2 QL"
        );
        Axiom::SubClassOf(lhs, rhs)
    }

    /// Class disjointness; panics unless both sides are basic.
    pub fn disjoint_classes(a: ClassExpr, b: ClassExpr) -> Self {
        assert!(
            a.is_basic() && b.is_basic(),
            "disjointness requires basic concepts"
        );
        Axiom::DisjointClasses(a, b)
    }
}

impl fmt::Display for Axiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axiom::SubClassOf(a, b) => write!(f, "{a} ⊑ {b}"),
            Axiom::DisjointClasses(a, b) => write!(f, "{a} ⊓ {b} ⊑ ⊥"),
            Axiom::SubPropertyOf(r, s) => write!(f, "{r} ⊑ {s}"),
            Axiom::DisjointProperties(r, s) => write!(f, "{r} ⊓ {s} ⊑ ⊥"),
            Axiom::Domain(r, a) => write!(f, "∃{r} ⊑ {a}"),
            Axiom::Range(r, a) => write!(f, "∃{r}⁻ ⊑ {a}"),
            Axiom::InverseProperties(r, s) => write!(f, "{r} ≡ {s}⁻"),
            Axiom::SymmetricProperty(r) => write!(f, "{r} ≡ {r}⁻"),
            Axiom::IrreflexiveProperty(r) => write!(f, "irreflexive({r})"),
        }
    }
}

/// An ABox assertion.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Assertion {
    /// `A(a)`: individual `a` belongs to named class `A`.
    Class(String, String),
    /// `R(a, b)`: individuals `a` and `b` are related by property `R`.
    Property(String, String, String),
}

impl fmt::Display for Assertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Assertion::Class(c, a) => write!(f, "{c}({a})"),
            Assertion::Property(r, a, b) => write!(f, "{r}({a}, {b})"),
        }
    }
}

/// An ontology: a TBox (axioms) plus an ABox (assertions).
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Ontology {
    /// TBox axioms, in insertion order.
    pub axioms: Vec<Axiom>,
    /// ABox assertions, in insertion order.
    pub assertions: Vec<Assertion>,
}

impl Ontology {
    /// The empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a TBox axiom.
    pub fn add_axiom(&mut self, axiom: Axiom) -> &mut Self {
        self.axioms.push(axiom);
        self
    }

    /// Add a class assertion `class(individual)`.
    pub fn add_class_assertion(&mut self, class: &str, individual: &str) -> &mut Self {
        self.assertions
            .push(Assertion::Class(class.to_string(), individual.to_string()));
        self
    }

    /// Add a property assertion `property(subject, object)`.
    pub fn add_property_assertion(
        &mut self,
        property: &str,
        subject: &str,
        object: &str,
    ) -> &mut Self {
        self.assertions.push(Assertion::Property(
            property.to_string(),
            subject.to_string(),
            object.to_string(),
        ));
        self
    }

    /// The named classes mentioned anywhere in the ontology.
    pub fn classes(&self) -> BTreeSet<String> {
        fn class_names(c: &ClassExpr) -> Option<String> {
            match c {
                ClassExpr::Named(n) | ClassExpr::SomeValuesFrom(_, n) => Some(n.clone()),
                ClassExpr::Some(_) => None,
            }
        }
        let mut out = BTreeSet::new();
        for a in &self.axioms {
            match a {
                Axiom::SubClassOf(l, r) | Axiom::DisjointClasses(l, r) => {
                    out.extend(class_names(l));
                    out.extend(class_names(r));
                }
                Axiom::Domain(_, c) | Axiom::Range(_, c) => {
                    out.insert(c.clone());
                }
                _ => {}
            }
        }
        for a in &self.assertions {
            if let Assertion::Class(c, _) = a {
                out.insert(c.clone());
            }
        }
        out
    }

    /// The named properties mentioned anywhere in the ontology.
    pub fn properties(&self) -> BTreeSet<String> {
        fn property_name(c: &ClassExpr) -> Option<String> {
            match c {
                ClassExpr::Some(p) | ClassExpr::SomeValuesFrom(p, _) => Some(p.name().to_string()),
                ClassExpr::Named(_) => None,
            }
        }
        let mut out = BTreeSet::new();
        for a in &self.axioms {
            match a {
                Axiom::SubClassOf(l, r) | Axiom::DisjointClasses(l, r) => {
                    out.extend(property_name(l));
                    out.extend(property_name(r));
                }
                Axiom::SubPropertyOf(r, s) | Axiom::DisjointProperties(r, s) => {
                    out.insert(r.name().to_string());
                    out.insert(s.name().to_string());
                }
                Axiom::Domain(r, _)
                | Axiom::Range(r, _)
                | Axiom::SymmetricProperty(r)
                | Axiom::IrreflexiveProperty(r) => {
                    out.insert(r.clone());
                }
                Axiom::InverseProperties(r, s) => {
                    out.insert(r.clone());
                    out.insert(s.clone());
                }
            }
        }
        for a in &self.assertions {
            if let Assertion::Property(r, _, _) = a {
                out.insert(r.clone());
            }
        }
        out
    }

    /// The individuals named in the ABox.
    pub fn individuals(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for a in &self.assertions {
            match a {
                Assertion::Class(_, i) => {
                    out.insert(i.clone());
                }
                Assertion::Property(_, s, o) => {
                    out.insert(s.clone());
                    out.insert(o.clone());
                }
            }
        }
        out
    }

    /// Number of TBox axioms.
    pub fn tbox_size(&self) -> usize {
        self.axioms.len()
    }

    /// Number of ABox assertions.
    pub fn abox_size(&self) -> usize {
        self.assertions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn university_ontology() -> Ontology {
        let mut onto = Ontology::new();
        onto.add_axiom(Axiom::sub_class_of(
            ClassExpr::named("Professor"),
            ClassExpr::named("Faculty"),
        ));
        onto.add_axiom(Axiom::sub_class_of(
            ClassExpr::named("Faculty"),
            ClassExpr::some("worksFor"),
        ));
        onto.add_axiom(Axiom::Range("worksFor".into(), "University".into()));
        onto.add_axiom(Axiom::InverseProperties(
            "worksFor".into(),
            "employs".into(),
        ));
        onto.add_axiom(Axiom::disjoint_classes(
            ClassExpr::named("Student"),
            ClassExpr::named("University"),
        ));
        onto.add_class_assertion("Professor", "turing");
        onto.add_property_assertion("worksFor", "church", "princeton");
        onto
    }

    #[test]
    fn vocabulary_census() {
        let onto = university_ontology();
        let classes = onto.classes();
        assert!(classes.contains("Professor"));
        assert!(classes.contains("Faculty"));
        assert!(classes.contains("University"));
        assert!(classes.contains("Student"));
        let properties = onto.properties();
        assert!(properties.contains("worksFor"));
        assert!(properties.contains("employs"));
        let individuals = onto.individuals();
        assert_eq!(
            individuals.into_iter().collect::<Vec<_>>(),
            vec!["church", "princeton", "turing"]
        );
        assert_eq!(onto.tbox_size(), 5);
        assert_eq!(onto.abox_size(), 2);
    }

    #[test]
    fn property_expressions_invert() {
        let r = PropertyExpr::named("controls");
        assert!(!r.is_inverse());
        assert!(r.inverted().is_inverse());
        assert_eq!(r.inverted().inverted(), r);
        assert_eq!(r.name(), "controls");
        assert_eq!(r.inverted().name(), "controls");
    }

    #[test]
    fn class_expression_shapes() {
        assert!(ClassExpr::named("A").is_basic());
        assert!(ClassExpr::some("R").is_basic());
        assert!(ClassExpr::some_inverse("R").is_basic());
        assert!(!ClassExpr::some_values_from("R", "B").is_basic());
        assert_eq!(ClassExpr::some_values_from("R", "B").to_string(), "∃R.B");
        assert_eq!(ClassExpr::some_inverse("R").to_string(), "∃R⁻");
    }

    #[test]
    #[should_panic(expected = "left-hand side")]
    fn qualified_existential_rejected_on_lhs() {
        Axiom::sub_class_of(ClassExpr::some_values_from("R", "B"), ClassExpr::named("A"));
    }

    #[test]
    fn axioms_display_in_dl_syntax() {
        assert_eq!(
            Axiom::sub_class_of(ClassExpr::named("A"), ClassExpr::some("R")).to_string(),
            "A ⊑ ∃R"
        );
        assert_eq!(Axiom::Range("R".into(), "B".into()).to_string(), "∃R⁻ ⊑ B");
        assert_eq!(
            Axiom::SymmetricProperty("Spouse".into()).to_string(),
            "Spouse ≡ Spouse⁻"
        );
    }
}
