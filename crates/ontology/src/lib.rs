//! Ontological reasoning over knowledge graphs, on top of the Vadalog engine.
//!
//! Requirement 2 of the paper ("Ontological Reasoning over KGs") asks that
//! the reasoning language "should at least be able to express SPARQL
//! reasoning under the OWL 2 QL entailment regime and set semantics", and
//! Section 2 notes that Warded Datalog± "generalizes ontology languages such
//! as the OWL 2 QL profile of OWL" and "is suitable for querying RDF graphs"
//! (the TriQ-Lite 1.0 route of \[32\]).
//!
//! This crate makes that claim executable:
//!
//! * [`axiom`] — a DL-Lite_R / OWL 2 QL-style ontology model: class and
//!   property inclusions (including existential restrictions `∃R` and
//!   `∃R⁻`), domains, ranges, inverse/symmetric properties, disjointness,
//!   plus ABox assertions;
//! * [`translate`](mod@translate) — the translation of an ontology into a Warded Datalog±
//!   [`vadalog_model::Program`]; the output is always inside the supported
//!   fragment, so the engine's termination guarantees apply;
//! * [`triples`] — an RDF-style triple view of ABoxes and reasoning results
//!   (`rdf:type` triples for classes, property triples for roles);
//! * [`query`] — conjunctive queries over the ontology, compiled to an
//!   answer predicate and evaluated under certain-answer semantics ("set
//!   semantics and the entailment regime for OWL 2 QL").
//!
//! # Quick example
//!
//! ```
//! use vadalog_ontology::prelude::*;
//!
//! let mut onto = Ontology::new();
//! // Every company is controlled by some person of significant control.
//! onto.add_axiom(Axiom::sub_class_of(
//!     ClassExpr::named("Company"),
//!     ClassExpr::some_inverse("controlledBy"),
//! ));
//! // Whoever controls something is a Controller.
//! onto.add_axiom(Axiom::sub_class_of(
//!     ClassExpr::some("controlledBy"),
//!     ClassExpr::named("Controller"),
//! ));
//! onto.add_class_assertion("Company", "acme");
//!
//! let answers = ConjunctiveQuery::new(vec!["x"])
//!     .with_class_atom("Company", "x")
//!     .certain_answers(&onto)
//!     .unwrap();
//! assert_eq!(answers.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod axiom;
pub mod query;
pub mod translate;
pub mod triples;

pub use axiom::{Assertion, Axiom, ClassExpr, Ontology, PropertyExpr};
pub use query::{ConjunctiveQuery, QueryAtom, QueryError, QueryTerm, ANSWER_PREDICATE};
pub use translate::{translate, TranslationOptions};
pub use triples::{Triple, TripleStore, RDF_TYPE};

/// Convenient glob import for downstream users.
pub mod prelude {
    pub use crate::axiom::{Assertion, Axiom, ClassExpr, Ontology, PropertyExpr};
    pub use crate::query::{ConjunctiveQuery, QueryAtom, QueryTerm};
    pub use crate::translate::{translate, TranslationOptions};
    pub use crate::triples::{Triple, TripleStore, RDF_TYPE};
}
