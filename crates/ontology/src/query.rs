//! Conjunctive queries over ontologies, answered under certain-answer
//! semantics ("set semantics and the entailment regime for OWL 2 QL",
//! requirement 2 of the paper).
//!
//! A [`ConjunctiveQuery`] is a set of class and property atoms over variables
//! and individual constants plus a tuple of answer variables. Answering works
//! the way the Vadalog system answers every reasoning task: the query is
//! compiled to one extra rule deriving a fresh answer predicate (the paper's
//! `Ans`), the rule set is run through the engine, and the ground tuples of
//! the answer predicate are the certain answers.

use crate::axiom::Ontology;
use crate::translate::{translate, TranslationOptions};
use std::fmt;
use vadalog_engine::{Reasoner, ReasonerError, RunResult};
use vadalog_model::prelude::*;

/// One atom of a conjunctive query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QueryAtom {
    /// `Class(term)`.
    Class {
        /// The class name.
        class: String,
        /// The term: a query variable or an individual constant.
        term: QueryTerm,
    },
    /// `property(subject, object)`.
    Property {
        /// The property name.
        property: String,
        /// Subject term.
        subject: QueryTerm,
        /// Object term.
        object: QueryTerm,
    },
}

/// A term of a query atom: a variable or an individual name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QueryTerm {
    /// A query variable (shared variables express joins).
    Var(String),
    /// An individual constant.
    Individual(String),
}

impl QueryTerm {
    fn to_rule_term(&self) -> Term {
        match self {
            QueryTerm::Var(v) => Term::var(v),
            QueryTerm::Individual(i) => Term::Const(Value::str(i)),
        }
    }
}

impl fmt::Display for QueryTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryTerm::Var(v) => write!(f, "?{v}"),
            QueryTerm::Individual(i) => write!(f, "{i}"),
        }
    }
}

/// Errors raised while answering a query.
#[derive(Debug)]
pub enum QueryError {
    /// An answer variable does not occur in any query atom.
    UnboundAnswerVariable(String),
    /// The query has no atoms.
    EmptyQuery,
    /// The underlying reasoner failed.
    Reasoner(ReasonerError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnboundAnswerVariable(v) => {
                write!(f, "answer variable ?{v} does not occur in the query body")
            }
            QueryError::EmptyQuery => write!(f, "the query has no atoms"),
            QueryError::Reasoner(e) => write!(f, "reasoner error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ReasonerError> for QueryError {
    fn from(e: ReasonerError) -> Self {
        QueryError::Reasoner(e)
    }
}

/// The reserved answer-predicate name used by compiled queries.
pub const ANSWER_PREDICATE: &str = "QAns";

/// A conjunctive query: answer variables plus a conjunction of atoms.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ConjunctiveQuery {
    /// The answer (distinguished) variables, in output order.
    pub answer_vars: Vec<String>,
    /// The query atoms.
    pub atoms: Vec<QueryAtom>,
}

impl ConjunctiveQuery {
    /// A query with the given answer variables and no atoms yet.
    pub fn new(answer_vars: Vec<&str>) -> Self {
        ConjunctiveQuery {
            answer_vars: answer_vars.into_iter().map(str::to_string).collect(),
            atoms: Vec::new(),
        }
    }

    /// A boolean (yes/no) query: no answer variables.
    pub fn boolean() -> Self {
        Self::new(Vec::new())
    }

    /// Add a class atom over a variable, builder style.
    pub fn with_class_atom(mut self, class: &str, var: &str) -> Self {
        self.atoms.push(QueryAtom::Class {
            class: class.to_string(),
            term: QueryTerm::Var(var.to_string()),
        });
        self
    }

    /// Add a class atom over a named individual.
    pub fn with_class_assertion(mut self, class: &str, individual: &str) -> Self {
        self.atoms.push(QueryAtom::Class {
            class: class.to_string(),
            term: QueryTerm::Individual(individual.to_string()),
        });
        self
    }

    /// Add a property atom over two variables.
    pub fn with_property_atom(mut self, property: &str, subject: &str, object: &str) -> Self {
        self.atoms.push(QueryAtom::Property {
            property: property.to_string(),
            subject: QueryTerm::Var(subject.to_string()),
            object: QueryTerm::Var(object.to_string()),
        });
        self
    }

    /// Add a property atom with explicit terms.
    pub fn with_property_terms(
        mut self,
        property: &str,
        subject: QueryTerm,
        object: QueryTerm,
    ) -> Self {
        self.atoms.push(QueryAtom::Property {
            property: property.to_string(),
            subject,
            object,
        });
        self
    }

    /// The variables occurring in the query body.
    pub fn body_variables(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut push = |t: &QueryTerm| {
            if let QueryTerm::Var(v) = t {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        };
        for a in &self.atoms {
            match a {
                QueryAtom::Class { term, .. } => push(term),
                QueryAtom::Property {
                    subject, object, ..
                } => {
                    push(subject);
                    push(object);
                }
            }
        }
        out
    }

    /// Compile the query into one rule deriving [`ANSWER_PREDICATE`], using
    /// the same predicate-name prefix as the ontology translation.
    pub fn to_rule(&self, options: &TranslationOptions) -> Result<Rule, QueryError> {
        if self.atoms.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        let body_vars = self.body_variables();
        for v in &self.answer_vars {
            if !body_vars.contains(v) {
                return Err(QueryError::UnboundAnswerVariable(v.clone()));
            }
        }
        let mut body = Vec::new();
        for a in &self.atoms {
            let atom = match a {
                QueryAtom::Class { class, term } => Atom {
                    predicate: intern(&format!("{}{}", options.prefix, class)),
                    terms: vec![term.to_rule_term()],
                },
                QueryAtom::Property {
                    property,
                    subject,
                    object,
                } => Atom {
                    predicate: intern(&format!("{}{}", options.prefix, property)),
                    terms: vec![subject.to_rule_term(), object.to_rule_term()],
                },
            };
            body.push(Literal::Atom(atom));
        }
        // Boolean queries still need a head of arity ≥ 1; we emit the ground
        // constant `true` so that an anonymous (labelled-null) witness in the
        // body still yields a *certain* yes-answer.
        let head_terms: Vec<Term> = if self.answer_vars.is_empty() {
            vec![Term::Const(Value::Bool(true))]
        } else {
            self.answer_vars.iter().map(|v| Term::var(v)).collect()
        };
        Ok(Rule::new(
            body,
            Atom {
                predicate: intern(ANSWER_PREDICATE),
                terms: head_terms,
            },
        ))
    }

    /// Compile ontology + query into one executable program.
    pub fn to_program(
        &self,
        ontology: &Ontology,
        options: &TranslationOptions,
    ) -> Result<Program, QueryError> {
        let mut program = translate(ontology, options);
        program.add_rule(self.to_rule(options)?);
        program.add_annotation(Annotation::new(
            AnnotationKind::Output,
            ANSWER_PREDICATE,
            Vec::new(),
        ));
        Ok(program)
    }

    /// The certain answers of the query over the ontology: ground tuples of
    /// the answer variables that hold in every model (null-carrying tuples
    /// are dropped, which is exactly the paper's certain-answer
    /// post-processing directive).
    pub fn certain_answers(&self, ontology: &Ontology) -> Result<Vec<Vec<Value>>, QueryError> {
        self.certain_answers_with(ontology, &Reasoner::new())
    }

    /// Like [`Self::certain_answers`], with an explicitly configured reasoner.
    pub fn certain_answers_with(
        &self,
        ontology: &Ontology,
        reasoner: &Reasoner,
    ) -> Result<Vec<Vec<Value>>, QueryError> {
        let result = self.run(ontology, reasoner)?;
        let mut answers: Vec<Vec<Value>> = result
            .output(ANSWER_PREDICATE)
            .into_iter()
            .filter(Fact::is_ground)
            .map(|f| f.args)
            .collect();
        answers.sort();
        answers.dedup();
        if self.answer_vars.is_empty() {
            // boolean query: collapse to zero-or-one empty tuple
            answers.truncate(1);
            answers.iter_mut().for_each(Vec::clear);
        }
        Ok(answers)
    }

    /// Evaluate a boolean query: is the query entailed?
    pub fn is_entailed(&self, ontology: &Ontology) -> Result<bool, QueryError> {
        Ok(!self.certain_answers(ontology)?.is_empty())
    }

    /// Run ontology + query through a reasoner and return the raw result
    /// (useful when the caller also wants the entailed instance or the run
    /// statistics).
    pub fn run(&self, ontology: &Ontology, reasoner: &Reasoner) -> Result<RunResult, QueryError> {
        let options = TranslationOptions::default();
        let program = self.to_program(ontology, &options)?;
        Ok(reasoner.reason(&program)?)
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q(")?;
        for (i, v) in self.answer_vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "?{v}")?;
        }
        write!(f, ") ← ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            match a {
                QueryAtom::Class { class, term } => write!(f, "{class}({term})")?,
                QueryAtom::Property {
                    property,
                    subject,
                    object,
                } => write!(f, "{property}({subject}, {object})")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::{Axiom, ClassExpr, Ontology};

    /// The running university ontology used throughout the module tests.
    fn university() -> Ontology {
        let mut onto = Ontology::new();
        onto.add_axiom(Axiom::sub_class_of(
            ClassExpr::named("Professor"),
            ClassExpr::named("Faculty"),
        ));
        onto.add_axiom(Axiom::sub_class_of(
            ClassExpr::named("Faculty"),
            ClassExpr::some("worksFor"),
        ));
        onto.add_axiom(Axiom::Range("worksFor".into(), "University".into()));
        onto.add_axiom(Axiom::Domain("teaches".into(), "Faculty".into()));
        onto.add_class_assertion("Professor", "turing");
        onto.add_class_assertion("Professor", "church");
        onto.add_property_assertion("worksFor", "church", "princeton");
        onto.add_property_assertion("teaches", "goedel", "logic101");
        onto
    }

    #[test]
    fn class_query_uses_the_hierarchy() {
        let q = ConjunctiveQuery::new(vec!["x"]).with_class_atom("Faculty", "x");
        let answers = q.certain_answers(&university()).unwrap();
        let names: Vec<&Value> = answers.iter().map(|t| &t[0]).collect();
        assert!(names.contains(&&Value::str("turing")));
        assert!(names.contains(&&Value::str("church")));
        // goedel teaches something, so the Domain axiom makes it Faculty too
        assert!(names.contains(&&Value::str("goedel")));
    }

    #[test]
    fn certain_answers_exclude_anonymous_witnesses() {
        // Every faculty member works for *some* university, but only
        // princeton is a named one; certain answers must not contain nulls.
        let q = ConjunctiveQuery::new(vec!["u"]).with_class_atom("University", "u");
        let answers = q.certain_answers(&university()).unwrap();
        assert_eq!(answers, vec![vec![Value::str("princeton")]]);
    }

    #[test]
    fn join_query_over_property_and_class() {
        let q = ConjunctiveQuery::new(vec!["p", "u"])
            .with_property_atom("worksFor", "p", "u")
            .with_class_atom("University", "u");
        let answers = q.certain_answers(&university()).unwrap();
        assert_eq!(
            answers,
            vec![vec![Value::str("church"), Value::str("princeton")]]
        );
    }

    #[test]
    fn boolean_queries_check_entailment() {
        let yes = ConjunctiveQuery::boolean().with_class_assertion("Faculty", "turing");
        assert!(yes.is_entailed(&university()).unwrap());
        let no = ConjunctiveQuery::boolean().with_class_assertion("University", "turing");
        assert!(!no.is_entailed(&university()).unwrap());
        // existential entailment: turing works for something (an anonymous
        // university), so the boolean query with an unconstrained object holds
        let exists = ConjunctiveQuery::boolean().with_property_terms(
            "worksFor",
            QueryTerm::Individual("turing".into()),
            QueryTerm::Var("u".into()),
        );
        assert!(exists.is_entailed(&university()).unwrap());
    }

    #[test]
    fn unbound_answer_variables_are_rejected() {
        let q = ConjunctiveQuery::new(vec!["x", "zzz"]).with_class_atom("Faculty", "x");
        assert!(matches!(
            q.certain_answers(&university()),
            Err(QueryError::UnboundAnswerVariable(v)) if v == "zzz"
        ));
    }

    #[test]
    fn empty_queries_are_rejected() {
        let q = ConjunctiveQuery::new(vec![]);
        assert!(matches!(
            q.certain_answers(&university()),
            Err(QueryError::EmptyQuery)
        ));
    }

    #[test]
    fn answers_are_deterministic_and_deduplicated() {
        let q = ConjunctiveQuery::new(vec!["x"]).with_class_atom("Faculty", "x");
        let a = q.certain_answers(&university()).unwrap();
        let b = q.certain_answers(&university()).unwrap();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(a, sorted);
    }

    #[test]
    fn display_renders_dl_style() {
        let q = ConjunctiveQuery::new(vec!["p"])
            .with_property_atom("worksFor", "p", "u")
            .with_class_atom("University", "u");
        assert_eq!(q.to_string(), "q(?p) ← worksFor(?p, ?u) ∧ University(?u)");
    }
}
