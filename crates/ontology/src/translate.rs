//! Translation of an OWL 2 QL / DL-Lite_R ontology into Warded Datalog±.
//!
//! Every axiom becomes one (or two) existential rules or negative
//! constraints, exactly in the spirit of Section 2 of the paper: class
//! membership `A(x)` is a unary atom, a property assertion `R(a, b)` a binary
//! atom, and existential restrictions on right-hand sides become existential
//! quantification in rule heads. The resulting program is always inside the
//! fragment supported by the engine (see the tests and the property suite).

use crate::axiom::{Assertion, Axiom, ClassExpr, Ontology, PropertyExpr};
use vadalog_model::prelude::*;

/// Options controlling the translation.
#[derive(Clone, Debug)]
pub struct TranslationOptions {
    /// Mark every named class and property as `@output` so the full
    /// entailment shows up in [`vadalog_engine::RunResult::outputs`].
    pub output_everything: bool,
    /// Predicate-name prefix, useful to avoid clashes when the translated
    /// program is merged with hand-written rules.
    pub prefix: String,
}

impl Default for TranslationOptions {
    fn default() -> Self {
        TranslationOptions {
            output_everything: true,
            prefix: String::new(),
        }
    }
}

impl TranslationOptions {
    fn pred(&self, name: &str) -> String {
        format!("{}{}", self.prefix, name)
    }
}

/// Translate an ontology into a Warded Datalog± program.
///
/// The encoding is the standard one:
///
/// | axiom              | rule(s)                                  |
/// |---------------------|------------------------------------------|
/// | `A ⊑ B`            | `A(x) → B(x)`                            |
/// | `A ⊑ ∃R`           | `A(x) → ∃y R(x, y)`                       |
/// | `A ⊑ ∃R⁻`          | `A(x) → ∃y R(y, x)`                       |
/// | `A ⊑ ∃R.B`         | `A(x) → ∃y R(x, y), B(y)`                 |
/// | `∃R ⊑ B`           | `R(x, y) → B(x)`                          |
/// | `∃R⁻ ⊑ B`          | `R(x, y) → B(y)`                          |
/// | `R ⊑ S`            | `R(x, y) → S(x, y)` (inverses swap x, y) |
/// | `A ⊓ B ⊑ ⊥`        | `A(x), B(x) → ⊥`                          |
/// | `R ⊓ S ⊑ ⊥`        | `R(x, y), S(x, y) → ⊥`                    |
/// | domain / range      | `R(x, y) → A(x)` / `R(x, y) → A(y)`       |
/// | inverse properties  | `R(x, y) → S(y, x)` and `S(x, y) → R(y, x)` |
/// | symmetric property  | `R(x, y) → R(y, x)`                       |
/// | irreflexive property| `R(x, x) → ⊥`                             |
pub fn translate(ontology: &Ontology, options: &TranslationOptions) -> Program {
    let mut program = Program::new();
    for axiom in &ontology.axioms {
        for rule in axiom_rules(axiom, options) {
            program.add_rule(rule);
        }
    }
    for assertion in &ontology.assertions {
        program.add_fact(assertion_fact(assertion, options));
    }
    if options.output_everything {
        for class in ontology.classes() {
            program.add_annotation(Annotation::new(
                AnnotationKind::Output,
                &options.pred(&class),
                Vec::new(),
            ));
        }
        for property in ontology.properties() {
            program.add_annotation(Annotation::new(
                AnnotationKind::Output,
                &options.pred(&property),
                Vec::new(),
            ));
        }
    }
    program
}

/// The atom `C(term)` for membership in a basic concept, or the pair of
/// atoms needed for a qualified existential (`R(x, y), B(y)`).
fn class_atom(expr: &ClassExpr, var: &str, fresh: &str, options: &TranslationOptions) -> Vec<Atom> {
    match expr {
        ClassExpr::Named(name) => vec![Atom::vars(&options.pred(name), &[var])],
        ClassExpr::Some(p) => vec![property_atom(p, var, fresh, options)],
        ClassExpr::SomeValuesFrom(p, class) => vec![
            property_atom(p, var, fresh, options),
            Atom::vars(&options.pred(class), &[fresh]),
        ],
    }
}

/// The atom `R(subject, object)` with inverse roles swapping the positions.
fn property_atom(
    expr: &PropertyExpr,
    subject: &str,
    object: &str,
    options: &TranslationOptions,
) -> Atom {
    match expr {
        PropertyExpr::Named(name) => Atom::vars(&options.pred(name), &[subject, object]),
        PropertyExpr::Inverse(name) => Atom::vars(&options.pred(name), &[object, subject]),
    }
}

fn axiom_rules(axiom: &Axiom, options: &TranslationOptions) -> Vec<Rule> {
    match axiom {
        Axiom::SubClassOf(lhs, rhs) => {
            let body = class_atom(lhs, "x", "yb", options);
            let head = class_atom(rhs, "x", "yh", options);
            vec![Rule::tgd(body, head).with_label(&axiom.to_string())]
        }
        Axiom::DisjointClasses(a, b) => {
            let mut body = class_atom(a, "x", "ya", options);
            body.extend(class_atom(b, "x", "yb", options));
            vec![
                Rule::constraint(body.into_iter().map(Literal::Atom).collect())
                    .with_label(&axiom.to_string()),
            ]
        }
        Axiom::SubPropertyOf(r, s) => {
            let body = vec![property_atom(r, "x", "y", options)];
            let head = vec![property_atom(s, "x", "y", options)];
            vec![Rule::tgd(body, head).with_label(&axiom.to_string())]
        }
        Axiom::DisjointProperties(r, s) => {
            let body = vec![
                Literal::Atom(property_atom(r, "x", "y", options)),
                Literal::Atom(property_atom(s, "x", "y", options)),
            ];
            vec![Rule::constraint(body).with_label(&axiom.to_string())]
        }
        Axiom::Domain(r, class) => vec![Rule::tgd(
            vec![Atom::vars(&options.pred(r), &["x", "y"])],
            vec![Atom::vars(&options.pred(class), &["x"])],
        )
        .with_label(&axiom.to_string())],
        Axiom::Range(r, class) => vec![Rule::tgd(
            vec![Atom::vars(&options.pred(r), &["x", "y"])],
            vec![Atom::vars(&options.pred(class), &["y"])],
        )
        .with_label(&axiom.to_string())],
        Axiom::InverseProperties(r, s) => vec![
            Rule::tgd(
                vec![Atom::vars(&options.pred(r), &["x", "y"])],
                vec![Atom::vars(&options.pred(s), &["y", "x"])],
            )
            .with_label(&axiom.to_string()),
            Rule::tgd(
                vec![Atom::vars(&options.pred(s), &["x", "y"])],
                vec![Atom::vars(&options.pred(r), &["y", "x"])],
            )
            .with_label(&axiom.to_string()),
        ],
        Axiom::SymmetricProperty(r) => vec![Rule::tgd(
            vec![Atom::vars(&options.pred(r), &["x", "y"])],
            vec![Atom::vars(&options.pred(r), &["y", "x"])],
        )
        .with_label(&axiom.to_string())],
        Axiom::IrreflexiveProperty(r) => vec![Rule::constraint(vec![Literal::Atom(Atom::vars(
            &options.pred(r),
            &["x", "x"],
        ))])
        .with_label(&axiom.to_string())],
    }
}

fn assertion_fact(assertion: &Assertion, options: &TranslationOptions) -> Fact {
    match assertion {
        Assertion::Class(class, individual) => {
            Fact::new(&options.pred(class), vec![Value::str(individual)])
        }
        Assertion::Property(property, subject, object) => Fact::new(
            &options.pred(property),
            vec![Value::str(subject), Value::str(object)],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::{Axiom, ClassExpr, Ontology};
    use vadalog_analysis::classify;
    use vadalog_engine::Reasoner;

    fn company_ontology() -> Ontology {
        let mut onto = Ontology::new();
        // Every company has some key person (Example 3, rendered as an axiom).
        onto.add_axiom(Axiom::sub_class_of(
            ClassExpr::named("Company"),
            ClassExpr::some_inverse("keyPersonOf"),
        ));
        // Key persons are persons.
        onto.add_axiom(Axiom::Domain("keyPersonOf".into(), "Person".into()));
        onto.add_axiom(Axiom::Range("keyPersonOf".into(), "Company".into()));
        // controls is irreflexive and its domain/range are companies.
        onto.add_axiom(Axiom::Domain("controls".into(), "Company".into()));
        onto.add_axiom(Axiom::Range("controls".into(), "Company".into()));
        onto.add_axiom(Axiom::IrreflexiveProperty("controls".into()));
        // Persons and companies are disjoint.
        onto.add_axiom(Axiom::disjoint_classes(
            ClassExpr::named("Person"),
            ClassExpr::named("Company"),
        ));
        onto.add_class_assertion("Company", "acme");
        onto.add_property_assertion("controls", "acme", "subco");
        onto
    }

    #[test]
    fn translation_is_supported_fragment() {
        let program = translate(&company_ontology(), &TranslationOptions::default());
        let report = classify(&program);
        assert!(
            report.is_supported(),
            "translated ontology outside the supported fragment"
        );
        assert!(report.is_warded);
    }

    #[test]
    fn subclass_chain_is_entailed() {
        let mut onto = Ontology::new();
        onto.add_axiom(Axiom::sub_class_of(
            ClassExpr::named("Professor"),
            ClassExpr::named("Faculty"),
        ));
        onto.add_axiom(Axiom::sub_class_of(
            ClassExpr::named("Faculty"),
            ClassExpr::named("Person"),
        ));
        onto.add_class_assertion("Professor", "turing");
        let program = translate(&onto, &TranslationOptions::default());
        let result = Reasoner::new().reason(&program).unwrap();
        assert!(result
            .output("Person")
            .contains(&Fact::new("Person", vec!["turing".into()])));
    }

    #[test]
    fn existential_restriction_creates_witnesses() {
        let program = translate(&company_ontology(), &TranslationOptions::default());
        let result = Reasoner::new().reason(&program).unwrap();
        // Both companies must have a (possibly anonymous) key person.
        let key_person_of = result.facts_of("keyPersonOf");
        assert!(key_person_of
            .iter()
            .any(|f| f.args[1] == Value::str("acme")));
        assert!(key_person_of
            .iter()
            .any(|f| f.args[1] == Value::str("subco")));
        // ... and those witnesses are classified as persons via the domain axiom.
        assert!(!result.facts_of("Person").is_empty());
    }

    #[test]
    fn range_and_domain_classify_role_fillers() {
        let program = translate(&company_ontology(), &TranslationOptions::default());
        let result = Reasoner::new().reason(&program).unwrap();
        let companies = result.output("Company");
        assert!(companies.contains(&Fact::new("Company", vec!["acme".into()])));
        assert!(companies.contains(&Fact::new("Company", vec!["subco".into()])));
    }

    #[test]
    fn disjointness_violations_are_reported() {
        let mut onto = company_ontology();
        // Assert a contradiction: acme is also a person.
        onto.add_class_assertion("Person", "acme");
        let program = translate(&onto, &TranslationOptions::default());
        let result = Reasoner::new().reason(&program).unwrap();
        assert!(
            !result.violations.is_empty(),
            "disjointness violation was not detected"
        );
    }

    #[test]
    fn irreflexive_violations_are_reported() {
        let mut onto = company_ontology();
        onto.add_property_assertion("controls", "selfish", "selfish");
        let program = translate(&onto, &TranslationOptions::default());
        let result = Reasoner::new().reason(&program).unwrap();
        assert!(!result.violations.is_empty());
    }

    #[test]
    fn inverse_and_symmetric_properties() {
        let mut onto = Ontology::new();
        onto.add_axiom(Axiom::InverseProperties(
            "controls".into(),
            "controlledBy".into(),
        ));
        onto.add_axiom(Axiom::SymmetricProperty("partnerOf".into()));
        onto.add_property_assertion("controls", "a", "b");
        onto.add_property_assertion("partnerOf", "a", "c");
        let program = translate(&onto, &TranslationOptions::default());
        let result = Reasoner::new().reason(&program).unwrap();
        assert!(result
            .facts_of("controlledBy")
            .contains(&Fact::new("controlledBy", vec!["b".into(), "a".into()])));
        assert!(result
            .facts_of("partnerOf")
            .contains(&Fact::new("partnerOf", vec!["c".into(), "a".into()])));
    }

    #[test]
    fn qualified_existentials_populate_the_filler_class() {
        let mut onto = Ontology::new();
        onto.add_axiom(Axiom::sub_class_of(
            ClassExpr::named("Company"),
            ClassExpr::some_values_from("hasBoard", "Board"),
        ));
        onto.add_class_assertion("Company", "acme");
        let program = translate(&onto, &TranslationOptions::default());
        let result = Reasoner::new().reason(&program).unwrap();
        assert_eq!(result.facts_of("hasBoard").len(), 1);
        assert_eq!(result.facts_of("Board").len(), 1);
        // the witness board is the object of the hasBoard edge
        let edge = &result.facts_of("hasBoard")[0];
        let board = &result.facts_of("Board")[0];
        assert_eq!(edge.args[1], board.args[0]);
    }

    #[test]
    fn prefixing_avoids_predicate_clashes() {
        let options = TranslationOptions {
            prefix: "kg_".to_string(),
            ..TranslationOptions::default()
        };
        let program = translate(&company_ontology(), &options);
        assert!(program.rules.iter().all(|r| r
            .head_predicates()
            .iter()
            .all(|p| p.as_str().starts_with("kg_") || r.head_atoms().is_empty())));
        assert!(program
            .facts
            .iter()
            .all(|f| f.predicate_name().starts_with("kg_")));
    }

    #[test]
    fn subproperty_with_inverse_sides() {
        let mut onto = Ontology::new();
        onto.add_axiom(Axiom::SubPropertyOf(
            PropertyExpr::named("manages"),
            PropertyExpr::inverse("reportsTo"),
        ));
        onto.add_property_assertion("manages", "alice", "bob");
        let program = translate(&onto, &TranslationOptions::default());
        let result = Reasoner::new().reason(&program).unwrap();
        assert!(result
            .facts_of("reportsTo")
            .contains(&Fact::new("reportsTo", vec!["bob".into(), "alice".into()])));
    }
}
