//! RDF-style triple view of ABoxes and reasoning results.
//!
//! The paper motivates Warded Datalog± as "suitable for querying RDF graphs"
//! (Section 2). Knowledge-graph data frequently arrives as
//! subject–predicate–object triples; this module converts between triples
//! and the unary/binary facts the ontology translation works with:
//!
//! * `⟨a, rdf:type, C⟩`  ↔  `C(a)`
//! * `⟨a, R, b⟩`          ↔  `R(a, b)` for any other predicate `R`.

use crate::axiom::{Assertion, Ontology};
use std::collections::BTreeSet;
use std::fmt;
use vadalog_model::prelude::*;

/// The predicate used for class-membership triples.
pub const RDF_TYPE: &str = "rdf:type";

/// A subject–predicate–object triple over string identifiers.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Triple {
    /// Subject identifier.
    pub subject: String,
    /// Predicate identifier (`rdf:type` for class membership).
    pub predicate: String,
    /// Object identifier (a class name when the predicate is `rdf:type`).
    pub object: String,
}

impl Triple {
    /// Construct a triple.
    pub fn new(subject: &str, predicate: &str, object: &str) -> Self {
        Triple {
            subject: subject.to_string(),
            predicate: predicate.to_string(),
            object: object.to_string(),
        }
    }

    /// A class-membership triple `⟨individual, rdf:type, class⟩`.
    pub fn typed(individual: &str, class: &str) -> Self {
        Triple::new(individual, RDF_TYPE, class)
    }

    /// Is this a class-membership triple?
    pub fn is_type_triple(&self) -> bool {
        self.predicate == RDF_TYPE
    }

    /// The ABox assertion this triple denotes.
    pub fn to_assertion(&self) -> Assertion {
        if self.is_type_triple() {
            Assertion::Class(self.object.clone(), self.subject.clone())
        } else {
            Assertion::Property(
                self.predicate.clone(),
                self.subject.clone(),
                self.object.clone(),
            )
        }
    }

    /// The fact this triple denotes (`C(a)` or `R(a, b)`).
    pub fn to_fact(&self) -> Fact {
        if self.is_type_triple() {
            Fact::new(&self.object, vec![Value::str(&self.subject)])
        } else {
            Fact::new(
                &self.predicate,
                vec![Value::str(&self.subject), Value::str(&self.object)],
            )
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}, {}⟩", self.subject, self.predicate, self.object)
    }
}

/// A deduplicated, deterministic collection of triples.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct TripleStore {
    triples: BTreeSet<Triple>,
}

impl TripleStore {
    /// The empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a store from an iterator of triples.
    pub fn from_triples<I: IntoIterator<Item = Triple>>(triples: I) -> Self {
        TripleStore {
            triples: triples.into_iter().collect(),
        }
    }

    /// Insert a triple; returns whether it was new.
    pub fn insert(&mut self, triple: Triple) -> bool {
        self.triples.insert(triple)
    }

    /// Number of distinct triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, triple: &Triple) -> bool {
        self.triples.contains(triple)
    }

    /// Iterate over the triples in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }

    /// All triples with the given subject.
    pub fn about(&self, subject: &str) -> Vec<&Triple> {
        self.triples
            .iter()
            .filter(|t| t.subject == subject)
            .collect()
    }

    /// All triples with the given predicate.
    pub fn with_predicate(&self, predicate: &str) -> Vec<&Triple> {
        self.triples
            .iter()
            .filter(|t| t.predicate == predicate)
            .collect()
    }

    /// Add every triple as an ABox assertion of an ontology (in place).
    pub fn extend_ontology(&self, ontology: &mut Ontology) {
        for t in &self.triples {
            match t.to_assertion() {
                Assertion::Class(c, i) => {
                    ontology.add_class_assertion(&c, &i);
                }
                Assertion::Property(r, s, o) => {
                    ontology.add_property_assertion(&r, &s, &o);
                }
            }
        }
    }

    /// Convert the store into plain facts (the engine's EDB view).
    pub fn to_facts(&self) -> Vec<Fact> {
        self.triples.iter().map(Triple::to_fact).collect()
    }

    /// Build a triple view of reasoning output facts.
    ///
    /// Unary facts become `rdf:type` triples, binary facts become property
    /// triples; facts of other arities and facts with non-string /
    /// labelled-null arguments are skipped unless `include_nulls` is set, in
    /// which case nulls are rendered as `_:b<id>` blank nodes.
    pub fn from_facts<I>(facts: I, include_nulls: bool) -> Self
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<Fact>,
    {
        use std::borrow::Borrow;
        let mut out = TripleStore::new();
        for f in facts {
            let f = f.borrow();
            let render = |v: &Value| -> Option<String> {
                match v {
                    Value::Str(s) => Some(s.to_string()),
                    Value::Int(i) => Some(i.to_string()),
                    Value::Bool(b) => Some(b.to_string()),
                    Value::Null(n) if include_nulls => Some(format!("_:b{}", n.0)),
                    _ => None,
                }
            };
            match f.arity() {
                1 => {
                    if let Some(subject) = render(&f.args[0]) {
                        out.insert(Triple::typed(&subject, &f.predicate_name()));
                    }
                }
                2 => {
                    if let (Some(subject), Some(object)) = (render(&f.args[0]), render(&f.args[1]))
                    {
                        out.insert(Triple::new(&subject, &f.predicate_name(), &object));
                    }
                }
                _ => {}
            }
        }
        out
    }
}

impl FromIterator<Triple> for TripleStore {
    fn from_iter<T: IntoIterator<Item = Triple>>(iter: T) -> Self {
        TripleStore::from_triples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::{Axiom, ClassExpr};
    use crate::translate::{translate, TranslationOptions};
    use vadalog_engine::Reasoner;

    #[test]
    fn triple_fact_conversion() {
        let t = Triple::typed("acme", "Company");
        assert!(t.is_type_triple());
        assert_eq!(t.to_fact(), Fact::new("Company", vec!["acme".into()]));

        let r = Triple::new("acme", "controls", "subco");
        assert!(!r.is_type_triple());
        assert_eq!(
            r.to_fact(),
            Fact::new("controls", vec!["acme".into(), "subco".into()])
        );
    }

    #[test]
    fn store_deduplicates_and_filters() {
        let mut store = TripleStore::new();
        assert!(store.insert(Triple::typed("acme", "Company")));
        assert!(!store.insert(Triple::typed("acme", "Company")));
        store.insert(Triple::new("acme", "controls", "subco"));
        store.insert(Triple::new("subco", "controls", "leaf"));
        assert_eq!(store.len(), 3);
        assert_eq!(store.about("acme").len(), 2);
        assert_eq!(store.with_predicate("controls").len(), 2);
        assert_eq!(store.with_predicate(RDF_TYPE).len(), 1);
    }

    #[test]
    fn roundtrip_facts_to_triples() {
        let facts = [
            Fact::new("Company", vec!["acme".into()]),
            Fact::new("controls", vec!["acme".into(), "subco".into()]),
            // ternary facts are not triples and are skipped
            Fact::new("Owns", vec!["p".into(), "s".into(), "acme".into()]),
        ];
        let store = TripleStore::from_facts(facts.iter(), false);
        assert_eq!(store.len(), 2);
        assert!(store.contains(&Triple::typed("acme", "Company")));
        assert!(store.contains(&Triple::new("acme", "controls", "subco")));
        // back to facts
        let back = store.to_facts();
        assert!(back.contains(&facts[0]));
        assert!(back.contains(&facts[1]));
    }

    #[test]
    fn nulls_become_blank_nodes_when_requested() {
        let facts = [Fact::new(
            "keyPersonOf",
            vec![Value::Null(NullId(7)), Value::str("acme")],
        )];
        assert!(TripleStore::from_facts(facts.iter(), false).is_empty());
        let with_nulls = TripleStore::from_facts(facts.iter(), true);
        assert_eq!(with_nulls.len(), 1);
        assert!(with_nulls.contains(&Triple::new("_:b7", "keyPersonOf", "acme")));
    }

    #[test]
    fn triples_drive_end_to_end_reasoning() {
        // Load a small RDF graph, attach a TBox, reason, and read the
        // entailed graph back as triples.
        let data = TripleStore::from_triples(vec![
            Triple::typed("acme", "Company"),
            Triple::new("acme", "controls", "subco"),
        ]);
        let mut onto = Ontology::new();
        onto.add_axiom(Axiom::Range("controls".into(), "Company".into()));
        onto.add_axiom(Axiom::sub_class_of(
            ClassExpr::named("Company"),
            ClassExpr::named("Organisation"),
        ));
        data.extend_ontology(&mut onto);

        let program = translate(&onto, &TranslationOptions::default());
        let result = Reasoner::new().reason(&program).unwrap();
        let entailed = TripleStore::from_facts(result.store.iter(), false);
        assert!(entailed.contains(&Triple::typed("subco", "Company")));
        assert!(entailed.contains(&Triple::typed("subco", "Organisation")));
        assert!(entailed.contains(&Triple::typed("acme", "Organisation")));
    }
}
