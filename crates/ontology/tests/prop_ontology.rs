//! Property-based tests for the ontology layer: the translation must always
//! land inside the supported Warded Datalog± fragment, and query answering
//! over randomly generated class hierarchies must agree with a reference
//! closure computation.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use vadalog_analysis::classify;
use vadalog_ontology::prelude::*;

// ---------------------------------------------------------------- generators

const CLASSES: [&str; 6] = ["A", "B", "C", "D", "E", "F"];
const PROPERTIES: [&str; 4] = ["r", "s", "t", "u"];
const INDIVIDUALS: [&str; 5] = ["i0", "i1", "i2", "i3", "i4"];

/// A random subclass hierarchy: edges (sub, super) over the class pool,
/// oriented from lower index to higher so the hierarchy is acyclic (the
/// translation also works with cycles, but the reference closure below is
/// simplest on DAGs).
fn hierarchy() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0usize..CLASSES.len(), 0usize..CLASSES.len()), 0..10).prop_map(|edges| {
        edges
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect()
    })
}

/// Random class assertions over the individual pool.
fn abox() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0usize..CLASSES.len(), 0usize..INDIVIDUALS.len()), 1..12)
}

/// A random ontology mixing hierarchy, existential axioms, domains/ranges,
/// inverses and a few property assertions.
fn random_ontology() -> impl Strategy<Value = Ontology> {
    (
        hierarchy(),
        abox(),
        prop::collection::vec((0usize..CLASSES.len(), 0usize..PROPERTIES.len()), 0..4),
        prop::collection::vec(
            (
                0usize..PROPERTIES.len(),
                0usize..INDIVIDUALS.len(),
                0usize..INDIVIDUALS.len(),
            ),
            0..6,
        ),
    )
        .prop_map(|(edges, assertions, existentials, property_assertions)| {
            let mut onto = Ontology::new();
            for (sub, sup) in &edges {
                onto.add_axiom(Axiom::sub_class_of(
                    ClassExpr::named(CLASSES[*sub]),
                    ClassExpr::named(CLASSES[*sup]),
                ));
            }
            for (class, property) in &existentials {
                onto.add_axiom(Axiom::sub_class_of(
                    ClassExpr::named(CLASSES[*class]),
                    ClassExpr::some(PROPERTIES[*property]),
                ));
                onto.add_axiom(Axiom::Range(
                    PROPERTIES[*property].to_string(),
                    CLASSES[(*class + 1) % CLASSES.len()].to_string(),
                ));
            }
            for (class, individual) in &assertions {
                onto.add_class_assertion(CLASSES[*class], INDIVIDUALS[*individual]);
            }
            for (property, a, b) in &property_assertions {
                onto.add_property_assertion(
                    PROPERTIES[*property],
                    INDIVIDUALS[*a],
                    INDIVIDUALS[*b],
                );
            }
            onto
        })
}

/// Reference computation: the named classes each individual belongs to under
/// the subclass hierarchy alone (no existentials), by transitive closure.
fn reference_memberships(
    edges: &[(usize, usize)],
    assertions: &[(usize, usize)],
) -> BTreeMap<&'static str, BTreeSet<&'static str>> {
    // superclasses[c] = set of classes reachable from c (including c)
    let mut superclasses: Vec<BTreeSet<usize>> =
        (0..CLASSES.len()).map(|c| BTreeSet::from([c])).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (sub, sup) in edges {
            let supers: BTreeSet<usize> = superclasses[*sup].clone();
            for s in supers {
                if superclasses[*sub].insert(s) {
                    changed = true;
                }
            }
        }
    }
    let mut memberships: BTreeMap<&'static str, BTreeSet<&'static str>> = BTreeMap::new();
    for (class, individual) in assertions {
        for sup in &superclasses[*class] {
            memberships
                .entry(INDIVIDUALS[*individual])
                .or_default()
                .insert(CLASSES[*sup]);
        }
    }
    memberships
}

// ----------------------------------------------------------------- properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every translated ontology is a supported (warded) program.
    #[test]
    fn translation_is_always_supported(onto in random_ontology()) {
        let program = translate(&onto, &TranslationOptions::default());
        let report = classify(&program);
        prop_assert!(report.is_supported(), "translated ontology left the supported fragment");
        prop_assert!(report.is_warded);
    }

    /// Instance queries over a random subclass hierarchy return exactly the
    /// reference transitive-closure memberships.
    #[test]
    fn hierarchy_memberships_match_reference(edges in hierarchy(), assertions in abox()) {
        let mut onto = Ontology::new();
        for (sub, sup) in &edges {
            onto.add_axiom(Axiom::sub_class_of(
                ClassExpr::named(CLASSES[*sub]),
                ClassExpr::named(CLASSES[*sup]),
            ));
        }
        for (class, individual) in &assertions {
            onto.add_class_assertion(CLASSES[*class], INDIVIDUALS[*individual]);
        }
        let expected = reference_memberships(&edges, &assertions);

        for class in CLASSES {
            let q = ConjunctiveQuery::new(vec!["x"]).with_class_atom(class, "x");
            let answers = q.certain_answers(&onto).unwrap();
            let got: BTreeSet<String> = answers
                .into_iter()
                .map(|t| t[0].as_str().unwrap().to_string())
                .collect();
            let want: BTreeSet<String> = expected
                .iter()
                .filter(|(_, classes)| classes.contains(class))
                .map(|(individual, _)| individual.to_string())
                .collect();
            prop_assert_eq!(got, want, "membership mismatch for class {}", class);
        }
    }

    /// Boolean entailment is monotone: adding assertions never makes an
    /// entailed query unentailed.
    #[test]
    fn entailment_is_monotone(onto in random_ontology(), extra in abox()) {
        let q = ConjunctiveQuery::boolean().with_class_assertion(CLASSES[0], INDIVIDUALS[0]);
        let before = q.is_entailed(&onto).unwrap();
        let mut bigger = onto.clone();
        for (class, individual) in extra {
            bigger.add_class_assertion(CLASSES[class], INDIVIDUALS[individual]);
        }
        let after = q.is_entailed(&bigger).unwrap();
        prop_assert!(!before || after, "entailment lost by adding assertions");
    }

    /// The triple view round-trips the ABox: converting assertions to triples
    /// and back yields the same facts.
    #[test]
    fn triples_roundtrip_the_abox(onto in random_ontology()) {
        let program = translate(&onto, &TranslationOptions::default());
        let store = TripleStore::from_facts(program.facts.iter(), false);
        let back: BTreeSet<_> = store.to_facts().into_iter().collect();
        let original: BTreeSet<_> = program.facts.iter().cloned().collect();
        prop_assert_eq!(back, original);
    }

    /// Certain answers never contain anonymous individuals, and are
    /// contained in the answers over the *full* (null-carrying) instance.
    #[test]
    fn certain_answers_are_ground(onto in random_ontology()) {
        let q = ConjunctiveQuery::new(vec!["x", "y"]).with_property_atom(PROPERTIES[0], "x", "y");
        let answers = q.certain_answers(&onto).unwrap();
        for tuple in &answers {
            for v in tuple {
                prop_assert!(v.is_ground());
            }
        }
    }
}
