//! Parse errors with source positions.

use std::fmt;

/// A lexing or parsing error, with the 1-based line and column where it was
/// detected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

impl ParseError {
    /// Build an error at a position.
    pub fn new(message: impl Into<String>, line: usize, column: usize) -> Self {
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new("unexpected token", 3, 14);
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected token");
    }
}
