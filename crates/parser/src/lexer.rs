//! Hand-written lexer for the Vadalog surface syntax.

use crate::error::ParseError;
use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    /// Identifier (predicate, variable or keyword).
    Ident(String),
    /// String literal (without the quotes).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `:-`
    ColonDash,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%` (only where it cannot start a comment, i.e. we treat `%` at
    /// token position as modulo when it follows a value-like token)
    Percent,
    /// `^`
    Caret,
    /// `@`
    At,
    /// `#`
    Hash,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Arrow => write!(f, "->"),
            Token::ColonDash => write!(f, ":-"),
            Token::Assign => write!(f, "="),
            Token::EqEq => write!(f, "=="),
            Token::Neq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Caret => write!(f, "^"),
            Token::At => write!(f, "@"),
            Token::Hash => write!(f, "#"),
            Token::Bang => write!(f, "!"),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its source position (1-based line / column).
#[derive(Clone, PartialEq, Debug)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Tokenise an entire source string.
///
/// Comments start with `%` or `//` and run to end of line. A `%` is treated
/// as the modulo operator instead when it directly follows a value-producing
/// token (number, identifier, string, `)`), which is how `w % 2` and
/// `% comment` coexist.
pub fn tokenize(src: &str) -> Result<Vec<SpannedToken>, ParseError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    let value_like = |t: Option<&SpannedToken>| {
        matches!(
            t.map(|st| &st.token),
            Some(Token::Ident(_))
                | Some(Token::Int(_))
                | Some(Token::Float(_))
                | Some(Token::Str(_))
                | Some(Token::RParen)
        )
    };

    while i < chars.len() {
        let c = chars[i];
        let start_line = line;
        let start_col = col;
        let advance = |i: &mut usize, line: &mut usize, col: &mut usize, n: usize| {
            for _ in 0..n {
                if chars[*i] == '\n' {
                    *line += 1;
                    *col = 1;
                } else {
                    *col += 1;
                }
                *i += 1;
            }
        };

        match c {
            ' ' | '\t' | '\r' | '\n' => {
                advance(&mut i, &mut line, &mut col, 1);
            }
            '%' if !value_like(tokens.last()) => {
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col, 1);
                }
            }
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col, 1);
                }
            }
            '"' => {
                advance(&mut i, &mut line, &mut col, 1);
                let mut s = String::new();
                let mut closed = false;
                while i < chars.len() {
                    let ch = chars[i];
                    if ch == '\\' && i + 1 < chars.len() {
                        let next = chars[i + 1];
                        s.push(match next {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                        advance(&mut i, &mut line, &mut col, 2);
                    } else if ch == '"' {
                        advance(&mut i, &mut line, &mut col, 1);
                        closed = true;
                        break;
                    } else {
                        s.push(ch);
                        advance(&mut i, &mut line, &mut col, 1);
                    }
                }
                if !closed {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        start_line,
                        start_col,
                    ));
                }
                tokens.push(SpannedToken {
                    token: Token::Str(s),
                    line: start_line,
                    column: start_col,
                });
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                let mut is_float = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || (chars[i] == '.'
                            && i + 1 < chars.len()
                            && chars[i + 1].is_ascii_digit()
                            && !is_float))
                {
                    if chars[i] == '.' {
                        is_float = true;
                    }
                    s.push(chars[i]);
                    advance(&mut i, &mut line, &mut col, 1);
                }
                let token = if is_float {
                    Token::Float(s.parse().map_err(|_| {
                        ParseError::new(format!("invalid float literal {s}"), start_line, start_col)
                    })?)
                } else {
                    Token::Int(s.parse().map_err(|_| {
                        ParseError::new(
                            format!("invalid integer literal {s}"),
                            start_line,
                            start_col,
                        )
                    })?)
                };
                tokens.push(SpannedToken {
                    token,
                    line: start_line,
                    column: start_col,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    advance(&mut i, &mut line, &mut col, 1);
                }
                tokens.push(SpannedToken {
                    token: Token::Ident(s),
                    line: start_line,
                    column: start_col,
                });
            }
            _ => {
                let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
                let (token, len) = match two.as_str() {
                    "->" => (Token::Arrow, 2),
                    ":-" => (Token::ColonDash, 2),
                    "==" => (Token::EqEq, 2),
                    "!=" => (Token::Neq, 2),
                    "<=" => (Token::Le, 2),
                    ">=" => (Token::Ge, 2),
                    "&&" => (Token::AndAnd, 2),
                    "||" => (Token::OrOr, 2),
                    _ => match c {
                        '(' => (Token::LParen, 1),
                        ')' => (Token::RParen, 1),
                        ',' => (Token::Comma, 1),
                        '.' => (Token::Dot, 1),
                        '=' => (Token::Assign, 1),
                        '<' => (Token::Lt, 1),
                        '>' => (Token::Gt, 1),
                        '+' => (Token::Plus, 1),
                        '-' => (Token::Minus, 1),
                        '*' => (Token::Star, 1),
                        '/' => (Token::Slash, 1),
                        '%' => (Token::Percent, 1),
                        '^' => (Token::Caret, 1),
                        '@' => (Token::At, 1),
                        '#' => (Token::Hash, 1),
                        '!' => (Token::Bang, 1),
                        '[' => (Token::LBracket, 1),
                        ']' => (Token::RBracket, 1),
                        other => {
                            return Err(ParseError::new(
                                format!("unexpected character '{other}'"),
                                start_line,
                                start_col,
                            ))
                        }
                    },
                };
                advance(&mut i, &mut line, &mut col, len);
                tokens.push(SpannedToken {
                    token,
                    line: start_line,
                    column: start_col,
                });
            }
        }
    }
    tokens.push(SpannedToken {
        token: Token::Eof,
        line,
        column: col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn lexes_a_simple_rule() {
        let t = toks("Own(x, y, w), w > 0.5 -> Control(x, y).");
        assert!(t.contains(&Token::Ident("Own".into())));
        assert!(t.contains(&Token::Arrow));
        assert!(t.contains(&Token::Float(0.5)));
        assert!(t.contains(&Token::Gt));
        assert_eq!(*t.last().unwrap(), Token::Eof);
    }

    #[test]
    fn percent_is_comment_at_line_start_but_modulo_after_value() {
        let t = toks("% a comment line\nP(x).");
        assert_eq!(t[0], Token::Ident("P".into()));
        let t2 = toks("x % 2");
        assert_eq!(t2[1], Token::Percent);
    }

    #[test]
    fn double_slash_comments_are_skipped() {
        let t = toks("// comment\nQ(y).");
        assert_eq!(t[0], Token::Ident("Q".into()));
    }

    #[test]
    fn strings_support_escapes() {
        let t = toks(r#"P("a\"b", "line\nbreak")."#);
        assert!(t.contains(&Token::Str("a\"b".into())));
        assert!(t.contains(&Token::Str("line\nbreak".into())));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = tokenize("P(\"oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn numbers_and_dots_disambiguate() {
        // "P(1)." must not read "1." as a float.
        let t = toks("P(1).");
        assert_eq!(t[2], Token::Int(1));
        assert_eq!(t[4], Token::Dot);
        let t2 = toks("w >= 0.25");
        assert_eq!(t2[2], Token::Float(0.25));
    }

    #[test]
    fn positions_are_tracked() {
        let spanned = tokenize("P(x).\nQ(y).").unwrap();
        let q = spanned
            .iter()
            .find(|t| t.token == Token::Ident("Q".into()))
            .unwrap();
        assert_eq!(q.line, 2);
        assert_eq!(q.column, 1);
    }

    #[test]
    fn two_char_operators() {
        let t = toks("a :- b, c != d, e <= f, g >= h, i == j.");
        assert!(t.contains(&Token::ColonDash));
        assert!(t.contains(&Token::Neq));
        assert!(t.contains(&Token::Le));
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::EqEq));
    }

    #[test]
    fn unexpected_character_is_reported_with_position() {
        let err = tokenize("P(x) ; Q(y)").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.line, 1);
    }
}
