//! # vadalog-parser
//!
//! Lexer, recursive-descent parser and pretty printer for the Vadalog surface
//! syntax used throughout this reproduction.
//!
//! The grammar follows the notation of the paper, in ASCII:
//!
//! ```text
//! % comments start with '%' (or '//') and run to end of line
//!
//! @input("Own").
//! @output("Control").
//! @bind("Own", "csv:data/own.csv").
//!
//! Own("acme", "sub", 0.6).                         % a fact
//!
//! Own(x, y, w), w > 0.5 -> Control(x, y).          % body -> head
//! Control(x, z) :- Control(x, y), Own(y, z, w),
//!                  v = msum(w, <y>), v > 0.5.      % head :- body also works
//!
//! Company(x) -> Owns(p, s, x).                     % p, s implicitly existential
//! Own(x, x, w) -> false.                           % negative constraint
//! Incorp(y, z), Own(x1, y, w), Own(x2, z, w) -> x1 = x2.  % EGD
//! ```
//!
//! Bare identifiers in *rule* atoms are variables; in *facts* (ground
//! clauses with no arrow) they are read as string constants, so the paper's
//! `Company(HSBC).` works as written. Existential variables need no explicit
//! quantifier: every head variable not bound in the body is existential, as
//! in the paper's examples.

pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;

pub use error::ParseError;
pub use parser::{parse_program, parse_rule, Parser};
pub use pretty::{fact_to_text, program_to_text, rule_to_text};

/// Parse a full program from source text. Convenience alias of
/// [`parse_program`].
pub fn parse(src: &str) -> Result<vadalog_model::Program, ParseError> {
    parse_program(src)
}
