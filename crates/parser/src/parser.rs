//! Recursive-descent parser producing [`vadalog_model::Program`]s.

use crate::error::ParseError;
use crate::lexer::{tokenize, SpannedToken, Token};
use vadalog_model::prelude::*;

/// The recursive-descent parser.
///
/// Most users should call [`parse_program`] or [`parse_rule`]; the struct is
/// public so that embedders can parse single statements incrementally.
pub struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

/// Parse a whole program (annotations, facts, rules).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    Parser::new(src)?.program()
}

/// Parse a single rule (without the trailing period being mandatory).
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let mut p = Parser::new(src)?;
    let stmt = p.statement()?;
    match stmt {
        Statement::Rule(r) => Ok(r),
        Statement::Facts(_) => Err(p.error_here("expected a rule, found a fact")),
        Statement::Annotation(_) => Err(p.error_here("expected a rule, found an annotation")),
    }
}

/// A parsed top-level statement.
enum Statement {
    Rule(Rule),
    Facts(Vec<Fact>),
    Annotation(Annotation),
}

impl Parser {
    /// Create a parser over source text.
    pub fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: tokenize(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek_at(&self, offset: usize) -> &Token {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].token
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token) -> Result<(), ParseError> {
        if self.peek() == expected {
            self.bump();
            Ok(())
        } else {
            Err(self.error_here(format!("expected '{expected}', found '{}'", self.peek())))
        }
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        ParseError::new(message, t.line, t.column)
    }

    /// Parse a complete program.
    pub fn program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::new();
        while *self.peek() != Token::Eof {
            match self.statement()? {
                Statement::Rule(r) => {
                    program.add_rule(r);
                }
                Statement::Facts(fs) => {
                    for f in fs {
                        program.add_fact(f);
                    }
                }
                Statement::Annotation(a) => program.add_annotation(a),
            }
        }
        Ok(program)
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if *self.peek() == Token::At {
            return Ok(Statement::Annotation(self.annotation()?));
        }
        // Parse a conjunct list, then decide what kind of clause this is.
        let first = self.conjunct_list()?;
        match self.peek().clone() {
            Token::Arrow => {
                self.bump();
                let head = self.head()?;
                self.expect_clause_end()?;
                Ok(Statement::Rule(Rule {
                    label: None,
                    body: first,
                    head,
                }))
            }
            Token::ColonDash => {
                self.bump();
                // "head :- body": the already-parsed list must be head atoms.
                let mut head_atoms = Vec::with_capacity(first.len());
                for lit in first {
                    match lit {
                        Literal::Atom(a) => head_atoms.push(a),
                        other => {
                            return Err(self.error_here(format!(
                                "only atoms may appear in a rule head, found '{other}'"
                            )))
                        }
                    }
                }
                let body = self.conjunct_list()?;
                self.expect_clause_end()?;
                Ok(Statement::Rule(Rule {
                    label: None,
                    body,
                    head: RuleHead::Atoms(head_atoms),
                }))
            }
            Token::Dot | Token::Eof => {
                self.expect_clause_end()?;
                // A fact clause: every conjunct must be an atom; bare
                // identifiers become string constants.
                let mut facts = Vec::with_capacity(first.len());
                for lit in first {
                    match lit {
                        Literal::Atom(a) => {
                            facts.push(atom_to_fact(&a).map_err(|m| self.error_here(m))?)
                        }
                        other => {
                            return Err(self.error_here(format!("expected a fact, found '{other}'")))
                        }
                    }
                }
                Ok(Statement::Facts(facts))
            }
            other => Err(self.error_here(format!("expected '->', ':-' or '.', found '{other}'"))),
        }
    }

    fn expect_clause_end(&mut self) -> Result<(), ParseError> {
        if *self.peek() == Token::Dot {
            self.bump();
            Ok(())
        } else if *self.peek() == Token::Eof {
            Ok(())
        } else {
            Err(self.error_here(format!("expected '.', found '{}'", self.peek())))
        }
    }

    fn annotation(&mut self) -> Result<Annotation, ParseError> {
        self.expect(&Token::At)?;
        let kw = match self.bump() {
            Token::Ident(s) => s,
            other => {
                return Err(self.error_here(format!("expected annotation name, found '{other}'")))
            }
        };
        let kind = AnnotationKind::from_keyword(&kw)
            .ok_or_else(|| self.error_here(format!("unknown annotation '@{kw}'")))?;
        self.expect(&Token::LParen)?;
        let mut args: Vec<String> = Vec::new();
        loop {
            match self.bump() {
                Token::Str(s) => args.push(s),
                Token::Ident(s) => args.push(s),
                Token::Int(i) => args.push(i.to_string()),
                Token::Float(f) => args.push(f.to_string()),
                other => {
                    return Err(
                        self.error_here(format!("expected annotation argument, found '{other}'"))
                    )
                }
            }
            match self.bump() {
                Token::Comma => continue,
                Token::RParen => break,
                other => {
                    return Err(self.error_here(format!("expected ',' or ')', found '{other}'")))
                }
            }
        }
        self.expect_clause_end()?;
        if args.is_empty() {
            return Err(self.error_here("annotation needs at least a predicate argument"));
        }
        let predicate = args.remove(0);
        Ok(Annotation::new(kind, &predicate, args))
    }

    fn head(&mut self) -> Result<RuleHead, ParseError> {
        // Falsum head: `false` / `bottom` not followed by '('.
        if let Token::Ident(name) = self.peek() {
            if (name == "false" || name == "bottom") && *self.peek_at(1) != Token::LParen {
                self.bump();
                return Ok(RuleHead::Falsum);
            }
        }
        // Equality head (EGD): ident = ident, with no '(' after the first.
        if matches!(self.peek(), Token::Ident(_)) && *self.peek_at(1) == Token::Assign {
            let left = match self.bump() {
                Token::Ident(s) => Term::var(&s),
                _ => unreachable!(),
            };
            self.bump(); // '='
            let right = match self.bump() {
                Token::Ident(s) => Term::var(&s),
                Token::Str(s) => Term::Const(Value::string(s)),
                Token::Int(i) => Term::Const(Value::Int(i)),
                Token::Float(f) => Term::Const(Value::Float(f)),
                other => {
                    return Err(self.error_here(format!(
                        "expected term on right-hand side of equality head, found '{other}'"
                    )))
                }
            };
            return Ok(RuleHead::Equality(left, right));
        }
        // Otherwise: a comma-separated list of head atoms.
        let mut atoms = vec![self.atom()?];
        while *self.peek() == Token::Comma {
            self.bump();
            atoms.push(self.atom()?);
        }
        Ok(RuleHead::Atoms(atoms))
    }

    fn conjunct_list(&mut self) -> Result<Vec<Literal>, ParseError> {
        let mut out = vec![self.conjunct()?];
        while *self.peek() == Token::Comma {
            self.bump();
            out.push(self.conjunct()?);
        }
        Ok(out)
    }

    fn conjunct(&mut self) -> Result<Literal, ParseError> {
        // negation: `not P(x)` or `!P(x)`
        if let Token::Ident(name) = self.peek() {
            if name == "not" && matches!(self.peek_at(1), Token::Ident(_)) {
                self.bump();
                return Ok(Literal::Negated(self.atom()?));
            }
        }
        if *self.peek() == Token::Bang && matches!(self.peek_at(1), Token::Ident(_)) {
            self.bump();
            return Ok(Literal::Negated(self.atom()?));
        }
        // assignment: `v = expr`
        if matches!(self.peek(), Token::Ident(_)) && *self.peek_at(1) == Token::Assign {
            let var = match self.bump() {
                Token::Ident(s) => Var::new(&s),
                _ => unreachable!(),
            };
            self.bump(); // '='
            let expr = self.expr()?;
            return Ok(Literal::Assignment(Assignment::new(var, expr)));
        }
        // atom: Ident '(' ...  (unless the ident is an aggregation/builtin
        // used in a condition, which would be written on the RHS instead)
        if matches!(self.peek(), Token::Ident(_)) && *self.peek_at(1) == Token::LParen {
            let name = match self.peek() {
                Token::Ident(s) => s.clone(),
                _ => unreachable!(),
            };
            if AggFunc::from_name(&name).is_none() {
                let atom = self.atom()?;
                // If a comparison operator follows, the user wrote a
                // condition with a function-style LHS; re-interpret it.
                if let Some(op) = self.peek_cmp_op() {
                    self.bump();
                    let right = self.expr()?;
                    let left = Expr::Call(
                        atom.predicate,
                        atom.terms.iter().map(|t| Expr::Term(t.clone())).collect(),
                    );
                    return Ok(Literal::Condition(Condition::new(left, op, right)));
                }
                return Ok(Literal::Atom(atom));
            }
        }
        // otherwise: a condition `expr cmp expr`
        let left = self.expr()?;
        let op = self.peek_cmp_op().ok_or_else(|| {
            self.error_here(format!(
                "expected comparison operator, found '{}'",
                self.peek()
            ))
        })?;
        self.bump();
        let right = self.expr()?;
        Ok(Literal::Condition(Condition::new(left, op, right)))
    }

    fn peek_cmp_op(&self) -> Option<CmpOp> {
        Some(match self.peek() {
            Token::EqEq => CmpOp::Eq,
            Token::Neq => CmpOp::Neq,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            _ => return None,
        })
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let name = match self.bump() {
            Token::Ident(s) => s,
            other => {
                return Err(self.error_here(format!("expected predicate name, found '{other}'")))
            }
        };
        self.expect(&Token::LParen)?;
        let mut terms = Vec::new();
        if *self.peek() != Token::RParen {
            loop {
                terms.push(self.term()?);
                match self.bump() {
                    Token::Comma => continue,
                    Token::RParen => break,
                    other => {
                        return Err(self.error_here(format!("expected ',' or ')', found '{other}'")))
                    }
                }
            }
        } else {
            self.bump();
        }
        Ok(Atom {
            predicate: intern(&name),
            terms,
        })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Token::Ident(s) => match s.as_str() {
                "true" => Ok(Term::Const(Value::Bool(true))),
                "false" => Ok(Term::Const(Value::Bool(false))),
                _ => Ok(Term::var(&s)),
            },
            Token::Str(s) => Ok(Term::Const(Value::string(s))),
            Token::Int(i) => Ok(Term::Const(Value::Int(i))),
            Token::Float(f) => Ok(Term::Const(Value::Float(f))),
            Token::Minus => match self.bump() {
                Token::Int(i) => Ok(Term::Const(Value::Int(-i))),
                Token::Float(f) => Ok(Term::Const(Value::Float(-f))),
                other => {
                    Err(self.error_here(format!("expected number after '-', found '{other}'")))
                }
            },
            other => Err(self.error_here(format!("expected term, found '{other}'"))),
        }
    }

    /// Expression grammar (precedence climbing):
    /// or → and → additive → multiplicative → power → unary → primary
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while *self.peek() == Token::OrOr {
            self.bump();
            let right = self.and_expr()?;
            left = Expr::Binary(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.add_expr()?;
        while *self.peek() == Token::AndAnd {
            self.bump();
            let right = self.add_expr()?;
            left = Expr::Binary(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.mul_expr()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.pow_expr()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.pow_expr()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pow_expr(&mut self) -> Result<Expr, ParseError> {
        let base = self.unary_expr()?;
        if *self.peek() == Token::Caret {
            self.bump();
            // right-associative
            let exp = self.pow_expr()?;
            return Ok(Expr::Binary(BinOp::Pow, Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Token::Minus => {
                self.bump();
                Ok(Expr::Unary(UnaryOp::Neg, Box::new(self.unary_expr()?)))
            }
            Token::Bang => {
                self.bump();
                Ok(Expr::Unary(UnaryOp::Not, Box::new(self.unary_expr()?)))
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Token::LParen => {
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Token::Int(i) => Ok(Expr::constant(i)),
            Token::Float(f) => Ok(Expr::constant(f)),
            Token::Str(s) => Ok(Expr::Term(Term::Const(Value::string(s)))),
            Token::Hash => {
                // Skolem term #f(args)
                let name = match self.bump() {
                    Token::Ident(s) => s,
                    other => {
                        return Err(self.error_here(format!(
                            "expected skolem function name after '#', found '{other}'"
                        )))
                    }
                };
                let args = self.call_args()?;
                Ok(Expr::skolem(&name, args))
            }
            Token::Ident(name) => {
                if *self.peek() == Token::LParen {
                    if let Some(func) = AggFunc::from_name(&name) {
                        return self.aggregation(func);
                    }
                    let args = self.call_args()?;
                    return Ok(Expr::call(&name, args));
                }
                match name.as_str() {
                    "true" => Ok(Expr::constant(true)),
                    "false" => Ok(Expr::constant(false)),
                    _ => Ok(Expr::var(&name)),
                }
            }
            other => Err(self.error_here(format!("expected expression, found '{other}'"))),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if *self.peek() == Token::RParen {
            self.bump();
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            match self.bump() {
                Token::Comma => continue,
                Token::RParen => break,
                other => {
                    return Err(self.error_here(format!("expected ',' or ')', found '{other}'")))
                }
            }
        }
        Ok(args)
    }

    /// Parse `maggr(arg)` or `maggr(arg, <c1, ..., cn>)`.
    fn aggregation(&mut self, func: AggFunc) -> Result<Expr, ParseError> {
        self.expect(&Token::LParen)?;
        let arg = self.expr()?;
        let mut contributors = Vec::new();
        if *self.peek() == Token::Comma {
            self.bump();
            self.expect(&Token::Lt)?;
            loop {
                match self.bump() {
                    Token::Ident(s) => contributors.push(Var::new(&s)),
                    other => {
                        return Err(self
                            .error_here(format!("expected contributor variable, found '{other}'")))
                    }
                }
                match self.bump() {
                    Token::Comma => continue,
                    Token::Gt => break,
                    other => {
                        return Err(self.error_here(format!("expected ',' or '>', found '{other}'")))
                    }
                }
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Expr::Aggregate(Aggregation {
            func,
            arg: Box::new(arg),
            contributors,
        }))
    }
}

/// Convert a ground clause atom to a fact, reading bare identifiers as
/// string constants (so `Company(HSBC).` works as written in the paper).
fn atom_to_fact(atom: &Atom) -> Result<Fact, String> {
    let mut args = Vec::with_capacity(atom.terms.len());
    for t in &atom.terms {
        match t {
            Term::Const(v) => args.push(v.clone()),
            Term::Var(v) => args.push(Value::string(v.name())),
        }
    }
    Ok(Fact::new_sym(atom.predicate, args))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example2_company_control() {
        let src = r#"
            % Example 2 of the paper
            Own(x, y, w), w > 0.5 -> Control(x, y).
            Control(x, y), Own(y, z, w), v = msum(w, <y>), v > 0.5 -> Control(x, z).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 2);
        let r2 = &p.rules[1];
        assert_eq!(r2.body_atoms().len(), 2);
        assert_eq!(r2.assignments().len(), 1);
        assert_eq!(r2.conditions().len(), 1);
        assert!(r2.has_aggregation());
        let agg = r2.assignments()[0].expr.find_aggregate().unwrap();
        assert_eq!(agg.func, AggFunc::MSum);
        assert_eq!(agg.contributors, vec![Var::new("y")]);
    }

    #[test]
    fn parses_example7_with_existentials() {
        let src = r#"
            Company(x) -> Owns(p, s, x).
            Owns(p, s, x) -> Stock(x, s).
            Owns(p, s, x) -> PSC(x, p).
            PSC(x, p), Controls(x, y) -> Owns(p, s, y).
            PSC(x, p), PSC(y, p) -> StrongLink(x, y).
            StrongLink(x, y) -> Owns(p, s, x).
            StrongLink(x, y) -> Owns(p, s, y).
            Stock(x, s) -> Company(x).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 8);
        let r1 = &p.rules[0];
        assert_eq!(r1.existential_variables().len(), 2);
        let r4 = &p.rules[3];
        assert_eq!(r4.existential_variables().len(), 1);
        assert!(!r4.is_linear());
    }

    #[test]
    fn parses_facts_with_bare_identifiers_as_constants() {
        let src = r#"
            Company(HSBC). Company(HSB). Company(IBA).
            Controls(HSBC, HSB).
            Own("acme corp", "sub", 0.6).
            Quote(7). Rate(-2.5).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.facts.len(), 7);
        assert_eq!(p.facts[0], Fact::new("Company", vec!["HSBC".into()]));
        assert_eq!(p.facts[5], Fact::new("Quote", vec![Value::Int(7)]));
        assert_eq!(p.facts[6], Fact::new("Rate", vec![Value::Float(-2.5)]));
    }

    #[test]
    fn parses_head_colon_dash_body_form() {
        let src = "Control(x, y) :- Own(x, y, w), w > 0.5.";
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 1);
        let r = &p.rules[0];
        assert_eq!(r.head_atoms()[0].predicate.as_str(), "Control");
        assert_eq!(r.body_atoms()[0].predicate.as_str(), "Own");
    }

    #[test]
    fn parses_constraints_and_egds_from_example6() {
        let src = r#"
            Own(x, y, w) -> SoftLink(x, y).
            SoftLink(x, y) -> SoftLink(y, x).
            Own(z, x, w1), Own(z, y, w2) -> SoftLink(x, y).
            Incorp(x, y) -> Own(z, x, w1), Own(z, y, w2).
            Dom(p), Incorp(y, z), Own(x1, y, w1), Own(x2, z, w1) -> x1 = x2.
            Own(x, x, w) -> false.
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 6);
        assert!(matches!(p.rules[4].head, RuleHead::Equality(_, _)));
        assert!(matches!(p.rules[5].head, RuleHead::Falsum));
        // rule 4 has a multi-atom head
        assert_eq!(p.rules[3].head_atoms().len(), 2);
    }

    #[test]
    fn parses_annotations() {
        let src = r#"
            @input("Own").
            @output("Control").
            @bind("Own", "csv:data/own.csv").
            @mapping("Own", 0, "comp1").
            @post("Control", "orderby(1)").
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.annotations.len(), 5);
        assert_eq!(p.annotations[0].kind, AnnotationKind::Input);
        assert_eq!(p.annotations[2].args, vec!["csv:data/own.csv".to_string()]);
        assert_eq!(p.annotations[3].args.len(), 2);
        assert!(p.input_predicates().contains(&intern("Own")));
        assert!(p.output_predicates().contains(&intern("Control")));
    }

    #[test]
    fn parses_negation_and_skolems_and_builtins() {
        let src = r#"
            Company(x), not Dissolved(x) -> Active(x).
            Employee(x, c), s = #salary(x, c) -> Payroll(x, s).
            Name(x, n), startsWith(n, "Premier") == true -> Flagged(x).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules[0].negated_atoms().len(), 1);
        let sk = &p.rules[1].assignments()[0].expr;
        assert!(matches!(sk, Expr::Skolem(_, _)));
        assert_eq!(p.rules[2].conditions().len(), 1);
    }

    #[test]
    fn parses_arithmetic_with_precedence() {
        let r = parse_rule("P(x, y), z = x + y * 2 -> Q(z)").unwrap();
        let asg = &r.assignments()[0];
        // x + (y * 2)
        match &asg.expr {
            Expr::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        let r2 = parse_rule("P(x), q = (x + 1) * 2 -> Q(q)").unwrap();
        match &r2.assignments()[0].expr {
            Expr::Binary(BinOp::Mul, lhs, _) => {
                assert!(matches!(**lhs, Expr::Binary(BinOp::Add, _, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn mcount_and_munion_with_group_contributors() {
        let src = r#"
            KeyPers(x, p), Pers(p), j = munion(p) -> PSC(x, j).
            PSC(x, p), PSC(y, p), x > y, w = mcount(p), w >= 3 -> StrongLink(x, y, w).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(
            p.rules[0].assignments()[0]
                .expr
                .find_aggregate()
                .unwrap()
                .func,
            AggFunc::MUnion
        );
        assert_eq!(p.rules[1].conditions().len(), 2);
    }

    #[test]
    fn reports_errors_with_positions() {
        let err = parse_program("Own(x, y w) -> Control(x, y).").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("expected"));

        let err2 = parse_program("@frobnicate(\"P\").").unwrap_err();
        assert!(err2.message.contains("unknown annotation"));

        let err3 = parse_program("P(x) -> ").unwrap_err();
        assert!(err3.message.contains("expected"));
    }

    #[test]
    fn rejects_conditions_in_heads() {
        let err = parse_program("Q(x), x > 1 :- P(x).").unwrap_err();
        assert!(err.message.contains("only atoms"));
    }

    #[test]
    fn empty_argument_atom_is_allowed() {
        let p = parse_program("Tick() -> Tock().").unwrap();
        assert_eq!(p.rules[0].body_atoms()[0].arity(), 0);
    }

    #[test]
    fn negative_numbers_in_facts_and_terms() {
        let p = parse_program("Temp(-4). Adjust(x), y = x - -2 -> Out(y).").unwrap();
        assert_eq!(p.facts[0].args[0], Value::Int(-4));
        assert_eq!(p.rules.len(), 1);
    }
}
