//! Pretty printer: turn a [`Program`] back into (re-parseable) surface text.

use vadalog_model::prelude::*;

/// Render a program as Vadalog surface text.
///
/// The output round-trips through [`crate::parse_program`] for programs made
/// of annotations, ground facts over strings/numbers/booleans, and rules —
/// i.e. everything a user normally writes. Facts containing labelled nulls
/// (which only arise as reasoning *output*) are rendered with a `_:ν`
/// placeholder string.
pub fn program_to_text(program: &Program) -> String {
    let mut out = String::new();
    for a in &program.annotations {
        out.push_str(&format!("{a}\n"));
    }
    for f in &program.facts {
        out.push_str(&fact_to_text(f));
        out.push('\n');
    }
    for r in &program.rules {
        out.push_str(&rule_to_text(r));
        out.push('\n');
    }
    out
}

/// Render a single rule with a trailing period.
pub fn rule_to_text(rule: &Rule) -> String {
    let body: Vec<String> = rule.body.iter().map(|l| l.to_string()).collect();
    let head = match &rule.head {
        RuleHead::Atoms(atoms) => atoms
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        RuleHead::Falsum => "false".to_string(),
        RuleHead::Equality(a, b) => format!("{a} = {b}"),
    };
    format!("{} -> {}.", body.join(", "), head)
}

/// Render a single fact with a trailing period.
pub fn fact_to_text(fact: &Fact) -> String {
    let args: Vec<String> = fact.args.iter().map(value_to_text).collect();
    format!("{}({}).", fact.predicate, args.join(", "))
}

fn value_to_text(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            // Keep a decimal point so the value re-parses as a float.
            if f.fract() == 0.0 && f.is_finite() {
                format!("{f:.1}")
            } else {
                f.to_string()
            }
        }
        Value::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        Value::Bool(b) => b.to_string(),
        Value::Date(d) => format!("\"date:{d}\""),
        Value::Null(n) => format!("\"_:{n}\""),
        Value::List(vs) => format!(
            "\"[{}]\"",
            vs.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
        Value::Set(vs) => format!(
            "\"{{{}}}\"",
            vs.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn round_trips_a_typical_program() {
        let src = r#"
            @input("Own").
            @output("Control").
            Own("a", "b", 0.6).
            Own("b", "c", 0.51).
            Own(x, y, w), w > 0.5 -> Control(x, y).
            Control(x, y), Own(y, z, w), v = msum(w, <y>), v > 0.5 -> Control(x, z).
        "#;
        let p1 = parse_program(src).unwrap();
        let text = program_to_text(&p1);
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p1.rules, p2.rules);
        assert_eq!(p1.facts, p2.facts);
        assert_eq!(p1.annotations, p2.annotations);
    }

    #[test]
    fn round_trips_constraints_and_egds() {
        let src = r#"
            Own(x, x, w) -> false.
            Incorp(y, z), Own(x1, y, w1), Own(x2, z, w1) -> x1 = x2.
        "#;
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&program_to_text(&p1)).unwrap();
        assert_eq!(p1.rules, p2.rules);
    }

    #[test]
    fn floats_keep_their_floatness() {
        let src = "Weight(\"x\", 1.0).";
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&program_to_text(&p1)).unwrap();
        assert_eq!(p1.facts, p2.facts);
        assert!(matches!(p2.facts[0].args[1], Value::Float(_)));
    }

    #[test]
    fn nulls_render_as_placeholder_strings() {
        let f = Fact::new("PSC", vec!["x".into(), Value::Null(NullId(3))]);
        let text = fact_to_text(&f);
        assert!(text.contains("_:ν3"));
    }
}
