//! Property-based tests for the parser and pretty printer.
//!
//! The key invariant is the round trip: for every program a user could
//! write (rules, inline facts over the basic data types, annotations), the
//! pretty-printed text parses back to an equal program. This is what lets
//! the workload generators, the rewriting passes and the CLI move programs
//! between the textual and the structured representation freely.

use proptest::prelude::*;
use vadalog_model::prelude::*;
use vadalog_parser::{parse_program, program_to_text};

// ---------------------------------------------------------------- strategies

/// Predicate names: capitalised identifiers from a small pool plus random
/// alphanumeric suffixes.
fn predicate_name() -> impl Strategy<Value = String> {
    (
        prop::sample::select(vec![
            "Own",
            "Control",
            "PSC",
            "Company",
            "KeyPerson",
            "Edge",
        ]),
        0u32..50,
    )
        .prop_map(|(base, n)| {
            if n < 25 {
                base.to_string()
            } else {
                format!("{base}{n}")
            }
        })
}

/// Variable names: lowercase identifiers.
fn variable_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["x", "y", "z", "w", "p", "s", "comp1", "v2"]).prop_map(str::to_string)
}

/// Constant values restricted to the types whose surface form is a clean
/// round trip (strings without quotes/backslashes, integers, whole-float,
/// booleans).
fn constant_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        prop::sample::select(vec!["hsbc", "iba", "alice", "bob", "acme corp", "x-1"])
            .prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
        (-100i64..100).prop_map(|i| Value::Float(i as f64 / 4.0)),
    ]
}

/// A term: mostly variables, sometimes constants.
fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        3 => variable_name().prop_map(|v| Term::var(&v)),
        1 => constant_value().prop_map(Term::Const),
    ]
}

fn atom() -> impl Strategy<Value = Atom> {
    (predicate_name(), prop::collection::vec(term(), 1..4)).prop_map(|(p, terms)| Atom {
        predicate: intern(&p),
        terms,
    })
}

/// Rules whose head variables all occur in the body would be plain Datalog;
/// we deliberately allow head-only variables too so existential rules are
/// covered by the round trip.
fn rule() -> impl Strategy<Value = Rule> {
    (
        prop::collection::vec(atom(), 1..4),
        prop::collection::vec(atom(), 1..3),
    )
        .prop_map(|(body, head)| Rule::tgd(body, head))
}

fn ground_fact() -> impl Strategy<Value = Fact> {
    (
        predicate_name(),
        prop::collection::vec(constant_value(), 1..4),
    )
        .prop_map(|(p, args)| Fact::new(&p, args))
}

fn annotation() -> impl Strategy<Value = Annotation> {
    (
        prop::sample::select(vec![AnnotationKind::Input, AnnotationKind::Output]),
        predicate_name(),
    )
        .prop_map(|(kind, p)| Annotation::new(kind, &p, Vec::new()))
}

fn program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(rule(), 0..6),
        prop::collection::vec(ground_fact(), 0..6),
        prop::collection::vec(annotation(), 0..3),
    )
        .prop_map(|(rules, facts, annotations)| Program {
            rules,
            facts,
            annotations,
        })
}

// ----------------------------------------------------------------- properties

proptest! {
    /// Pretty-print → parse is the identity on generated programs.
    #[test]
    fn pretty_parse_roundtrip(p in program()) {
        let text = program_to_text(&p);
        let reparsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("pretty output failed to parse: {e}\n{text}"));
        prop_assert_eq!(&reparsed.rules, &p.rules, "rules changed\n{}", text);
        prop_assert_eq!(&reparsed.facts, &p.facts, "facts changed\n{}", text);
        prop_assert_eq!(&reparsed.annotations, &p.annotations, "annotations changed\n{}", text);
    }

    /// Round-tripping twice is the same as round-tripping once (the printer
    /// output is a fixpoint).
    #[test]
    fn pretty_is_fixpoint(p in program()) {
        let once = program_to_text(&p);
        let reparsed = parse_program(&once).unwrap();
        let twice = program_to_text(&reparsed);
        prop_assert_eq!(once, twice);
    }

    /// The parser accepts arbitrary whitespace and comments between
    /// statements without changing the result.
    #[test]
    fn whitespace_and_comments_are_ignored(p in program(), padding in 0usize..4) {
        let text = program_to_text(&p);
        let mut noisy = String::new();
        for line in text.lines() {
            for _ in 0..padding {
                noisy.push_str("  \n% a comment line\n");
            }
            noisy.push_str("   ");
            noisy.push_str(line);
            noisy.push('\n');
        }
        let reparsed = parse_program(&noisy)
            .unwrap_or_else(|e| panic!("noisy text failed to parse: {e}\n{noisy}"));
        prop_assert_eq!(reparsed.rules, p.rules);
        prop_assert_eq!(reparsed.facts, p.facts);
    }

    /// Every generated rule also parses in isolation through rule_to_text.
    #[test]
    fn single_rule_roundtrip(r in rule()) {
        let text = vadalog_parser::rule_to_text(&r);
        let program = parse_program(&text).unwrap();
        prop_assert_eq!(program.rules.len(), 1);
        prop_assert_eq!(&program.rules[0], &r);
    }

    /// Facts with string arguments containing quotes or backslashes survive
    /// the round trip thanks to escaping in the printer.
    #[test]
    fn escaped_strings_roundtrip(
        p in predicate_name(),
        s in prop::sample::select(vec![r#"he said "hi""#, r"back\slash", r#"mix "q" and \b"#]),
    ) {
        let f = Fact::new(&p, vec![Value::str(s)]);
        let program = Program { rules: vec![], facts: vec![f.clone()], annotations: vec![] };
        let text = program_to_text(&program);
        let reparsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("escaped text failed to parse: {e}\n{text}"));
        prop_assert_eq!(reparsed.facts, vec![f]);
    }

    /// Garbage that is not a valid program yields an error rather than a
    /// panic or a silent empty program.
    #[test]
    fn junk_never_panics(junk in "[a-zA-Z(),.>\\- ]{0,40}") {
        // must not panic; any Result is acceptable
        let _ = parse_program(&junk);
    }
}
