//! Magic-cone patterns and subsumption.
//!
//! A query atom denotes a **magic cone**: the slice of the program's model
//! reachable from the query's bound constants under the adorned rules. The
//! engine's shared derivation cache stores, per cone, the answers the magic
//! evaluation derived; this module provides the cache key — a
//! [`ConePattern`] — and the **subsumption** relation between patterns that
//! lets a cached freer cone answer a more-bound query by filtering.
//!
//! A pattern abstracts a query atom position by position: constants become
//! [`ConeTerm::Bound`] values, variables become [`ConeTerm::Free`] slots
//! numbered by **first occurrence** — so `Reach(x, y)` and `Reach(u, v)`
//! share the pattern `[Free(0), Free(1)]`, while `Reach(x, x)` is
//! `[Free(0), Free(0)]`, a *different* shape even though both queries carry
//! the all-free adornment. (The magic-sets rewrite keys its compiled rules
//! on the [`crate::Adornment`] alone; answer sets additionally depend on
//! repeated-variable equalities and on the bound values, which is exactly
//! what the pattern captures.)
//!
//! **Soundness of subsumption filtering.** For plain-Datalog slices — the
//! only programs the magic rewrite accepts — the answers to a query are
//! exactly the facts of the query predicate in the program's (unique) least
//! model that match the query atom. If pattern `G` (general) subsumes
//! pattern `S` (specific) — see [`ConePattern::subsumes`] — then every fact
//! matching `S` also matches `G`; hence filtering `G`'s cached answers by
//! [`ConePattern::admits`]`(S)` yields precisely `S`'s answer set. No
//! labelled nulls are involved (Datalog derives none), so the filter is
//! exact at the value level.

use vadalog_model::{Atom, Fact, Term, Value, Var};

/// One abstracted argument position of a query atom.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConeTerm {
    /// A bound constant.
    Bound(Value),
    /// A free position, numbered by first occurrence of its variable in the
    /// atom (repeated variables share a number).
    Free(usize),
}

/// The cache key of one magic cone: the query's shape *and* bound values,
/// with variable identity reduced to first-occurrence numbering.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConePattern {
    terms: Vec<ConeTerm>,
}

impl ConePattern {
    /// The pattern of a query atom.
    pub fn of_query(query: &Atom) -> ConePattern {
        let mut seen: Vec<Var> = Vec::new();
        let terms = query
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(v) => ConeTerm::Bound(v.clone()),
                Term::Var(v) => match seen.iter().position(|s| s == v) {
                    Some(i) => ConeTerm::Free(i),
                    None => {
                        seen.push(*v);
                        ConeTerm::Free(seen.len() - 1)
                    }
                },
            })
            .collect();
        ConePattern { terms }
    }

    /// Number of argument positions.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Number of bound (constant) positions.
    pub fn bound_positions(&self) -> usize {
        self.terms
            .iter()
            .filter(|t| matches!(t, ConeTerm::Bound(_)))
            .count()
    }

    /// Does this (more general) pattern subsume `other` — i.e. is there a
    /// consistent per-position mapping of this pattern's terms onto
    /// `other`'s such that every fact matching `other` matches `self`?
    ///
    /// Position by position: a `Bound(v)` here requires the *same*
    /// `Bound(v)` in `other`; a `Free(i)` here may map onto any term of
    /// `other`, but all positions sharing slot `i` must map onto the **same**
    /// term of `other` (the repeated-variable equality must be implied).
    /// `self.subsumes(&self)` always holds; `[Free(0), Free(1)]` subsumes
    /// `[Free(0), Free(0)]` and any bound pattern of the same arity, but
    /// `[Free(0), Free(0)]` subsumes neither of the former.
    pub fn subsumes(&self, other: &ConePattern) -> bool {
        if self.terms.len() != other.terms.len() {
            return false;
        }
        // slot i of self -> the other-pattern term it maps onto
        let mut image: Vec<Option<&ConeTerm>> = Vec::new();
        for (mine, theirs) in self.terms.iter().zip(&other.terms) {
            match mine {
                ConeTerm::Bound(v) => match theirs {
                    ConeTerm::Bound(w) if v == w => {}
                    _ => return false,
                },
                ConeTerm::Free(i) => {
                    if image.len() <= *i {
                        image.resize(*i + 1, None);
                    }
                    match image[*i] {
                        None => image[*i] = Some(theirs),
                        Some(mapped) if mapped == theirs => {}
                        Some(_) => return false,
                    }
                }
            }
        }
        true
    }

    /// Does a fact match this pattern? Bound positions must carry the bound
    /// value, positions sharing a free slot must carry equal values — the
    /// filter that specialises a subsuming cone's cached answers down to
    /// this pattern's answer set.
    pub fn admits(&self, fact: &Fact) -> bool {
        if fact.args.len() != self.terms.len() {
            return false;
        }
        let mut slot: Vec<Option<&Value>> = Vec::new();
        for (term, arg) in self.terms.iter().zip(&fact.args) {
            match term {
                ConeTerm::Bound(v) => {
                    if v != arg {
                        return false;
                    }
                }
                ConeTerm::Free(i) => {
                    if slot.len() <= *i {
                        slot.resize(*i + 1, None);
                    }
                    match slot[*i] {
                        None => slot[*i] = Some(arg),
                        Some(seen) if seen == arg => {}
                        Some(_) => return false,
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::intern;

    fn atom(terms: Vec<Term>) -> Atom {
        Atom {
            predicate: intern("P"),
            terms,
        }
    }

    #[test]
    fn first_occurrence_numbering_distinguishes_repeated_variables() {
        let xy = ConePattern::of_query(&atom(vec![Term::var("x"), Term::var("y")]));
        let uv = ConePattern::of_query(&atom(vec![Term::var("u"), Term::var("v")]));
        let xx = ConePattern::of_query(&atom(vec![Term::var("x"), Term::var("x")]));
        assert_eq!(xy, uv, "variable names must not matter");
        assert_ne!(xy, xx, "repeated variables are a different shape");
    }

    #[test]
    fn subsumption_orders_patterns_by_generality() {
        let free2 = ConePattern::of_query(&atom(vec![Term::var("x"), Term::var("y")]));
        let diag = ConePattern::of_query(&atom(vec![Term::var("x"), Term::var("x")]));
        let bound =
            ConePattern::of_query(&atom(vec![Term::Const(Value::str("a")), Term::var("y")]));
        let other_bound =
            ConePattern::of_query(&atom(vec![Term::Const(Value::str("b")), Term::var("y")]));
        assert!(free2.subsumes(&free2));
        assert!(free2.subsumes(&diag));
        assert!(free2.subsumes(&bound));
        assert!(!diag.subsumes(&free2));
        assert!(!diag.subsumes(&bound), "diagonal does not cover (a, y)");
        assert!(!bound.subsumes(&free2));
        assert!(!bound.subsumes(&other_bound));
        assert!(bound.subsumes(&bound));
    }

    #[test]
    fn admits_filters_a_general_cone_down_to_a_specific_one() {
        let diag = ConePattern::of_query(&atom(vec![Term::var("x"), Term::var("x")]));
        let bound =
            ConePattern::of_query(&atom(vec![Term::Const(Value::str("a")), Term::var("y")]));
        let aa = Fact::new("P", vec![Value::str("a"), Value::str("a")]);
        let ab = Fact::new("P", vec![Value::str("a"), Value::str("b")]);
        let bb = Fact::new("P", vec![Value::str("b"), Value::str("b")]);
        assert!(diag.admits(&aa));
        assert!(!diag.admits(&ab));
        assert!(diag.admits(&bb));
        assert!(bound.admits(&aa));
        assert!(bound.admits(&ab));
        assert!(!bound.admits(&bb));
        // arity mismatches never match
        assert!(!diag.admits(&Fact::new("P", vec![Value::str("a")])));
    }
}
