//! Harmful-Join Elimination (Section 3.2 of the paper).
//!
//! The termination strategy of Algorithm 1 is only correct for *harmless*
//! warded programs (Theorem 2), so warded programs containing harmful joins
//! (two body atoms joined on a variable that can bind to labelled nulls) are
//! first rewritten into an equivalent harmless-warded set of rules.
//!
//! The algorithm follows the paper's two phases:
//!
//! * **cause elimination** — for every harmful rule α:
//!   * *grounding*: a copy of α restricted to ground values of the harmful
//!     variable is kept, guarded by the active-domain predicate
//!     [`DOM_PREDICATE`] (the paper introduces an auxiliary primed predicate
//!     for this; guarding the copy directly with `Dom(h)` is equivalent and
//!     keeps the rule count lower);
//!   * *direct / indirect causes*: every rule β whose head can produce the
//!     null flowing into the harmful position is inlined into α. Direct
//!     causes (β invents the null existentially) replace the harmful
//!     variable with a Skolem term `f_β(frontier)`; indirect causes
//!     (β merely propagates the null) splice β's body in and keep the
//!     variable harmful, to be resolved in a later round;
//! * **Skolem simplification** — rules whose Skolem terms cannot be
//!   satisfied are dropped (*virtual joins*: a Skolem equated with a
//!   constant, two distinct Skolem functions equated, or a Skolem equated
//!   with a nesting of itself), and rules where the same Skolem term meets
//!   itself are *linearized* by unifying the two occurrences.
//!
//! The rewriting is a bounded fixpoint: wardedness guarantees termination in
//! theory (worst-case exponentially many rules), and the implementation
//! additionally enforces generous caps on rounds and generated rules; if a
//! cap is hit the outcome is flagged `complete = false` and the engine falls
//! back to the conservative termination behaviour for the remaining rules.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use vadalog_analysis::positions::{affected_positions, AffectedPositions, Position};
use vadalog_model::prelude::*;

/// Name of the active-domain guard predicate (the paper's `Dom`).
///
/// The storage layer and both evaluation engines populate this unary
/// predicate with every constant occurring in the extensional database, as
/// Section 2 prescribes for `ACDom`.
pub const DOM_PREDICATE: &str = "Dom";

/// Maximum number of worklist iterations before giving up.
const MAX_ROUNDS: usize = 200_000;
/// Maximum number of rules the rewriting may generate.
const MAX_RULES: usize = 20_000;
/// Maximum Skolem nesting depth; deeper terms are treated as unsatisfiable
/// recursive applications (virtual join case 1c).
const MAX_SKOLEM_DEPTH: usize = 4;
/// Maximum number of cause-elimination steps applied to a single rule before
/// it is replaced by its `Dom`-grounded copy.
///
/// The paper's algorithm terminates because the composition can be *folded*
/// back onto already-derived predicates (Example 9 reuses `StrongLink`
/// recursively); implementing that folding in full generality is out of scope
/// here, so indirect causes are unfolded only up to this depth. Rules cut off
/// by the budget keep their grounded copy, so the output is always
/// harmless-warded; the price is that null-joins reachable only through
/// longer propagation chains are not rewritten (the outcome is flagged
/// `complete = false` and the deviation is recorded in DESIGN.md).
const UNFOLD_BUDGET: usize = 6;

/// Result of harmful-join elimination.
#[derive(Clone, Debug)]
pub struct HjeOutcome {
    /// The rewritten program.
    pub program: Program,
    /// Number of worklist steps performed.
    pub rounds: usize,
    /// Number of rules generated (before final deduplication).
    pub generated_rules: usize,
    /// Number of candidate rules dropped as virtual joins.
    pub dropped_virtual_joins: usize,
    /// Whether the fixpoint completed within the caps.
    pub complete: bool,
}

/// Skolem-extended terms used only inside the rewriting.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum STerm {
    Var(Var),
    Const(Value),
    /// Skolem term `f_β(args)`, identified by the index of the originating
    /// rule β in the input program.
    Sk(usize, Vec<STerm>),
}

impl STerm {
    fn from_term(t: &Term) -> STerm {
        match t {
            Term::Var(v) => STerm::Var(*v),
            Term::Const(c) => STerm::Const(c.clone()),
        }
    }

    fn to_term(&self) -> Option<Term> {
        match self {
            STerm::Var(v) => Some(Term::Var(*v)),
            STerm::Const(c) => Some(Term::Const(c.clone())),
            STerm::Sk(_, _) => None,
        }
    }

    fn depth(&self) -> usize {
        match self {
            STerm::Sk(_, args) => 1 + args.iter().map(STerm::depth).max().unwrap_or(0),
            _ => 0,
        }
    }

    fn has_skolem(&self) -> bool {
        matches!(self, STerm::Sk(_, _))
    }
}

#[derive(Clone, PartialEq, Eq, Debug)]
struct SAtom {
    predicate: Sym,
    args: Vec<STerm>,
}

impl SAtom {
    fn from_atom(a: &Atom) -> SAtom {
        SAtom {
            predicate: a.predicate,
            args: a.terms.iter().map(STerm::from_term).collect(),
        }
    }

    fn to_atom(&self) -> Option<Atom> {
        let mut terms = Vec::with_capacity(self.args.len());
        for a in &self.args {
            terms.push(a.to_term()?);
        }
        Some(Atom {
            predicate: self.predicate,
            terms,
        })
    }
}

#[derive(Clone, Debug)]
struct SRule {
    label: Option<String>,
    atoms: Vec<SAtom>,
    rest: Vec<Literal>,
    head: RuleHead,
    /// Number of cause-elimination steps already applied to this rule.
    depth: usize,
}

impl SRule {
    fn from_rule(r: &Rule) -> SRule {
        let atoms = r.body_atoms().iter().map(|a| SAtom::from_atom(a)).collect();
        let rest = r
            .body
            .iter()
            .filter(|l| !matches!(l, Literal::Atom(_)))
            .cloned()
            .collect();
        SRule {
            label: r.label.clone(),
            atoms,
            rest,
            head: r.head.clone(),
            depth: 0,
        }
    }

    fn to_rule(&self) -> Option<Rule> {
        let mut body: Vec<Literal> = Vec::with_capacity(self.atoms.len() + self.rest.len());
        for a in &self.atoms {
            body.push(Literal::Atom(a.to_atom()?));
        }
        body.extend(self.rest.iter().cloned());
        Some(Rule {
            label: self.label.clone(),
            body,
            head: self.head.clone(),
        })
    }

    /// Variables that occur in the head or in non-atom literals; these must
    /// never be bound to Skolem terms.
    fn protected_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        match &self.head {
            RuleHead::Atoms(atoms) => {
                for a in atoms {
                    out.extend(a.variables());
                }
            }
            RuleHead::Falsum => {}
            RuleHead::Equality(a, b) => {
                if let Some(v) = a.as_var() {
                    out.insert(v);
                }
                if let Some(v) = b.as_var() {
                    out.insert(v);
                }
            }
        }
        for l in &self.rest {
            out.extend(l.variables());
        }
        out
    }
}

type Subst = BTreeMap<Var, STerm>;

fn walk(t: &STerm, subst: &Subst) -> STerm {
    match t {
        STerm::Var(v) => match subst.get(v) {
            Some(bound) => walk(bound, subst),
            None => t.clone(),
        },
        STerm::Sk(id, args) => STerm::Sk(*id, args.iter().map(|a| walk(a, subst)).collect()),
        STerm::Const(_) => t.clone(),
    }
}

fn occurs(v: Var, t: &STerm) -> bool {
    match t {
        STerm::Var(x) => *x == v,
        STerm::Const(_) => false,
        STerm::Sk(_, args) => args.iter().any(|a| occurs(v, a)),
    }
}

fn unify(a: &STerm, b: &STerm, subst: &mut Subst) -> bool {
    let a = walk(a, subst);
    let b = walk(b, subst);
    match (&a, &b) {
        (STerm::Var(x), STerm::Var(y)) if x == y => true,
        (STerm::Var(x), other) => {
            if occurs(*x, other) {
                false
            } else {
                subst.insert(*x, other.clone());
                true
            }
        }
        (other, STerm::Var(y)) => {
            if occurs(*y, other) {
                false
            } else {
                subst.insert(*y, other.clone());
                true
            }
        }
        (STerm::Const(c1), STerm::Const(c2)) => c1 == c2,
        (STerm::Sk(i, args1), STerm::Sk(j, args2)) => {
            i == j
                && args1.len() == args2.len()
                && args1
                    .iter()
                    .zip(args2.iter())
                    .all(|(x, y)| unify(x, y, subst))
        }
        _ => false,
    }
}

fn apply_atom(atom: &SAtom, subst: &Subst) -> SAtom {
    SAtom {
        predicate: atom.predicate,
        args: atom.args.iter().map(|a| walk(a, subst)).collect(),
    }
}

/// Apply a substitution to a model-level term; fails if a protected variable
/// would become a Skolem term.
fn apply_model_term(t: &Term, subst: &Subst) -> Option<Term> {
    match t {
        Term::Var(v) => walk(&STerm::Var(*v), subst).to_term(),
        Term::Const(_) => Some(t.clone()),
    }
}

fn apply_head(head: &RuleHead, subst: &Subst) -> Option<RuleHead> {
    Some(match head {
        RuleHead::Atoms(atoms) => {
            let mut out = Vec::with_capacity(atoms.len());
            for a in atoms {
                let mut terms = Vec::with_capacity(a.terms.len());
                for t in &a.terms {
                    terms.push(apply_model_term(t, subst)?);
                }
                out.push(Atom {
                    predicate: a.predicate,
                    terms,
                });
            }
            RuleHead::Atoms(out)
        }
        RuleHead::Falsum => RuleHead::Falsum,
        RuleHead::Equality(a, b) => {
            RuleHead::Equality(apply_model_term(a, subst)?, apply_model_term(b, subst)?)
        }
    })
}

fn apply_rest(rest: &[Literal], subst: &Subst) -> Option<Vec<Literal>> {
    // Conditions and assignments may only reference variables bound to plain
    // terms; a Skolem binding there makes the rule unusable.
    let mut out = Vec::with_capacity(rest.len());
    for lit in rest {
        for v in lit.variables() {
            if let Some(bound) = subst.get(&v) {
                if walk(bound, subst).has_skolem() {
                    return None;
                }
            }
        }
        out.push(substitute_literal_vars(lit, subst));
    }
    Some(out)
}

fn substitute_literal_vars(lit: &Literal, subst: &Subst) -> Literal {
    let map_expr = |e: &Expr| substitute_expr(e, subst);
    match lit {
        Literal::Atom(a) => Literal::Atom(substitute_atom_terms(a, subst)),
        Literal::Negated(a) => Literal::Negated(substitute_atom_terms(a, subst)),
        Literal::Condition(c) => {
            Literal::Condition(Condition::new(map_expr(&c.left), c.op, map_expr(&c.right)))
        }
        Literal::Assignment(a) => Literal::Assignment(Assignment::new(a.var, map_expr(&a.expr))),
    }
}

fn substitute_atom_terms(a: &Atom, subst: &Subst) -> Atom {
    Atom {
        predicate: a.predicate,
        terms: a
            .terms
            .iter()
            .map(|t| apply_model_term(t, subst).unwrap_or_else(|| t.clone()))
            .collect(),
    }
}

fn substitute_expr(e: &Expr, subst: &Subst) -> Expr {
    match e {
        Expr::Term(t) => Expr::Term(apply_model_term(t, subst).unwrap_or_else(|| t.clone())),
        Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(substitute_expr(inner, subst))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(substitute_expr(a, subst)),
            Box::new(substitute_expr(b, subst)),
        ),
        Expr::Call(n, args) => {
            Expr::Call(*n, args.iter().map(|a| substitute_expr(a, subst)).collect())
        }
        Expr::Skolem(n, args) => {
            Expr::Skolem(*n, args.iter().map(|a| substitute_expr(a, subst)).collect())
        }
        Expr::Aggregate(agg) => Expr::Aggregate(Aggregation {
            func: agg.func,
            arg: Box::new(substitute_expr(&agg.arg, subst)),
            contributors: agg.contributors.clone(),
        }),
    }
}

/// A cause: an input rule that can put a value into a given predicate
/// position.
#[derive(Clone, Debug)]
struct Cause {
    /// Index of the rule in the input program.
    rule_index: usize,
    /// The head atom of the cause (for multi-head rules, the relevant one).
    head_atom: Atom,
    /// The full rule.
    rule: Rule,
}

/// How the cause feeds the position: by inventing the null (direct) or by
/// propagating a frontier variable (indirect).
enum CauseKind {
    Direct { frontier: Vec<Var> },
    Indirect { via: Var },
}

fn cause_kind(cause: &Cause, position: usize) -> Option<CauseKind> {
    let term = cause.head_atom.terms.get(position)?;
    match term {
        Term::Var(v) => {
            if cause.rule.existential_variables().contains(v) {
                Some(CauseKind::Direct {
                    frontier: cause.rule.frontier_variables().into_iter().collect(),
                })
            } else {
                Some(CauseKind::Indirect { via: *v })
            }
        }
        Term::Const(_) => None,
    }
}

/// Rename all variables of a rule with a unique suffix so they cannot clash
/// with the rule being rewritten.
fn rename_rule(rule: &Rule, suffix: usize) -> Rule {
    let mut mapping: BTreeMap<Var, Var> = BTreeMap::new();
    for v in rule.all_variables() {
        mapping.insert(v, Var::new(&format!("{}__c{}", v.name(), suffix)));
    }
    let rename_term = |t: &Term| match t {
        Term::Var(v) => Term::Var(mapping[v]),
        Term::Const(_) => t.clone(),
    };
    let rename_atom = |a: &Atom| Atom {
        predicate: a.predicate,
        terms: a.terms.iter().map(rename_term).collect(),
    };
    let subst: Subst = mapping
        .iter()
        .map(|(from, to)| (*from, STerm::Var(*to)))
        .collect();
    Rule {
        label: rule.label.clone(),
        body: rule
            .body
            .iter()
            .map(|l| match l {
                Literal::Atom(a) => Literal::Atom(rename_atom(a)),
                Literal::Negated(a) => Literal::Negated(rename_atom(a)),
                other => substitute_literal_vars(other, &subst),
            })
            .collect(),
        head: match &rule.head {
            RuleHead::Atoms(atoms) => RuleHead::Atoms(atoms.iter().map(rename_atom).collect()),
            RuleHead::Falsum => RuleHead::Falsum,
            RuleHead::Equality(a, b) => RuleHead::Equality(rename_term(a), rename_term(b)),
        },
    }
}

/// Classification of one pending rule: where is the next harmful thing to
/// eliminate?
enum Pending {
    /// A harmful join on a plain variable between at least two body atoms.
    HarmfulVar(Var),
    /// A Skolem term occurring in some body atom (to be resolved against the
    /// causes of that atom).
    SkolemAt { atom: usize, position: usize },
    /// Nothing left to do.
    Clean,
}

fn harmful_vars(rule: &SRule, affected: &AffectedPositions) -> Vec<Var> {
    let mut occ: BTreeMap<Var, Vec<(usize, Position)>> = BTreeMap::new();
    for (ai, atom) in rule.atoms.iter().enumerate() {
        for (pi, t) in atom.args.iter().enumerate() {
            if let STerm::Var(v) = t {
                occ.entry(*v)
                    .or_default()
                    .push((ai, Position::new(atom.predicate, pi)));
            }
        }
    }
    let mut out = Vec::new();
    for (v, occurrences) in occ {
        let atoms: BTreeSet<usize> = occurrences.iter().map(|(a, _)| *a).collect();
        if atoms.len() < 2 {
            continue;
        }
        if occurrences.iter().all(|(_, p)| affected.contains(*p)) {
            out.push(v);
        }
    }
    out
}

fn classify_pending(rule: &SRule, affected: &AffectedPositions) -> Pending {
    for (ai, atom) in rule.atoms.iter().enumerate() {
        for (pi, t) in atom.args.iter().enumerate() {
            if walk(t, &Subst::new()).has_skolem() {
                return Pending::SkolemAt {
                    atom: ai,
                    position: pi,
                };
            }
        }
    }
    if let Some(v) = harmful_vars(rule, affected).into_iter().next() {
        return Pending::HarmfulVar(v);
    }
    Pending::Clean
}

/// Eliminate harmful joins from a (warded) program.
pub fn eliminate_harmful_joins(program: &Program) -> HjeOutcome {
    let affected = affected_positions(program);

    // Collect the causes once: every TGD head atom of the input program.
    let mut causes: BTreeMap<Sym, Vec<Cause>> = BTreeMap::new();
    for (idx, rule) in program.rules.iter().enumerate() {
        for head_atom in rule.head_atoms() {
            causes.entry(head_atom.predicate).or_default().push(Cause {
                rule_index: idx,
                head_atom: head_atom.clone(),
                rule: rule.clone(),
            });
        }
    }

    let mut final_rules: Vec<Rule> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut worklist: VecDeque<SRule> = VecDeque::new();
    let mut rename_counter = 0usize;
    let mut rounds = 0usize;
    let mut generated = 0usize;
    let mut dropped = 0usize;
    let mut complete = true;

    for rule in &program.rules {
        if !rule.is_tgd() {
            // Constraints and EGDs are checked on ground values only (the
            // paper's Dom(*) discipline); they pass through unchanged.
            final_rules.push(rule.clone());
            continue;
        }
        let srule = SRule::from_rule(rule);
        worklist.push_back(srule);
    }

    while let Some(rule) = worklist.pop_front() {
        rounds += 1;
        if rule.depth > UNFOLD_BUDGET {
            // Out of unfolding budget: fall back to the grounded copy.
            complete = false;
            if let Some(grounded) = ground_guarded_copy(&rule, &affected) {
                push_unique(&mut final_rules, &mut seen, grounded);
            }
            continue;
        }
        if rounds > MAX_ROUNDS || final_rules.len() + worklist.len() > MAX_RULES {
            complete = false;
            // Keep the remaining pending rules in their grounded form only.
            if let Some(grounded) = ground_guarded_copy(&rule, &affected) {
                push_unique(&mut final_rules, &mut seen, grounded);
            }
            for r in worklist.drain(..) {
                if let Some(grounded) = ground_guarded_copy(&r, &affected) {
                    push_unique(&mut final_rules, &mut seen, grounded);
                }
            }
            break;
        }

        match classify_pending(&rule, &affected) {
            Pending::Clean => {
                if let Some(r) = rule.to_rule() {
                    push_unique(&mut final_rules, &mut seen, r);
                }
            }
            Pending::HarmfulVar(h) => {
                // Grounding: keep a copy restricted to ground values of h.
                if let Some(grounded) = rule.to_rule().map(|r| add_dom_guard(&r, h)) {
                    push_unique(&mut final_rules, &mut seen, grounded);
                }
                // Cause elimination on the first atom holding h.
                let atom_idx = rule
                    .atoms
                    .iter()
                    .position(|a| a.args.contains(&STerm::Var(h)))
                    .expect("harmful variable must occur in some atom");
                let results = eliminate_at(
                    &rule,
                    atom_idx,
                    &STerm::Var(h),
                    &causes,
                    &mut rename_counter,
                    &mut dropped,
                );
                for r in results {
                    generated += 1;
                    worklist.push_back(r);
                }
            }
            Pending::SkolemAt { atom, position } => {
                let sk = rule.atoms[atom].args[position].clone();
                let results =
                    eliminate_at(&rule, atom, &sk, &causes, &mut rename_counter, &mut dropped);
                for r in results {
                    generated += 1;
                    worklist.push_back(r);
                }
            }
        }
    }

    let mut out = Program {
        rules: final_rules,
        facts: program.facts.clone(),
        annotations: program.annotations.clone(),
    };
    // Deduplicate once more at the model level (different variable names can
    // yield textually distinct but identical rules; cheap string dedup only).
    let mut dedup_seen = BTreeSet::new();
    out.rules.retain(|r| dedup_seen.insert(r.to_string()));

    HjeOutcome {
        program: out,
        rounds,
        generated_rules: generated,
        dropped_virtual_joins: dropped,
        complete,
    }
}

fn push_unique(rules: &mut Vec<Rule>, seen: &mut BTreeSet<String>, rule: Rule) {
    if seen.insert(rule.to_string()) {
        rules.push(rule);
    }
}

/// `Dom(h), body → head`: the grounded copy of a harmful rule.
fn add_dom_guard(rule: &Rule, h: Var) -> Rule {
    let mut body = vec![Literal::Atom(Atom {
        predicate: intern(DOM_PREDICATE),
        terms: vec![Term::Var(h)],
    })];
    body.extend(rule.body.iter().cloned());
    Rule {
        label: rule.label.clone(),
        body,
        head: rule.head.clone(),
    }
}

/// Grounded copy used when the rewriting is cut short: guard every harmful
/// variable of the rule with `Dom`.
fn ground_guarded_copy(rule: &SRule, affected: &AffectedPositions) -> Option<Rule> {
    let base = rule.to_rule()?;
    let mut out = base;
    for h in harmful_vars(rule, affected) {
        out = add_dom_guard(&out, h);
    }
    Some(out)
}

/// Replace body atom `atom_idx` of `rule` using every cause of its predicate,
/// resolving the harmful value `target` (a variable or a Skolem term) at the
/// positions where it occurs in that atom.
fn eliminate_at(
    rule: &SRule,
    atom_idx: usize,
    target: &STerm,
    causes: &BTreeMap<Sym, Vec<Cause>>,
    rename_counter: &mut usize,
    dropped: &mut usize,
) -> Vec<SRule> {
    let mut out = Vec::new();
    let atom = &rule.atoms[atom_idx];
    let Some(cause_list) = causes.get(&atom.predicate) else {
        // No rule can ever feed this atom with a null: only the grounded
        // copy (already emitted by the caller for variables) is needed.
        return out;
    };
    let target_positions: Vec<usize> = atom
        .args
        .iter()
        .enumerate()
        .filter(|(_, t)| *t == target)
        .map(|(i, _)| i)
        .collect();
    let protected = rule.protected_vars();

    'causes: for cause in cause_list {
        *rename_counter += 1;
        let renamed = rename_rule(&cause.rule, *rename_counter);
        // Find the corresponding (renamed) head atom.
        let renamed_head = renamed
            .head_atoms()
            .into_iter()
            .find(|a| a.predicate == atom.predicate)
            .cloned()
            .expect("cause head atom must exist after renaming");

        let mut subst = Subst::new();
        // Unify non-target positions of the cause head with the atom.
        for (i, arg) in atom.args.iter().enumerate() {
            if target_positions.contains(&i) {
                continue;
            }
            let head_term = STerm::from_term(&renamed_head.terms[i]);
            if !unify(arg, &head_term, &mut subst) {
                continue 'causes;
            }
        }

        // Work out what flows into the target positions.
        let renamed_cause = Cause {
            rule_index: cause.rule_index,
            head_atom: renamed_head.clone(),
            rule: renamed.clone(),
        };
        let mut replacement_for_target: Option<STerm> = None;
        let mut ok = true;
        for &pos in &target_positions {
            match cause_kind(&renamed_cause, pos) {
                Some(CauseKind::Direct { frontier }) => {
                    let sk = STerm::Sk(
                        cause.rule_index,
                        frontier
                            .iter()
                            .map(|v| walk(&STerm::Var(*v), &subst))
                            .collect(),
                    );
                    if sk.depth() > MAX_SKOLEM_DEPTH {
                        ok = false;
                        break;
                    }
                    // The target must equal the invented Skolem term.
                    match target {
                        STerm::Var(h) => {
                            if protected.contains(h) {
                                // A harmful-join variable never occurs in the
                                // head of a warded rule; if it does the rule
                                // is beyond what we can rewrite — drop it.
                                ok = false;
                                break;
                            }
                            if !unify(&STerm::Var(*h), &sk, &mut subst) {
                                ok = false;
                                break;
                            }
                        }
                        other => {
                            // Skolem-vs-Skolem: virtual join unless the same
                            // function with unifiable arguments
                            // (linearization).
                            if !unify(other, &sk, &mut subst) {
                                ok = false;
                                break;
                            }
                        }
                    }
                    replacement_for_target = Some(sk);
                }
                Some(CauseKind::Indirect { via }) => {
                    // The cause propagates its own variable into the
                    // position: identify it with the target.
                    if !unify(&STerm::Var(via), target, &mut subst) {
                        ok = false;
                        break;
                    }
                    replacement_for_target = Some(walk(target, &subst));
                }
                None => {
                    // The cause writes a constant there: it can never feed a
                    // null, so it contributes nothing beyond the grounded
                    // copy.
                    ok = false;
                    break;
                }
            }
        }
        if !ok || replacement_for_target.is_none() {
            *dropped += 1;
            continue;
        }

        // Build the new rule: α with the target atom replaced by the cause's
        // body, everything under the combined substitution.
        let mut new_atoms: Vec<SAtom> = Vec::new();
        for (i, a) in rule.atoms.iter().enumerate() {
            if i == atom_idx {
                for b in renamed.body_atoms() {
                    new_atoms.push(apply_atom(&SAtom::from_atom(b), &subst));
                }
            } else {
                new_atoms.push(apply_atom(a, &subst));
            }
        }
        let Some(new_rest) = apply_rest(&rule.rest, &subst) else {
            *dropped += 1;
            continue;
        };
        let mut new_rest = new_rest;
        // Carry over the cause's own conditions / assignments.
        let cause_rest: Vec<Literal> = renamed
            .body
            .iter()
            .filter(|l| !matches!(l, Literal::Atom(_)))
            .cloned()
            .collect();
        match apply_rest(&cause_rest, &subst) {
            Some(extra) => new_rest.extend(extra),
            None => {
                *dropped += 1;
                continue;
            }
        }
        let Some(new_head) = apply_head(&rule.head, &subst) else {
            *dropped += 1;
            continue;
        };
        // Drop rules whose Skolem terms grew beyond the recursion cap
        // (virtual join case 1c).
        if new_atoms
            .iter()
            .any(|a| a.args.iter().any(|t| t.depth() > MAX_SKOLEM_DEPTH))
        {
            *dropped += 1;
            continue;
        }
        out.push(SRule {
            label: rule.label.clone(),
            atoms: new_atoms,
            rest: new_rest,
            head: new_head,
            depth: rule.depth + 1,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_analysis::analyze_program;
    use vadalog_parser::parse_program;

    fn run(src: &str) -> HjeOutcome {
        eliminate_harmful_joins(&parse_program(src).unwrap())
    }

    const EXAMPLE5: &str = "KeyPerson(x, p) -> PSC(x, p).\n\
                            Company(x) -> PSC(x, p).\n\
                            Control(y, x), PSC(y, p) -> PSC(x, p).\n\
                            PSC(x, p), PSC(y, p), x > y -> StrongLink(x, y).";

    #[test]
    fn example5_becomes_harmless_warded() {
        let out = run(EXAMPLE5);
        let analysis = analyze_program(&out.program);
        assert!(analysis.is_warded(), "output must stay warded");
        assert!(
            analysis.is_harmless_warded(),
            "harmful joins must be eliminated:\n{}",
            out.program
        );
    }

    #[test]
    fn example5_keeps_a_dom_grounded_copy() {
        let out = run(EXAMPLE5);
        let has_dom_rule = out.program.rules.iter().any(|r| {
            r.body_predicates().contains(&intern(DOM_PREDICATE))
                && r.head_predicates().contains(&intern("StrongLink"))
        });
        assert!(has_dom_rule, "grounded copy missing:\n{}", out.program);
    }

    #[test]
    fn example5_derives_control_based_strong_links() {
        // The rewriting must produce rules deriving StrongLink directly from
        // Company/Control without going through nulls (the transitive-closure
        // flavoured rules of Example 9).
        let out = run(EXAMPLE5);
        let derived: Vec<&Rule> = out
            .program
            .rules
            .iter()
            .filter(|r| {
                r.head_predicates().contains(&intern("StrongLink"))
                    && !r.body_predicates().contains(&intern("PSC"))
                    && !r.body_predicates().contains(&intern(DOM_PREDICATE))
            })
            .collect();
        assert!(
            !derived.is_empty(),
            "expected null-free StrongLink rules, got:\n{}",
            out.program
        );
        // At least one of them must mention Company (the direct cause of the
        // existential) in its body.
        assert!(
            derived
                .iter()
                .any(|r| r.body_predicates().contains(&intern("Company"))),
            "expected a Company-based rule:\n{}",
            out.program
        );
    }

    #[test]
    fn harmless_programs_pass_through_unchanged() {
        let src = "Company(x) -> KeyPerson(p, x).\n\
                   Control(x, y), KeyPerson(p, x) -> KeyPerson(p, y).";
        let out = run(src);
        assert!(out.complete);
        assert_eq!(out.program.rules.len(), 2);
        assert_eq!(out.dropped_virtual_joins, 0);
    }

    #[test]
    fn plain_datalog_is_untouched() {
        let src = "Own(x, y, w), w > 0.5 -> Control(x, y).\n\
                   Control(x, y), Control(y, z) -> Control(x, z).";
        let out = run(src);
        assert_eq!(out.program.rules.len(), 2);
        assert!(analyze_program(&out.program).is_harmless_warded());
    }

    #[test]
    fn constraints_and_egds_are_preserved() {
        let src = "Own(x, y, w) -> SoftLink(x, y).\n\
                   Own(x, x, w) -> false.\n\
                   Incorp(y, z), Own(x1, y, w1), Own(x2, z, w1) -> x1 = x2.";
        let out = run(src);
        assert!(out
            .program
            .rules
            .iter()
            .any(|r| matches!(r.head, RuleHead::Falsum)));
        assert!(out
            .program
            .rules
            .iter()
            .any(|r| matches!(r.head, RuleHead::Equality(_, _))));
    }

    #[test]
    fn example7_strong_link_rule_is_rewritten() {
        let src = "Company(x) -> Owns(p, s, x).\n\
                   Owns(p, s, x) -> Stock(x, s).\n\
                   Owns(p, s, x) -> PSC(x, p).\n\
                   PSC(x, p), Controls(x, y) -> Owns(p, s, y).\n\
                   PSC(x, p), PSC(y, p) -> StrongLink(x, y).\n\
                   StrongLink(x, y) -> Owns(p, s, x).\n\
                   StrongLink(x, y) -> Owns(p, s, y).\n\
                   Stock(x, s) -> Company(x).";
        let out = run(src);
        let analysis = analyze_program(&out.program);
        assert!(
            analysis.is_harmless_warded(),
            "expected harmless warded output (complete={}):\n{}",
            out.complete,
            out.program
        );
        // The original harmful rule must be gone.
        for r in &out.program.rules {
            let preds = r.body_predicates();
            let psc_count = preds.iter().filter(|p| **p == intern("PSC")).count();
            if psc_count >= 2 {
                assert!(
                    preds.contains(&intern(DOM_PREDICATE)),
                    "PSC-PSC joins must be Dom-guarded: {r}"
                );
            }
        }
    }

    #[test]
    fn conditions_survive_the_rewriting() {
        let out = run(EXAMPLE5);
        // Every StrongLink rule must still carry the x > y style guard (on
        // whatever the variables were renamed to) or be Dom-guarded; in
        // particular the grounded copy keeps the original condition.
        let grounded = out
            .program
            .rules
            .iter()
            .find(|r| {
                r.body_predicates().contains(&intern(DOM_PREDICATE))
                    && r.head_predicates().contains(&intern("StrongLink"))
            })
            .unwrap();
        assert_eq!(grounded.conditions().len(), 1);
    }
}
