//! # vadalog-rewrite
//!
//! The *logic optimizer* of the Vadalog system (Section 4, step 1): a set of
//! source-to-source rewritings applied to a program before it is compiled
//! into a reasoning access plan.
//!
//! The passes implemented here are the ones the paper names:
//!
//! * **multiple-head elimination** — rules with several head atoms are split
//!   into single-head rules, introducing an auxiliary predicate when the head
//!   atoms share existential variables ([`optimizer::eliminate_multiple_heads`]);
//! * **redundancy elimination** — duplicate rules and trivial tautologies are
//!   dropped ([`optimizer::eliminate_redundancies`]);
//! * **existential isolation** — existential quantification is confined to
//!   linear rules, the second precondition of Algorithm 1
//!   ([`optimizer::isolate_existentials`]);
//! * **harmful-join elimination** — the algorithm of Section 3.2 that turns a
//!   warded program into an equivalent harmless-warded one, with the
//!   grounding, direct/indirect cause elimination, Skolem simplification and
//!   linearization steps ([`hje::eliminate_harmful_joins`]).
//!
//! On top of these, [`magic`] implements the magic-sets transformation the
//! paper lists as a foreseen Datalog optimization (Sections 6.5 and 7), used
//! by the engine's query-driven entry points.
//!
//! # The adorned-compile cache contract
//!
//! The transformation is deliberately **constant-free above the seed**: for
//! a fixed `(predicate, adornment)` pair, the adorned and magic *rules* are
//! identical for every constant vector the query binds — only the magic
//! seed fact (the bound constants, in term order) differs. The engine's
//! `QuerySession` relies on this to compile each adorned program (and its
//! access plan) **once per adornment** and replay it for every subsequent
//! query of that shape, minting just a fresh seed fact per query; the bound
//! prefix of each magic predicate then reaches the planner as an ordinary
//! composite-probe prefix over the storage layer's sorted runs. Call sites
//! whose adornment is all-free are guarded by a *nullary* magic atom
//! derived exactly when the call site is reachable, so free calls restrict
//! nothing but never block evaluation either.
//!
//! [`prepare_for_execution`] chains these passes in the order the engine
//! expects.

pub mod cone;
pub mod hje;
pub mod magic;
pub mod optimizer;

pub use cone::{ConePattern, ConeTerm};
pub use hje::{eliminate_harmful_joins, HjeOutcome, DOM_PREDICATE};
pub use magic::{magic_sets, Adornment, MagicProgram, MagicSetError};
pub use optimizer::{
    eliminate_multiple_heads, eliminate_redundancies, isolate_existentials, LogicOptimizer,
};

use vadalog_model::Program;

/// Run the full pre-execution rewriting pipeline:
/// multiple-head elimination → existential isolation → harmful-join
/// elimination → redundancy elimination.
///
/// The output program is harmless warded whenever the input was warded (up to
/// the bounded-effort caveat documented on [`eliminate_harmful_joins`]), has
/// single-atom heads, and confines existentials to linear rules — exactly the
/// preconditions of the termination strategy in `vadalog-chase`.
pub fn prepare_for_execution(program: &Program) -> Program {
    let p = eliminate_multiple_heads(program);
    let p = isolate_existentials(&p);
    let outcome = eliminate_harmful_joins(&p);
    eliminate_redundancies(&outcome.program)
}
