//! Magic-sets transformation for query-driven reasoning.
//!
//! The paper lists magic sets among the "typical optimizations of Datalog
//! (foreseen as a future optimization)" that systems like RDFox and DLV
//! already apply (Sections 6.1, 6.5 and 7). This module implements the
//! classical transformation for the Datalog fragment of Vadalog: given a
//! query atom with some arguments bound to constants, it produces an adorned
//! program whose evaluation only derives facts *relevant* to the query,
//! together with the magic seed fact.
//!
//! The transformation is restricted to the fragment where it is sound and
//! complete in its textbook form:
//!
//! * no existential quantification in the heads of the rules that (directly
//!   or transitively) define the query predicate,
//! * no aggregation, negation, EGDs or negative constraints on that slice,
//! * single-atom heads (run [`crate::eliminate_multiple_heads`] first —
//!   [`crate::prepare_for_execution`] already does).
//!
//! Programs outside this slice are reported via [`MagicSetError`], and the
//! engine then simply answers the query bottom-up without the optimization.
//!
//! The rewritten **rules** depend only on the query's *adornment* (which
//! positions are bound), never on the bound constants themselves — those
//! appear solely in the magic seed fact. Query sessions exploit this: one
//! compilation per `(predicate, adornment)` pair serves every constant
//! vector, with a fresh seed interned per query (see the crate docs).

use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use vadalog_model::prelude::*;

/// An adornment: one flag per argument position of a predicate, `true` when
/// the position is bound at call time.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Adornment(pub Vec<bool>);

impl Adornment {
    /// The adornment of a query atom: constants are bound, variables free.
    pub fn of_query(query: &Atom) -> Self {
        Adornment(query.terms.iter().map(Term::is_const).collect())
    }

    /// The conventional `b`/`f` string, e.g. `bf` for a bound-free binary
    /// predicate.
    pub fn suffix(&self) -> String {
        self.0.iter().map(|b| if *b { 'b' } else { 'f' }).collect()
    }

    /// Number of bound positions.
    pub fn bound_count(&self) -> usize {
        self.0.iter().filter(|b| **b).count()
    }

    /// Is every position free (in which case magic sets cannot restrict
    /// anything)?
    pub fn is_all_free(&self) -> bool {
        self.bound_count() == 0
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.suffix())
    }
}

/// Why the magic-sets transformation refused a program/query pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MagicSetError {
    /// The query predicate is never derived by any rule (it is purely
    /// extensional), so there is nothing to optimize.
    QueryIsExtensional(String),
    /// A rule relevant to the query has existential quantification.
    ExistentialRule(String),
    /// A rule relevant to the query uses aggregation.
    AggregateRule(String),
    /// A rule relevant to the query uses negation.
    NegatedAtom(String),
    /// A rule relevant to the query is a constraint or EGD.
    NonTgdRule(String),
    /// A rule relevant to the query has a multi-atom head (normalise first).
    MultiAtomHead(String),
    /// The query binds nothing, so the transformation would be a no-op.
    NoBoundArguments,
}

impl fmt::Display for MagicSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MagicSetError::QueryIsExtensional(p) => {
                write!(f, "query predicate {p} is extensional; nothing to optimise")
            }
            MagicSetError::ExistentialRule(r) => {
                write!(f, "rule relevant to the query has existentials: {r}")
            }
            MagicSetError::AggregateRule(r) => {
                write!(f, "rule relevant to the query has aggregation: {r}")
            }
            MagicSetError::NegatedAtom(r) => {
                write!(f, "rule relevant to the query has negation: {r}")
            }
            MagicSetError::NonTgdRule(r) => {
                write!(f, "rule relevant to the query is a constraint/EGD: {r}")
            }
            MagicSetError::MultiAtomHead(r) => {
                write!(f, "rule relevant to the query has a multi-atom head: {r}")
            }
            MagicSetError::NoBoundArguments => {
                write!(
                    f,
                    "the query has no bound arguments; magic sets would not restrict anything"
                )
            }
        }
    }
}

impl std::error::Error for MagicSetError {}

/// The result of the transformation.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// The rewritten program: adorned rules, magic rules, the magic seed
    /// fact, the original EDB facts, and a bridge rule from the adorned query
    /// predicate back to the original query predicate name.
    pub program: Program,
    /// The adorned name of the query predicate (`p__bf` style).
    pub adorned_query: Sym,
    /// Number of adorned rules produced.
    pub adorned_rules: usize,
    /// Number of magic rules produced.
    pub magic_rules: usize,
}

fn adorned_name(predicate: Sym, adornment: &Adornment) -> String {
    format!("{}__{}", predicate.as_str(), adornment.suffix())
}

fn magic_name(predicate: Sym, adornment: &Adornment) -> String {
    format!("m_{}__{}", predicate.as_str(), adornment.suffix())
}

/// The intensional predicates of a program (those derived by some TGD head).
pub fn intensional_predicates(program: &Program) -> BTreeSet<Sym> {
    let mut out = BTreeSet::new();
    for r in &program.rules {
        for a in r.head_atoms() {
            out.insert(a.predicate);
        }
    }
    out
}

/// The predicates on which the query predicate (transitively) depends.
fn relevant_predicates(program: &Program, query_predicate: Sym) -> BTreeSet<Sym> {
    let mut relevant = BTreeSet::from([query_predicate]);
    let mut queue = VecDeque::from([query_predicate]);
    while let Some(p) = queue.pop_front() {
        for r in &program.rules {
            if r.head_atoms().iter().any(|h| h.predicate == p) {
                for b in r.body_atoms() {
                    if relevant.insert(b.predicate) {
                        queue.push_back(b.predicate);
                    }
                }
            }
        }
    }
    relevant
}

/// Check that the slice of the program relevant to the query is inside the
/// fragment where the textbook transformation applies.
fn check_applicable(program: &Program, query: &Atom) -> Result<(), MagicSetError> {
    let adornment = Adornment::of_query(query);
    if adornment.is_all_free() {
        return Err(MagicSetError::NoBoundArguments);
    }
    let idb = intensional_predicates(program);
    if !idb.contains(&query.predicate) {
        return Err(MagicSetError::QueryIsExtensional(
            query.predicate.as_str().to_string(),
        ));
    }
    let relevant = relevant_predicates(program, query.predicate);
    for r in &program.rules {
        let head_preds = r.head_predicates();
        let is_relevant = head_preds.iter().any(|p| relevant.contains(p));
        if !is_relevant {
            continue;
        }
        if !r.is_tgd() {
            return Err(MagicSetError::NonTgdRule(r.to_string()));
        }
        if r.head_atoms().len() > 1 {
            return Err(MagicSetError::MultiAtomHead(r.to_string()));
        }
        if r.has_existentials() {
            return Err(MagicSetError::ExistentialRule(r.to_string()));
        }
        if r.has_aggregation() {
            return Err(MagicSetError::AggregateRule(r.to_string()));
        }
        if !r.negated_atoms().is_empty() {
            return Err(MagicSetError::NegatedAtom(r.to_string()));
        }
    }
    Ok(())
}

/// Apply the magic-sets transformation to `program` for the given query atom.
///
/// The query atom uses constants for bound arguments and variables for free
/// ones, e.g. `Control("hsbc", y)` asks for everything controlled by `hsbc`.
/// On success the returned program derives, for the *original* query
/// predicate name, exactly the query-relevant subset of the facts the full
/// program would derive (see the property tests).
pub fn magic_sets(program: &Program, query: &Atom) -> Result<MagicProgram, MagicSetError> {
    check_applicable(program, query)?;

    let idb = intensional_predicates(program);
    let query_adornment = Adornment::of_query(query);

    // Worklist over (predicate, adornment) pairs.
    let mut pending: VecDeque<(Sym, Adornment)> =
        VecDeque::from([(query.predicate, query_adornment.clone())]);
    let mut seen: BTreeSet<(Sym, Adornment)> = BTreeSet::new();

    let mut out = Program::new();
    let mut adorned_rules = 0usize;
    let mut magic_rules = 0usize;

    while let Some((predicate, adornment)) = pending.pop_front() {
        if !seen.insert((predicate, adornment.clone())) {
            continue;
        }
        for rule in &program.rules {
            let Some(head) = rule.head_atoms().first().copied().cloned() else {
                continue;
            };
            if head.predicate != predicate {
                continue;
            }

            // Variables bound by the head adornment.
            let mut bound: BTreeSet<Var> = BTreeSet::new();
            for (term, is_bound) in head.terms.iter().zip(adornment.0.iter()) {
                if *is_bound {
                    if let Some(v) = term.as_var() {
                        bound.insert(v);
                    }
                }
            }

            // The magic atom guarding this rule: the bound head arguments.
            let magic_head_terms: Vec<Term> = head
                .terms
                .iter()
                .zip(adornment.0.iter())
                .filter(|(_, b)| **b)
                .map(|(t, _)| t.clone())
                .collect();
            let magic_head_atom = Atom {
                predicate: intern(&magic_name(predicate, &adornment)),
                terms: magic_head_terms,
            };

            // Build the adorned rule body, emitting magic rules for IDB atoms
            // via left-to-right sideways information passing.
            let mut new_body: Vec<Literal> = vec![Literal::Atom(magic_head_atom.clone())];
            let mut sip_prefix: Vec<Literal> = vec![Literal::Atom(magic_head_atom.clone())];

            for literal in &rule.body {
                match literal {
                    Literal::Atom(atom) if idb.contains(&atom.predicate) => {
                        // Adornment of this call site: bound iff the variable
                        // is bound by the head or an earlier body literal.
                        let call_adornment = Adornment(
                            atom.terms
                                .iter()
                                .map(|t| match t {
                                    Term::Const(_) => true,
                                    Term::Var(v) => bound.contains(v),
                                })
                                .collect(),
                        );
                        // magic rule: m_q^a(bound args) :- sip prefix. For an
                        // all-free call the magic atom is nullary — derived
                        // exactly when the call site is reachable — so the
                        // adorned q^ff rules still fire (a free call restricts
                        // nothing, but it must not *block* either).
                        let magic_body_atom = Atom {
                            predicate: intern(&magic_name(atom.predicate, &call_adornment)),
                            terms: atom
                                .terms
                                .iter()
                                .zip(call_adornment.0.iter())
                                .filter(|(_, b)| **b)
                                .map(|(t, _)| t.clone())
                                .collect(),
                        };
                        out.add_rule(Rule::new(sip_prefix.clone(), magic_body_atom));
                        magic_rules += 1;
                        pending.push_back((atom.predicate, call_adornment.clone()));
                        // the adorned occurrence in the rewritten rule
                        let adorned_atom = Atom {
                            predicate: intern(&adorned_name(atom.predicate, &call_adornment)),
                            terms: atom.terms.clone(),
                        };
                        new_body.push(Literal::Atom(adorned_atom.clone()));
                        sip_prefix.push(Literal::Atom(adorned_atom));
                        bound.extend(atom.variables());
                    }
                    Literal::Atom(atom) => {
                        // EDB atom: kept as-is, binds its variables.
                        new_body.push(literal.clone());
                        sip_prefix.push(literal.clone());
                        bound.extend(atom.variables());
                    }
                    Literal::Assignment(a) => {
                        new_body.push(literal.clone());
                        sip_prefix.push(literal.clone());
                        bound.insert(a.var);
                    }
                    Literal::Condition(_) | Literal::Negated(_) => {
                        new_body.push(literal.clone());
                        sip_prefix.push(literal.clone());
                    }
                }
            }

            // The adorned rule itself.
            let adorned_head = Atom {
                predicate: intern(&adorned_name(predicate, &adornment)),
                terms: head.terms.clone(),
            };
            out.add_rule(Rule::new(new_body, adorned_head));
            adorned_rules += 1;
        }
    }

    // Magic seed: the bound constants of the query.
    let seed_args: Vec<Value> = query
        .terms
        .iter()
        .filter_map(Term::as_const)
        .cloned()
        .collect();
    out.add_fact(Fact::new(
        &magic_name(query.predicate, &query_adornment),
        seed_args,
    ));

    // Bridge the adorned query predicate back to the original name so that
    // callers (and @output annotations) keep working unchanged.
    let adorned_query = intern(&adorned_name(query.predicate, &query_adornment));
    let bridge_vars: Vec<String> = (0..query.arity()).map(|i| format!("v{i}")).collect();
    let bridge_refs: Vec<&str> = bridge_vars.iter().map(String::as_str).collect();
    out.add_rule(Rule::tgd(
        vec![Atom::vars(&adorned_query.as_str(), &bridge_refs)],
        vec![Atom::vars(&query.predicate.as_str(), &bridge_refs)],
    ));

    // Copy the extensional database and annotations verbatim.
    for f in &program.facts {
        out.add_fact(f.clone());
    }
    for a in &program.annotations {
        out.add_annotation(a.clone());
    }

    Ok(MagicProgram {
        program: out,
        adorned_query,
        adorned_rules,
        magic_rules,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_parser::parse_program;

    fn chain_program(n: usize) -> Program {
        let mut program = parse_program(
            "Edge(x, y) -> Reach(x, y).\n\
             Reach(x, y), Edge(y, z) -> Reach(x, z).\n\
             @output(\"Reach\").",
        )
        .unwrap();
        for i in 0..n {
            program.add_fact(Fact::new(
                "Edge",
                vec![
                    Value::str(&format!("n{i}")),
                    Value::str(&format!("n{}", i + 1)),
                ],
            ));
        }
        program
    }

    fn query_from(source: &str) -> Atom {
        Atom {
            predicate: intern("Reach"),
            terms: vec![Term::Const(Value::str(source)), Term::var("y")],
        }
    }

    #[test]
    fn adornments_read_off_the_query() {
        let q = query_from("n0");
        let a = Adornment::of_query(&q);
        assert_eq!(a.suffix(), "bf");
        assert_eq!(a.bound_count(), 1);
        assert!(!a.is_all_free());
    }

    #[test]
    fn transformation_produces_magic_and_adorned_rules() {
        let program = chain_program(5);
        let magic = magic_sets(&program, &query_from("n0")).unwrap();
        assert!(magic.adorned_rules >= 2, "both Reach rules must be adorned");
        assert!(
            magic.magic_rules >= 1,
            "the recursive call must get a magic rule"
        );
        // seed fact present
        assert!(magic
            .program
            .facts
            .iter()
            .any(|f| f.predicate_name() == "m_Reach__bf" && f.args == vec![Value::str("n0")]));
    }

    #[test]
    fn all_free_call_sites_get_a_nullary_magic_guard() {
        // A free-bound query turns the recursive rule's Reach call into an
        // all-free call site: its nullary magic guard must still be derived
        // (from the seed), otherwise the adorned ff rules can never fire and
        // the rewrite silently loses answers.
        let program = chain_program(4);
        let q = Atom {
            predicate: intern("Reach"),
            terms: vec![Term::var("x"), Term::Const(Value::str("n4"))],
        };
        let magic = magic_sets(&program, &q).unwrap();
        assert!(magic.program.rules.iter().any(|r| r
            .head_atoms()
            .iter()
            .any(|h| { h.predicate.as_str() == "m_Reach__ff" && h.terms.is_empty() })));
    }

    #[test]
    fn unbound_queries_are_rejected() {
        let program = chain_program(3);
        let q = Atom::vars("Reach", &["x", "y"]);
        assert!(matches!(
            magic_sets(&program, &q),
            Err(MagicSetError::NoBoundArguments)
        ));
    }

    #[test]
    fn extensional_queries_are_rejected() {
        let program = chain_program(3);
        let q = Atom {
            predicate: intern("Edge"),
            terms: vec![Term::Const(Value::str("n0")), Term::var("y")],
        };
        assert!(matches!(
            magic_sets(&program, &q),
            Err(MagicSetError::QueryIsExtensional(_))
        ));
    }

    #[test]
    fn existential_slices_are_rejected() {
        let program = parse_program(
            "Company(x) -> Owns(p, s, x).\n\
             Owns(p, s, x) -> PSC(x, p).",
        )
        .unwrap();
        let q = Atom {
            predicate: intern("PSC"),
            terms: vec![Term::Const(Value::str("acme")), Term::var("p")],
        };
        assert!(matches!(
            magic_sets(&program, &q),
            Err(MagicSetError::ExistentialRule(_))
        ));
    }

    #[test]
    fn irrelevant_existentials_do_not_block_the_rewrite() {
        // The existential rule defines a predicate the query never touches.
        let mut program = chain_program(3);
        program.add_rule(parse_program("Company(x) -> Owns(p, s, x).").unwrap().rules[0].clone());
        assert!(magic_sets(&program, &query_from("n0")).is_ok());
    }
}
