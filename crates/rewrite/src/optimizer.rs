//! Elementary logic rewritings: multiple-head elimination, existential
//! isolation and redundancy elimination.

use std::collections::BTreeSet;
use vadalog_model::prelude::*;

/// Counter used to generate unique auxiliary predicate names within one
/// optimizer run.
#[derive(Default)]
struct FreshNames {
    counter: usize,
}

impl FreshNames {
    fn aux(&mut self, prefix: &str) -> String {
        let name = format!("{prefix}_{}", self.counter);
        self.counter += 1;
        name
    }
}

/// A convenience wrapper bundling the individual passes; equivalent to
/// calling the free functions in sequence.
#[derive(Default)]
pub struct LogicOptimizer;

impl LogicOptimizer {
    /// Create an optimizer.
    pub fn new() -> Self {
        Self
    }

    /// Apply multiple-head elimination, existential isolation and redundancy
    /// elimination (without harmful-join elimination, which is a separate,
    /// more expensive pass).
    pub fn optimize(&self, program: &Program) -> Program {
        let p = eliminate_multiple_heads(program);
        let p = isolate_existentials(&p);
        eliminate_redundancies(&p)
    }
}

/// Split rules with multiple head atoms into single-head rules.
///
/// When head atoms share existential variables (as in rule 4 of Example 6,
/// `Incorp(x, y) → ∃z∃w1∃w2 Own(z, x, w1), Own(z, y, w2)`), a naive split
/// would let the two copies invent *different* nulls for `z`. To preserve the
/// semantics an auxiliary predicate carrying the frontier and the shared
/// existential variables is introduced:
///
/// ```text
/// Incorp(x, y) -> MH_0(x, y, z).
/// MH_0(x, y, z) -> Own(z, x, w1).
/// MH_0(x, y, z) -> Own(z, y, w2).
/// ```
pub fn eliminate_multiple_heads(program: &Program) -> Program {
    let mut fresh = FreshNames::default();
    let mut out = Program {
        rules: Vec::new(),
        facts: program.facts.clone(),
        annotations: program.annotations.clone(),
    };
    for rule in &program.rules {
        match &rule.head {
            RuleHead::Atoms(atoms) if atoms.len() > 1 => {
                let existentials = rule.existential_variables();
                // Existential variables shared by at least two head atoms.
                let mut shared: BTreeSet<Var> = BTreeSet::new();
                for v in &existentials {
                    let holders = atoms
                        .iter()
                        .filter(|a| a.variable_set().contains(v))
                        .count();
                    if holders > 1 {
                        shared.insert(*v);
                    }
                }
                if shared.is_empty() {
                    for atom in atoms {
                        out.rules.push(Rule {
                            label: rule.label.clone(),
                            body: rule.body.clone(),
                            head: RuleHead::Atoms(vec![atom.clone()]),
                        });
                    }
                } else {
                    // Auxiliary predicate over frontier ∪ shared existentials.
                    let frontier = rule.frontier_variables();
                    let mut aux_vars: Vec<Var> = frontier.into_iter().collect();
                    aux_vars.extend(shared.iter().copied());
                    let aux_name = fresh.aux("MH");
                    let aux_atom = Atom {
                        predicate: intern(&aux_name),
                        terms: aux_vars.iter().map(|v| Term::Var(*v)).collect(),
                    };
                    out.rules.push(Rule {
                        label: rule.label.clone(),
                        body: rule.body.clone(),
                        head: RuleHead::Atoms(vec![aux_atom.clone()]),
                    });
                    for atom in atoms {
                        out.rules.push(Rule {
                            label: rule.label.clone(),
                            body: vec![Literal::Atom(aux_atom.clone())],
                            head: RuleHead::Atoms(vec![atom.clone()]),
                        });
                    }
                }
            }
            _ => out.rules.push(rule.clone()),
        }
    }
    out
}

/// Confine existential quantification to linear rules (precondition 2 of
/// Algorithm 1): every non-linear rule with existential head variables is
/// split through an auxiliary predicate carrying its frontier.
///
/// ```text
/// PSC(x, p), Controls(x, y) -> Owns(p, s, y).
/// ```
/// becomes
/// ```text
/// PSC(x, p), Controls(x, y) -> EX_0(p, y).
/// EX_0(p, y) -> Owns(p, s, y).
/// ```
pub fn isolate_existentials(program: &Program) -> Program {
    let mut fresh = FreshNames::default();
    let mut out = Program {
        rules: Vec::new(),
        facts: program.facts.clone(),
        annotations: program.annotations.clone(),
    };
    for rule in &program.rules {
        let needs_split = rule.is_tgd()
            && !rule.is_linear()
            && rule.has_existentials()
            && rule.head_atoms().len() == 1;
        if !needs_split {
            out.rules.push(rule.clone());
            continue;
        }
        let frontier: Vec<Var> = rule.frontier_variables().into_iter().collect();
        let aux_name = fresh.aux("EX");
        let aux_atom = Atom {
            predicate: intern(&aux_name),
            terms: frontier.iter().map(|v| Term::Var(*v)).collect(),
        };
        out.rules.push(Rule {
            label: rule.label.clone(),
            body: rule.body.clone(),
            head: RuleHead::Atoms(vec![aux_atom.clone()]),
        });
        out.rules.push(Rule {
            label: rule.label.clone(),
            body: vec![Literal::Atom(aux_atom)],
            head: rule.head.clone(),
        });
    }
    out
}

/// Remove duplicate rules and trivial tautologies (a single-head rule whose
/// head atom is syntactically one of its body atoms).
pub fn eliminate_redundancies(program: &Program) -> Program {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut out = Program {
        rules: Vec::new(),
        facts: program.facts.clone(),
        annotations: program.annotations.clone(),
    };
    for rule in &program.rules {
        // Tautology: head atom literally appears in the body.
        if let RuleHead::Atoms(atoms) = &rule.head {
            if atoms.len() == 1 && rule.body_atoms().iter().any(|b| **b == atoms[0]) {
                continue;
            }
        }
        let key = rule.to_string();
        if seen.insert(key) {
            out.rules.push(rule.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_analysis::classify;
    use vadalog_parser::parse_program;

    #[test]
    fn multi_head_without_shared_existentials_splits_plainly() {
        let p = parse_program("StrongLink(x, y) -> Linked(x), Linked(y).").unwrap();
        let out = eliminate_multiple_heads(&p);
        assert_eq!(out.rules.len(), 2);
        assert!(out.rules.iter().all(|r| r.head_atoms().len() == 1));
    }

    #[test]
    fn multi_head_with_shared_existential_uses_an_auxiliary() {
        // Example 6, rule 4: the two Own atoms share the existential z.
        let p = parse_program("Incorp(x, y) -> Own(z, x, w1), Own(z, y, w2).").unwrap();
        let out = eliminate_multiple_heads(&p);
        assert_eq!(out.rules.len(), 3);
        // First rule introduces the auxiliary; the next two consume it.
        let aux_pred = out.rules[0].head_atoms()[0].predicate;
        assert!(aux_pred.as_str().starts_with("MH_"));
        assert_eq!(out.rules[1].body_atoms()[0].predicate, aux_pred);
        assert_eq!(out.rules[2].body_atoms()[0].predicate, aux_pred);
        // z is existential in the first rule only, and shared downstream.
        assert!(out.rules[0]
            .existential_variables()
            .contains(&Var::new("z")));
        assert!(!out.rules[1]
            .existential_variables()
            .contains(&Var::new("z")));
    }

    #[test]
    fn existential_isolation_moves_existentials_to_linear_rules() {
        let p = parse_program(
            "Company(x) -> Owns(p, s, x).\n\
             PSC(x, p), Controls(x, y) -> Owns(p, s, y).",
        )
        .unwrap();
        let out = isolate_existentials(&p);
        assert_eq!(out.rules.len(), 3);
        for r in &out.rules {
            if r.has_existentials() {
                assert!(
                    r.is_linear(),
                    "existentials must be confined to linear rules: {r}"
                );
            }
        }
        // The program is still warded after the transformation.
        assert!(classify(&out).is_warded);
    }

    #[test]
    fn redundancy_elimination_drops_duplicates_and_tautologies() {
        let p = parse_program(
            "Own(x, y, w) -> SoftLink(x, y).\n\
             Own(x, y, w) -> SoftLink(x, y).\n\
             SoftLink(x, y) -> SoftLink(x, y).",
        )
        .unwrap();
        let out = eliminate_redundancies(&p);
        assert_eq!(out.rules.len(), 1);
    }

    #[test]
    fn optimizer_composes_the_passes() {
        let p = parse_program(
            "Incorp(x, y) -> Own(z, x, w1), Own(z, y, w2).\n\
             Own(x, y, w) -> SoftLink(x, y).\n\
             Own(x, y, w) -> SoftLink(x, y).",
        )
        .unwrap();
        let out = LogicOptimizer::new().optimize(&p);
        assert!(out.rules.iter().all(|r| r.head_atoms().len() <= 1));
        // duplicate SoftLink rule removed
        let softlink_rules = out
            .rules
            .iter()
            .filter(|r| r.head_predicates().contains(&intern("SoftLink")))
            .count();
        assert_eq!(softlink_rules, 1);
        for r in &out.rules {
            if r.has_existentials() {
                assert!(r.is_linear());
            }
        }
    }

    #[test]
    fn facts_and_annotations_are_preserved() {
        let p = parse_program(
            "@input(\"Own\").\nOwn(\"a\", \"b\", 0.6).\nOwn(x, y, w) -> SoftLink(x, y).",
        )
        .unwrap();
        let out = LogicOptimizer::new().optimize(&p);
        assert_eq!(out.facts.len(), 1);
        assert_eq!(out.annotations.len(), 1);
    }
}
