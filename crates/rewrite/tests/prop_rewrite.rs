//! Property-based tests for the logic optimizer and the harmful-join
//! elimination algorithm (Section 3.2).
//!
//! The central invariants:
//!
//! * after harmful-join elimination, the program contains no harmful joins
//!   (it is Harmless Warded Datalog±);
//! * the structural rewritings (multiple-head elimination, existential
//!   isolation) establish exactly the normal form the termination strategy
//!   assumes, without dropping predicates or introducing new harmful joins;
//! * `prepare_for_execution` composes these passes and is idempotent in the
//!   properties it establishes.

use proptest::prelude::*;
use std::collections::BTreeSet;
use vadalog_analysis::{analyze_program, classify};
use vadalog_model::prelude::*;
use vadalog_parser::parse_program;
use vadalog_rewrite::{
    eliminate_harmful_joins, eliminate_multiple_heads, isolate_existentials, prepare_for_execution,
};

// ---------------------------------------------------------------- generators

/// A pool of warded program *templates* with harmful joins, existentials and
/// recursion, instantiated with varying predicate names so the pass is
/// exercised on many structurally distinct inputs. The templates are the
/// paper's own examples (Examples 3–7) plus variations.
fn template(idx: usize, a: &str, b: &str, c: &str) -> String {
    match idx % 5 {
        // Example 5: PSC with a harmful (non-dangerous) join in the last rule
        0 => format!(
            "KeyPerson(x, p) -> {a}(x, p).\n\
             Company(x) -> {a}(x, p).\n\
             Control(y, x), {a}(y, p) -> {a}(x, p).\n\
             {a}(x, p), {a}(y, p), x > y -> {b}(x, y).\n"
        ),
        // Example 7 core: ownership with existentials and warded joins
        1 => format!(
            "Company(x) -> Owns(p, s, x).\n\
             Owns(p, s, x) -> {c}(x, s).\n\
             Owns(p, s, x) -> {a}(x, p).\n\
             {a}(x, p), Controls(x, y) -> Owns(p, s, y).\n\
             {a}(x, p), {a}(y, p) -> {b}(x, y).\n\
             {b}(x, y) -> Owns(p, s, x).\n\
             {c}(x, s) -> Company(x).\n"
        ),
        // Example 3: key-person propagation (warded, no harmful join)
        2 => format!(
            "Company(x) -> {a}(p, x).\n\
             Control(x, y), {a}(p, x) -> {a}(p, y).\n"
        ),
        // A harmful join between two different predicates
        3 => format!(
            "Source(x) -> {a}(x, h).\n\
             Source(x) -> {b}(x, h).\n\
             {a}(x, h), {b}(y, h) -> {c}(x, y).\n"
        ),
        // Plain Datalog (nothing to do for HJE)
        _ => format!(
            "Edge(x, y) -> {a}(x, y).\n\
             {a}(x, y), {a}(y, z) -> {a}(x, z).\n\
             {a}(x, y) -> {b}(x).\n"
        ),
    }
}

fn program_text() -> impl Strategy<Value = String> {
    (
        0usize..5,
        prop::sample::select(vec!["PSC", "Holder", "Officer"]),
        prop::sample::select(vec!["StrongLink", "Pair", "Bridge"]),
        prop::sample::select(vec!["Stock", "Share", "Quota"]),
    )
        .prop_map(|(idx, a, b, c)| template(idx, a, b, c))
}

fn warded_program() -> impl Strategy<Value = Program> {
    program_text().prop_map(|t| parse_program(&t).expect("template must parse"))
}

/// Random multi-head Datalog-with-existentials rules for the structural
/// passes.
fn multi_head_program() -> impl Strategy<Value = Program> {
    let atom = |max_arity: usize| {
        (
            prop::sample::select(vec!["P", "Q", "R", "S"]),
            prop::collection::vec(
                prop::sample::select(vec!["x", "y", "z", "w"]),
                1..=max_arity,
            ),
        )
            .prop_map(|(p, vars)| Atom::vars(p, &vars.to_vec()))
    };
    prop::collection::vec(
        (
            prop::collection::vec(atom(3), 1..3),
            prop::collection::vec(atom(3), 1..4),
        )
            .prop_map(|(body, head)| Rule::tgd(body, head)),
        1..8,
    )
    .prop_map(Program::from_rules)
}

/// The set of predicates a program can ever derive or read (used to check
/// that rewritings do not lose user-visible predicates).
fn user_predicates(p: &Program) -> BTreeSet<Sym> {
    let mut out = BTreeSet::new();
    for r in &p.rules {
        out.extend(r.head_predicates());
    }
    out
}

// ----------------------------------------------------------------- properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Harmful-join elimination produces a program with no harmful joins,
    /// and the result of the pass is still warded.
    #[test]
    fn hje_removes_all_harmful_joins(p in warded_program()) {
        let before = analyze_program(&p);
        prop_assert!(before.is_warded(), "template must be warded");
        let outcome = eliminate_harmful_joins(&p);
        let after = analyze_program(&outcome.program);
        prop_assert_eq!(
            after.harmful_join_count(),
            0,
            "harmful joins remain after elimination"
        );
        prop_assert!(after.is_warded(), "HJE output stopped being warded");
        prop_assert!(classify(&outcome.program).is_harmless_warded);
    }

    /// HJE is a no-op (up to rule order) on programs that are already
    /// harmless: the second application changes nothing semantically
    /// relevant — in particular it never reintroduces harmful joins and
    /// never changes the rule count again.
    #[test]
    fn hje_is_idempotent_in_its_postcondition(p in warded_program()) {
        let once = eliminate_harmful_joins(&p).program;
        let twice = eliminate_harmful_joins(&once).program;
        prop_assert_eq!(analyze_program(&twice).harmful_join_count(), 0);
        prop_assert_eq!(once.rules.len(), twice.rules.len());
    }

    /// HJE preserves the user-visible head predicates: every predicate a
    /// rule could derive before is still derivable by some rule after
    /// (auxiliary predicates may be added, never removed).
    #[test]
    fn hje_preserves_user_predicates(p in warded_program()) {
        let outcome = eliminate_harmful_joins(&p);
        let before = user_predicates(&p);
        let after = user_predicates(&outcome.program);
        for pred in before {
            prop_assert!(
                after.contains(&pred),
                "predicate {} lost by harmful-join elimination",
                pred
            );
        }
    }

    /// Multiple-head elimination leaves only single-atom heads and keeps
    /// every originally derivable predicate derivable (auxiliary predicates
    /// may be introduced when head atoms share existential variables).
    #[test]
    fn multi_head_elimination_normalises(p in multi_head_program()) {
        let out = eliminate_multiple_heads(&p);
        for r in &out.rules {
            prop_assert!(r.head_atoms().len() <= 1);
        }
        let before = user_predicates(&p);
        let after = user_predicates(&out);
        for pred in before {
            prop_assert!(
                after.contains(&pred),
                "predicate {} lost by multiple-head elimination",
                pred
            );
        }
        // every original single-head rule survives verbatim
        for r in &p.rules {
            if r.head_atoms().len() <= 1 {
                prop_assert!(out.rules.contains(r));
            }
        }
    }

    /// Existential isolation establishes the Algorithm 1 precondition:
    /// existential quantification appears only in linear rules.
    #[test]
    fn existential_isolation_precondition(p in multi_head_program()) {
        let single_head = eliminate_multiple_heads(&p);
        let out = isolate_existentials(&single_head);
        for r in &out.rules {
            if r.has_existentials() {
                prop_assert!(
                    r.is_linear(),
                    "rule with existentials is not linear after isolation: {}",
                    r
                );
            }
        }
    }

    /// The full preparation pipeline establishes every normal-form property
    /// at once: no harmful joins, no multi-atom heads, existentials only in
    /// linear rules, and the program is still inside the supported fragment.
    #[test]
    fn prepare_for_execution_establishes_normal_form(p in warded_program()) {
        let out = prepare_for_execution(&p);
        let analysis = analyze_program(&out);
        prop_assert_eq!(analysis.harmful_join_count(), 0);
        for r in &out.rules {
            prop_assert!(r.head_atoms().len() <= 1 || !r.is_tgd());
            if r.has_existentials() {
                prop_assert!(r.is_linear());
            }
        }
        prop_assert!(classify(&out).is_supported());
    }

    /// Preparation keeps inline facts and annotations untouched.
    #[test]
    fn prepare_keeps_facts_and_annotations(p in warded_program()) {
        let mut with_extras = p.clone();
        with_extras.add_fact(Fact::new("Company", vec![Value::str("hsbc")]));
        with_extras.add_annotation(Annotation::new(AnnotationKind::Output, "StrongLink", vec![]));
        let out = prepare_for_execution(&with_extras);
        for f in &with_extras.facts {
            prop_assert!(out.facts.contains(f));
        }
        for a in &with_extras.annotations {
            prop_assert!(out.annotations.contains(a));
        }
    }
}
