//! # vadalog-server
//!
//! A concurrent reasoning server over one shared knowledge graph: many
//! callers submit query atoms and fact appends against a single
//! [`vadalog_engine::QuerySession`], served by a bounded pool of worker
//! threads. The paper presents Vadalog as the reasoning core *service* of a
//! larger KGMS — this crate is that service boundary for the reproduction.
//!
//! The design is three pieces:
//!
//! * **One session, many forks.** The server opens one session over the
//!   program and [`QuerySession::fork`]s it once per worker. Forks share
//!   the layered EDB base, the compiled-plan cache, the ensure-index memos
//!   and — the perf headline — the *magic-cone derivation cache*: a cone
//!   derived by any worker is a cache hit for every later query of that
//!   shape (exact repeats return it verbatim; more-bound queries are
//!   answered by subsumption filtering). Reads run against copy-on-write
//!   overlays and never block appends; appends promote new immutable base
//!   layers and invalidate exactly the cones they can reach.
//! * **Admission control.** The submission queue is bounded
//!   ([`ServerConfig::queue_cap`]): a submit against a full queue is shed
//!   *immediately* with a typed [`Response::Overloaded`] — no work is
//!   queued that the server has no capacity to absorb. Every accepted
//!   request carries a deadline ([`ServerConfig::timeout`]); a worker that
//!   dequeues an expired request sheds it with [`Response::TimedOut`]
//!   rather than burning reasoning time on an answer nobody is waiting
//!   for. Shedding is graceful: the caller always receives a reply.
//! * **Snapshot-stamped responses.** Every answer is tagged with the
//!   [`Response::Answers::observed_stamp`] — the base layer stamp its
//!   copy-on-write snapshot was taken at. The server guarantees *snapshot
//!   isolation*: an answer with stamp `s` is exactly what a fresh session
//!   over the EDB prefix up to stamp `s` would produce (the property test
//!   in `tests/` hammers this with concurrent readers and appenders).
//!
//! On top of those, the server is built to survive partial failure:
//!
//! * **Panic isolation.** Each request executes under
//!   [`std::panic::catch_unwind`]: a panicking request costs exactly that
//!   request — the caller receives a typed [`Response::WorkerPanicked`],
//!   the worker discards its possibly-tainted session handle, re-forks a
//!   fresh one off the shared core (the "respawn";
//!   [`ServerStats::worker_respawns`] counts them) and keeps serving. A
//!   panic that poisoned the shared core's mutex is **healed deliberately**
//!   by the engine on the next lock: the base stamp is bumped so every memo
//!   keyed to possibly-half-mutated state is invalidated
//!   ([`ServerStats::poison_heals`]).
//! * **Durability.** [`ReasoningServer::recover`] opens the shared session
//!   over a write-ahead log: every accepted append is fsync'd before its
//!   promotion is acknowledged, and a restart replays the log into a
//!   bit-identical session (see `vadalog_engine::QuerySession::recover`).
//!   Shutdown persists the warm measured-cost table alongside the log so
//!   the next incarnation starts warm.
//! * **Per-client fairness.** [`ReasoningServer::submit_from`] tags each
//!   request with a client id; one client may only hold
//!   [`ServerConfig::client_quota`] queue slots, so a hot client is shed
//!   with [`Response::Overloaded`] instead of starving everyone else.
//!
//! ```
//! use vadalog_server::{ReasoningServer, Request, Response, ServerConfig};
//! use vadalog_model::prelude::*;
//!
//! let program = vadalog_parser::parse_program(
//!     "Edge(\"a\", \"b\"). Edge(\"b\", \"c\").\n\
//!      Edge(x, y) -> Reach(x, y).\n\
//!      Reach(x, y), Edge(y, z) -> Reach(x, z).\n\
//!      @output(\"Reach\").",
//! )
//! .unwrap();
//! let server = ReasoningServer::start(&program, ServerConfig::default()).unwrap();
//! let query = Atom {
//!     predicate: intern("Reach"),
//!     terms: vec![Term::Const(Value::str("a")), Term::var("y")],
//! };
//! match server.submit(Request::Query(query)).recv() {
//!     Response::Answers { answers, .. } => assert_eq!(answers.len(), 2),
//!     other => panic!("unexpected: {other:?}"),
//! }
//! server.shutdown();
//! ```

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vadalog_engine::{QuerySession, Reasoner, ReasonerError, ReasonerOptions, RecoveryReport};
use vadalog_fault as fault;
use vadalog_model::{Atom, Fact, Program};

/// Configuration of a [`ReasoningServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (each owns a fork of the shared session). `0` starts
    /// no workers — queued requests are never executed (useful to test
    /// admission control and shutdown shedding deterministically).
    pub workers: usize,
    /// Maximum requests waiting in the submission queue. A submit against
    /// a full queue is shed with [`Response::Overloaded`]. `0` sheds every
    /// request (useful to test admission control).
    pub queue_cap: usize,
    /// Per-request queueing deadline: a request still queued after this
    /// long is shed with [`Response::TimedOut`] instead of being executed.
    pub timeout: Duration,
    /// Maximum queue slots any one client (as tagged by
    /// [`ReasoningServer::submit_from`]) may hold at once; an over-quota
    /// client is shed with [`Response::Overloaded`] while other clients'
    /// requests are still admitted. `0` disables the per-client bound.
    pub client_quota: usize,
    /// Reasoner options for the shared session (parallelism, cone cache,
    /// compaction threshold, ...).
    pub options: ReasonerOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_cap: 128,
            timeout: Duration::from_secs(30),
            client_quota: 32,
            options: ReasonerOptions::default(),
        }
    }
}

/// One request against the shared knowledge graph.
#[derive(Clone, Debug)]
pub enum Request {
    /// Answer a query atom (constants bound, variables free).
    Query(Atom),
    /// Append ground EDB facts (promoted as one new base layer).
    Append(Vec<Fact>),
}

/// The server's reply to one request. Every submitted request receives
/// exactly one response — shed requests included.
#[derive(Clone, Debug)]
pub enum Response {
    /// The answers to a query, **sorted canonically** (concurrent servers
    /// make run order meaningless across workers).
    Answers {
        answers: Vec<Fact>,
        /// Whether the magic-sets rewrite answered the query (vs the
        /// bottom-up fallback).
        used_magic_sets: bool,
        /// The base layer stamp the answer's snapshot observed: the answer
        /// equals a fresh session over exactly the appends promoted at or
        /// before this stamp.
        observed_stamp: u64,
    },
    /// An append was applied (or was a complete duplicate: `appended` 0).
    Appended {
        appended: usize,
        duplicates: usize,
        /// The base stamp after this append; responses observing a stamp
        /// `>= this` reflect the appended facts.
        stamp: u64,
    },
    /// Shed at submission: the queue was at capacity.
    Overloaded {
        /// Queue depth observed at submission.
        queue_depth: usize,
    },
    /// Shed at dequeue: the request out-waited its deadline.
    TimedOut {
        /// How long the request sat in the queue.
        waited: Duration,
    },
    /// The worker executing this request **panicked**. The panic cost
    /// exactly this request: it was caught, the worker re-forked a fresh
    /// session handle and kept serving, and any mutex poison left on the
    /// shared core is healed (memos invalidated via the stamp) on the next
    /// lock. See [`ServerStats::worker_panics`] /
    /// [`ServerStats::worker_respawns`].
    WorkerPanicked {
        /// The panic payload, when it was a string (the common case).
        message: String,
    },
    /// Shed at shutdown: the request was still queued when
    /// [`ReasoningServer::shutdown`] drained the queue — it was never
    /// executed.
    ShedAtShutdown,
    /// The reply channel dropped without any response being sent — the
    /// serving thread vanished mid-request (process teardown, a worker
    /// killed externally). Distinct from [`Response::ShedAtShutdown`] (an
    /// orderly drain) and [`Response::WorkerPanicked`] (a caught panic):
    /// this is the "no one will ever reply" case.
    Disconnected,
    /// The request failed (non-ground append, unsupported fragment, ...).
    Error(String),
}

/// Handle to one submitted request's eventual [`Response`].
pub struct Ticket {
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Block until the response arrives. Every path through the server
    /// replies with a typed response — a worker panic as
    /// [`Response::WorkerPanicked`], a shutdown drain as
    /// [`Response::ShedAtShutdown`] — so a dropped channel with no reply at
    /// all means the serving side is gone: [`Response::Disconnected`].
    pub fn recv(self) -> Response {
        self.rx.recv().unwrap_or(Response::Disconnected)
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> Option<Response> {
        self.rx.try_recv().ok()
    }
}

struct Job {
    request: Request,
    reply: mpsc::Sender<Response>,
    /// Client id the request was submitted under (0 for untagged
    /// [`ReasoningServer::submit`] calls), for the per-client queue quota.
    client: u64,
    enqueued: Instant,
    deadline: Instant,
}

/// The submission queue plus its per-client occupancy, guarded together: a
/// client's count is incremented at admission and decremented when its job
/// leaves the queue (dequeue or shutdown drain), so the quota bounds *queued*
/// requests, not lifetime submissions.
#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    per_client: HashMap<u64, usize>,
}

impl QueueState {
    fn pop(&mut self) -> Option<Job> {
        let job = self.jobs.pop_front()?;
        if let Some(count) = self.per_client.get_mut(&job.client) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                self.per_client.remove(&job.client);
            }
        }
        Some(job)
    }
}

/// Queue-depth histogram buckets: depths `0, 1, 2-3, 4-7, 8-15, >=16`
/// observed at submission time.
pub const QUEUE_DEPTH_BUCKETS: usize = 6;

fn depth_bucket(depth: usize) -> usize {
    match depth {
        0 => 0,
        1 => 1,
        2..=3 => 2,
        4..=7 => 3,
        8..=15 => 4,
        _ => 5,
    }
}

/// Label for bucket `i` of [`ServerStats::queue_depth_hist`].
pub fn depth_bucket_label(i: usize) -> &'static str {
    ["0", "1", "2-3", "4-7", "8-15", "16+"][i]
}

#[derive(Default)]
struct Counters {
    answered: AtomicU64,
    appends: AtomicU64,
    shed_overload: AtomicU64,
    shed_client_quota: AtomicU64,
    shed_timeout: AtomicU64,
    shed_shutdown: AtomicU64,
    errors: AtomicU64,
    worker_panics: AtomicU64,
    worker_respawns: AtomicU64,
    max_queue_depth: AtomicUsize,
    queue_depth_hist: [AtomicU64; QUEUE_DEPTH_BUCKETS],
}

/// A point-in-time statistics snapshot of a running server: the admission
/// control counters plus the shared session's cache counters.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Queries answered (cone-cache hits included).
    pub answered: u64,
    /// Appends applied.
    pub appends: u64,
    /// Requests shed at submission (queue full).
    pub shed_overload: u64,
    /// Requests shed at submission because their client was over its
    /// [`ServerConfig::client_quota`] share of the queue.
    pub shed_client_quota: u64,
    /// Requests shed at dequeue (deadline expired while queued).
    pub shed_timeout: u64,
    /// Requests still queued when shutdown drained the queue.
    pub shed_shutdown: u64,
    /// Requests that failed.
    pub errors: u64,
    /// Requests whose execution panicked (each cost exactly one request).
    pub worker_panics: u64,
    /// Fresh session forks taken by workers after a panic — capacity is
    /// never permanently lost to a panicking request.
    pub worker_respawns: u64,
    /// Times a panic poisoned the shared core and the next locker healed it
    /// (stamp bumped, memos invalidated) — see
    /// `vadalog_engine::QuerySession::poison_heals`.
    pub poison_heals: u64,
    /// Deepest queue observed at any submission.
    pub max_queue_depth: usize,
    /// Queue depth at submission, bucketed — see [`depth_bucket_label`].
    pub queue_depth_hist: [u64; QUEUE_DEPTH_BUCKETS],
    /// Cone-cache exact hits across all workers.
    pub cone_hits: u64,
    /// Cone-cache subsumption hits across all workers.
    pub cone_subsumption_hits: u64,
    /// Cone-cache misses (queries that derived their cone).
    pub cone_misses: u64,
    /// Cone entries dropped by append invalidation.
    pub cone_invalidations: u64,
    /// Cone entries evicted by the LRU cap/bytes budget
    /// (`VADALOG_CONE_CACHE_CAP` / `VADALOG_CONE_CACHE_BYTES`).
    pub cone_evictions: u64,
    /// Cone entries currently cached.
    pub cone_entries: usize,
    /// Estimated bytes currently held by the cone cache.
    pub cone_approx_bytes: usize,
    /// Whether a write-ahead log is attached (appends are durable).
    pub wal_attached: bool,
    /// Hits in the (predicate, adornment) compiled-plan cache.
    pub compile_cache_hits: u64,
    /// Relations compacted back to a single layer.
    pub compactions: usize,
    /// Current base layer stamp (number of promoted append batches).
    pub base_stamp: u64,
    /// Current base layer chain depth.
    pub base_layers: usize,
}

struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    shutdown: Mutex<bool>,
    counters: Counters,
}

/// The concurrent reasoning server — see the [module docs](self).
pub struct ReasoningServer {
    shared: Arc<Shared>,
    /// A fork of the shared session kept by the server handle itself, for
    /// statistics snapshots (all counters live in the shared core).
    session: QuerySession,
    config: ServerConfig,
    workers: Vec<JoinHandle<()>>,
}

impl ReasoningServer {
    /// Open the shared session over `program` and start the worker pool.
    pub fn start(
        program: &Program,
        config: ServerConfig,
    ) -> Result<ReasoningServer, ReasonerError> {
        let session = Reasoner::with_options(config.options.clone()).session(program)?;
        Ok(Self::from_session(session, config))
    }

    /// Open the shared session over `program` **and the write-ahead log at
    /// `wal_path`**, replaying any durable appends from a previous
    /// incarnation (bit-identical recovery — see
    /// [`QuerySession::recover`]), then start the worker pool. Subsequent
    /// accepted appends are fsync'd to the log before their promotion is
    /// acknowledged, and [`ReasoningServer::shutdown`] persists the warm
    /// measured-cost table alongside the log.
    pub fn recover(
        program: &Program,
        config: ServerConfig,
        wal_path: &Path,
    ) -> Result<(ReasoningServer, RecoveryReport), ReasonerError> {
        let (session, report) = QuerySession::recover(program, config.options.clone(), wal_path)?;
        Ok((Self::from_session(session, config), report))
    }

    fn from_session(session: QuerySession, config: ServerConfig) -> ReasoningServer {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            shutdown: Mutex::new(false),
            counters: Counters::default(),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                // Fork *before* spawning: the fork shares the session core,
                // the worker owns its handle (and its live instance).
                let fork = session.fork();
                std::thread::spawn(move || worker_loop(shared, fork))
            })
            .collect();
        ReasoningServer {
            shared,
            session,
            config,
            workers,
        }
    }

    /// Submit a request. Returns immediately with a [`Ticket`] for the
    /// eventual response; admission control may already have shed the
    /// request (the ticket then holds [`Response::Overloaded`]).
    ///
    /// Equivalent to [`ReasoningServer::submit_from`] with client id `0`.
    pub fn submit(&self, request: Request) -> Ticket {
        self.submit_from(0, request)
    }

    /// Submit a request on behalf of `client`. Admission control sheds the
    /// request with [`Response::Overloaded`] if the queue is full **or** if
    /// this client already holds [`ServerConfig::client_quota`] queue slots
    /// — the per-client bound keeps one hot client from starving the rest
    /// of the queue ([`ServerStats::shed_client_quota`] counts these).
    pub fn submit_from(&self, client: u64, request: Request) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        let depth = queue.jobs.len();
        let c = &self.shared.counters;
        c.queue_depth_hist[depth_bucket(depth)].fetch_add(1, Ordering::Relaxed);
        c.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
        if depth >= self.config.queue_cap {
            drop(queue);
            c.shed_overload.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(Response::Overloaded { queue_depth: depth });
            return Ticket { rx };
        }
        if self.config.client_quota > 0
            && queue.per_client.get(&client).copied().unwrap_or(0) >= self.config.client_quota
        {
            drop(queue);
            c.shed_client_quota.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(Response::Overloaded { queue_depth: depth });
            return Ticket { rx };
        }
        *queue.per_client.entry(client).or_insert(0) += 1;
        queue.jobs.push_back(Job {
            request,
            reply: tx,
            client,
            enqueued: now,
            deadline: now + self.config.timeout,
        });
        drop(queue);
        self.shared.available.notify_one();
        Ticket { rx }
    }

    /// Convenience: submit-and-wait.
    pub fn call(&self, request: Request) -> Response {
        self.submit(request).recv()
    }

    /// A statistics snapshot: admission counters plus the shared session's
    /// cache counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        let mut hist = [0u64; QUEUE_DEPTH_BUCKETS];
        for (out, bucket) in hist.iter_mut().zip(&c.queue_depth_hist) {
            *out = bucket.load(Ordering::Relaxed);
        }
        ServerStats {
            answered: c.answered.load(Ordering::Relaxed),
            appends: c.appends.load(Ordering::Relaxed),
            shed_overload: c.shed_overload.load(Ordering::Relaxed),
            shed_client_quota: c.shed_client_quota.load(Ordering::Relaxed),
            shed_timeout: c.shed_timeout.load(Ordering::Relaxed),
            shed_shutdown: c.shed_shutdown.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
            worker_respawns: c.worker_respawns.load(Ordering::Relaxed),
            poison_heals: self.session.poison_heals(),
            max_queue_depth: c.max_queue_depth.load(Ordering::Relaxed),
            queue_depth_hist: hist,
            cone_hits: self.session.cone_cache_hits(),
            cone_subsumption_hits: self.session.cone_cache_subsumption_hits(),
            cone_misses: self.session.cone_cache_misses(),
            cone_invalidations: self.session.cone_cache_invalidations(),
            cone_evictions: self.session.cone_cache_evictions(),
            cone_entries: self.session.cone_cache_entries(),
            cone_approx_bytes: self.session.cone_cache_approx_bytes(),
            wal_attached: self.session.wal_attached(),
            compile_cache_hits: self.session.magic_compile_cache_hits(),
            compactions: self.session.compactions(),
            base_stamp: self.session.base_stamp(),
            base_layers: self.session.base_layers(),
        }
    }

    /// Orderly shutdown: workers finish their in-flight request, queued
    /// requests are shed with a typed [`Response::ShedAtShutdown`] reply,
    /// all threads are joined, and — when a write-ahead log is attached —
    /// the warm measured-cost table is persisted alongside the log so the
    /// next incarnation starts warm.
    pub fn shutdown(mut self) {
        {
            let mut down = self
                .shared
                .shutdown
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            *down = true;
        }
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Best-effort cross-restart warmth; shutdown itself never fails.
        let _ = self.session.persist_warm_costs();
        // Reply to anything still queued: an orderly drain, typed so the
        // caller can distinguish it from a vanished server.
        let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        while let Some(job) = queue.pop() {
            self.shared
                .counters
                .shed_shutdown
                .fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Response::ShedAtShutdown);
        }
    }
}

fn worker_loop(shared: Arc<Shared>, mut session: QuerySession) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(job) = queue.pop() {
                    break Some(job);
                }
                if *shared.shutdown.lock().unwrap_or_else(|p| p.into_inner()) {
                    break None;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(|p| p.into_inner());
                queue = guard;
            }
        };
        let Some(job) = job else { return };
        let now = Instant::now();
        if now > job.deadline {
            shared.counters.shed_timeout.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Response::TimedOut {
                waited: now - job.enqueued,
            });
            continue;
        }
        let Job { request, reply, .. } = job;
        // Panic isolation: a panicking request costs exactly this request.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // The dispatch fault point models "this request's execution
            // blows up": any armed action becomes a panic here.
            if let Err(e) = fault::point("server.dispatch") {
                panic!("injected fault: {e}");
            }
            execute(&mut session, request, &shared.counters)
        }));
        match outcome {
            Ok(response) => {
                let _ = reply.send(response);
            }
            Err(payload) => {
                shared
                    .counters
                    .worker_panics
                    .fetch_add(1, Ordering::Relaxed);
                // Respawn before replying: discard the possibly-tainted
                // handle and re-fork off the shared core — forking locks the
                // core, so a mutex poisoned by this panic is healed right
                // here (stamp bump, memo invalidation) before the caller
                // sees the response or the worker takes another job.
                session = session.fork();
                shared
                    .counters
                    .worker_respawns
                    .fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Response::WorkerPanicked {
                    message: panic_message(payload.as_ref()),
                });
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn execute(session: &mut QuerySession, request: Request, counters: &Counters) -> Response {
    match request {
        Request::Query(atom) => match session.query(&atom) {
            Ok(result) => {
                counters.answered.fetch_add(1, Ordering::Relaxed);
                let mut answers = result.answers;
                answers.sort();
                Response::Answers {
                    answers,
                    used_magic_sets: result.used_magic_sets,
                    observed_stamp: result.run.stats.base_stamp,
                }
            }
            Err(e) => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
                Response::Error(e.to_string())
            }
        },
        Request::Append(facts) => match session.append_facts(facts) {
            Ok(report) => {
                counters.appends.fetch_add(1, Ordering::Relaxed);
                Response::Appended {
                    appended: report.appended,
                    duplicates: report.duplicates,
                    stamp: report.stamp,
                }
            }
            Err(e) => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
                Response::Error(e.to_string())
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::prelude::*;

    fn chain_src(n: usize) -> String {
        let mut src = String::from(
            "Edge(x, y) -> Reach(x, y).\n\
             Reach(x, y), Edge(y, z) -> Reach(x, z).\n\
             @output(\"Reach\").\n",
        );
        for i in 0..n {
            src.push_str(&format!("Edge(\"n{i}\", \"n{}\").\n", i + 1));
        }
        src
    }

    fn reach(source: &str) -> Atom {
        Atom {
            predicate: intern("Reach"),
            terms: vec![Term::Const(Value::str(source)), Term::var("y")],
        }
    }

    #[test]
    fn answers_queries_and_reflects_appends() {
        let program = vadalog_parser::parse_program(&chain_src(4)).unwrap();
        let server = ReasoningServer::start(&program, ServerConfig::default()).unwrap();
        let Response::Answers {
            answers,
            used_magic_sets,
            observed_stamp,
        } = server.call(Request::Query(reach("n0")))
        else {
            panic!("expected answers")
        };
        assert_eq!(answers.len(), 4);
        assert!(used_magic_sets);
        assert_eq!(observed_stamp, 0);

        let Response::Appended {
            appended, stamp, ..
        } = server.call(Request::Append(vec![Fact::new(
            "Edge",
            vec![Value::str("n4"), Value::str("n5")],
        )]))
        else {
            panic!("expected append report")
        };
        assert_eq!((appended, stamp), (1, 1));

        let Response::Answers {
            answers,
            observed_stamp,
            ..
        } = server.call(Request::Query(reach("n0")))
        else {
            panic!("expected answers")
        };
        assert_eq!(answers.len(), 5, "append must be visible");
        assert_eq!(observed_stamp, 1);
        let stats = server.stats();
        assert_eq!(stats.answered, 2);
        assert_eq!(stats.appends, 1);
        assert_eq!(stats.base_stamp, 1);
        server.shutdown();
    }

    #[test]
    fn repeat_queries_hit_the_shared_cone_cache() {
        let program = vadalog_parser::parse_program(&chain_src(6)).unwrap();
        let server = ReasoningServer::start(
            &program,
            ServerConfig {
                workers: 3,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let first = server.call(Request::Query(reach("n0")));
        // repeats land on arbitrary workers; all of them share the cone
        for _ in 0..8 {
            let again = server.call(Request::Query(reach("n0")));
            match (&first, &again) {
                (Response::Answers { answers: a, .. }, Response::Answers { answers: b, .. }) => {
                    assert_eq!(a, b)
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
        let stats = server.stats();
        assert_eq!(stats.answered, 9);
        assert_eq!(stats.cone_misses, 1, "one derivation serves all workers");
        assert_eq!(stats.cone_hits, 8);
        server.shutdown();
    }

    #[test]
    fn zero_capacity_sheds_every_request_as_overloaded() {
        let program = vadalog_parser::parse_program(&chain_src(3)).unwrap();
        let server = ReasoningServer::start(
            &program,
            ServerConfig {
                queue_cap: 0,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        match server.call(Request::Query(reach("n0"))) {
            Response::Overloaded { queue_depth } => assert_eq!(queue_depth, 0),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(server.stats().shed_overload, 1);
        server.shutdown();
    }

    #[test]
    fn expired_deadlines_are_shed_as_timeouts() {
        let program = vadalog_parser::parse_program(&chain_src(3)).unwrap();
        let server = ReasoningServer::start(
            &program,
            ServerConfig {
                workers: 1,
                timeout: Duration::ZERO,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        // A zero deadline has always expired by dequeue time.
        match server.call(Request::Query(reach("n0"))) {
            Response::TimedOut { .. } => {}
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(server.stats().shed_timeout, 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_sheds_queued_requests_with_a_typed_response() {
        let program = vadalog_parser::parse_program(&chain_src(3)).unwrap();
        // No workers: submissions queue and are never executed, so the
        // shutdown drain is deterministic.
        let server = ReasoningServer::start(
            &program,
            ServerConfig {
                workers: 0,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let tickets: Vec<Ticket> = (0..3)
            .map(|_| server.submit(Request::Query(reach("n0"))))
            .collect();
        server.shutdown();
        for ticket in tickets {
            match ticket.recv() {
                Response::ShedAtShutdown => {}
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn hot_clients_are_bounded_by_the_per_client_quota() {
        let program = vadalog_parser::parse_program(&chain_src(3)).unwrap();
        // No workers: the queue only fills, so admission decisions are
        // deterministic.
        let server = ReasoningServer::start(
            &program,
            ServerConfig {
                workers: 0,
                queue_cap: 8,
                client_quota: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        // A hot client hammers the queue: only `client_quota` slots stick.
        let hot: Vec<Ticket> = (0..5)
            .map(|_| server.submit_from(1, Request::Query(reach("n0"))))
            .collect();
        let shed = hot
            .iter()
            .filter(|t| matches!(t.try_recv(), Some(Response::Overloaded { .. })))
            .count();
        assert_eq!(shed, 3, "3 of 5 must be shed over-quota");
        assert_eq!(server.stats().shed_client_quota, 3);
        assert_eq!(server.stats().shed_overload, 0, "queue itself never filled");
        // Another client is still admitted despite the hot one.
        let other = server.submit_from(2, Request::Query(reach("n0")));
        assert!(
            other.try_recv().is_none(),
            "client 2 must be queued, not shed"
        );
        server.shutdown();
    }

    #[test]
    fn quota_slots_are_returned_when_jobs_leave_the_queue() {
        let program = vadalog_parser::parse_program(&chain_src(3)).unwrap();
        let server = ReasoningServer::start(
            &program,
            ServerConfig {
                workers: 1,
                queue_cap: 8,
                client_quota: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        // Sequential calls never hold more than one slot at a time, so a
        // quota of 1 sheds nothing: the slot is released at dequeue.
        for _ in 0..4 {
            match server.submit_from(7, Request::Query(reach("n0"))).recv() {
                Response::Answers { answers, .. } => assert_eq!(answers.len(), 3),
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert_eq!(server.stats().shed_client_quota, 0);
        server.shutdown();
    }

    #[test]
    fn a_dropped_reply_channel_reads_as_disconnected() {
        // Simulate the serving side vanishing without any reply: the ticket
        // must report Disconnected, not panic.
        let (tx, rx) = mpsc::channel::<Response>();
        drop(tx);
        let ticket = Ticket { rx };
        match ticket.recv() {
            Response::Disconnected => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn non_ground_appends_reply_with_a_typed_error() {
        let program = vadalog_parser::parse_program(&chain_src(2)).unwrap();
        let server = ReasoningServer::start(&program, ServerConfig::default()).unwrap();
        let bad = Fact::new_sym(
            intern("Edge"),
            vec![Value::str("a"), Value::Null(NullId(1))],
        );
        match server.call(Request::Append(vec![bad])) {
            Response::Error(msg) => assert!(msg.contains("ground"), "got: {msg}"),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(server.stats().errors, 1);
        server.shutdown();
    }
}
