//! Fault-injected server tests: panic isolation, worker respawn, and
//! deliberate healing of a poisoned shared core.
//!
//! Every test arms a [`vadalog_fault::Scenario`] for its entire body; the
//! scenario guard holds the global fault lock, so the tests in this binary
//! serialise and never observe one another's armed rules. Armed fault
//! points are process-global, which is why these tests live in their own
//! integration binary rather than the library test module.

use vadalog_fault as fault;
use vadalog_model::prelude::*;
use vadalog_model::Atom;
use vadalog_server::{ReasoningServer, Request, Response, ServerConfig};

fn chain_src(n: usize) -> String {
    let mut src = String::from(
        "Edge(x, y) -> Reach(x, y).\n\
         Reach(x, y), Edge(y, z) -> Reach(x, z).\n\
         @output(\"Reach\").\n",
    );
    for i in 0..n {
        src.push_str(&format!("Edge(\"n{i}\", \"n{}\").\n", i + 1));
    }
    src
}

fn reach(source: &str) -> Atom {
    Atom {
        predicate: intern("Reach"),
        terms: vec![Term::Const(Value::str(source)), Term::var("y")],
    }
}

fn edge(i: usize) -> Fact {
    Fact::new(
        "Edge",
        vec![
            Value::str(&format!("n{i}")),
            Value::str(&format!("n{}", i + 1)),
        ],
    )
}

/// A panicking request costs exactly that request: the caller gets a typed
/// [`Response::WorkerPanicked`], the (only) worker respawns, and the very
/// next request is answered normally.
#[test]
fn a_panicking_request_costs_exactly_one_request() {
    let _scenario = fault::Scenario::arm().fail_at("server.dispatch", 0, fault::Action::Panic);
    let program = vadalog_parser::parse_program(&chain_src(3)).unwrap();
    let server = ReasoningServer::start(
        &program,
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    match server.call(Request::Query(reach("n0"))) {
        Response::WorkerPanicked { message } => {
            assert!(message.contains("injected crash"), "got: {message}")
        }
        other => panic!("unexpected: {other:?}"),
    }
    // With a single worker, an answer to the next request proves the pool
    // respawned rather than losing its only thread.
    match server.call(Request::Query(reach("n0"))) {
        Response::Answers { answers, .. } => assert_eq!(answers.len(), 3),
        other => panic!("unexpected: {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.worker_respawns, 1);
    assert_eq!(stats.answered, 1);
    server.shutdown();
}

/// A panic in the middle of a layer promotion poisons the shared core; the
/// respawning worker heals it (stamp bump, memo invalidation) and the
/// server keeps answering — and the retried append then succeeds.
#[test]
fn a_mid_promotion_panic_is_healed_and_the_server_keeps_answering() {
    let _scenario = fault::Scenario::arm().fail_at("session.promote", 0, fault::Action::Panic);
    let program = vadalog_parser::parse_program(&chain_src(3)).unwrap();
    let server = ReasoningServer::start(
        &program,
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    match server.call(Request::Append(vec![edge(3)])) {
        Response::WorkerPanicked { .. } => {}
        other => panic!("unexpected: {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.worker_respawns, 1);
    assert_eq!(stats.poison_heals, 1, "respawn must heal the poisoned core");
    // The panicked append was not applied; queries still answer on the
    // pre-append EDB (the heal bumped the stamp to drop stale memos).
    match server.call(Request::Query(reach("n0"))) {
        Response::Answers {
            answers,
            observed_stamp,
            ..
        } => {
            assert_eq!(answers.len(), 3);
            assert_eq!(observed_stamp, 1, "heal bumps the stamp");
        }
        other => panic!("unexpected: {other:?}"),
    }
    // Retrying the append (hit 0 is consumed) succeeds.
    match server.call(Request::Append(vec![edge(3)])) {
        Response::Appended { appended, .. } => assert_eq!(appended, 1),
        other => panic!("unexpected: {other:?}"),
    }
    match server.call(Request::Query(reach("n0"))) {
        Response::Answers { answers, .. } => assert_eq!(answers.len(), 4),
        other => panic!("unexpected: {other:?}"),
    }
    server.shutdown();
}

/// A WAL write failure surfaces as a typed error response — not a panic —
/// and leaves the durable session unchanged, so the retry succeeds.
#[test]
fn a_wal_append_failure_is_a_typed_error_not_a_crash() {
    let _scenario = fault::Scenario::arm().fail_at("wal.append", 0, fault::Action::Error);
    let path =
        std::env::temp_dir().join(format!("vadalog-server-fault-wal-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(vadalog_storage::costs_path(&path));
    let program = vadalog_parser::parse_program(&chain_src(3)).unwrap();
    let (server, report) = ReasoningServer::recover(
        &program,
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
        &path,
    )
    .unwrap();
    assert_eq!(report.batches_replayed, 0);
    assert!(server.stats().wal_attached);
    match server.call(Request::Append(vec![edge(3)])) {
        Response::Error(msg) => assert!(msg.contains("injected fault"), "got: {msg}"),
        other => panic!("unexpected: {other:?}"),
    }
    match server.call(Request::Append(vec![edge(3)])) {
        Response::Appended {
            appended, stamp, ..
        } => assert_eq!((appended, stamp), (1, 1)),
        other => panic!("unexpected: {other:?}"),
    }
    server.shutdown();
    // The next incarnation replays exactly the one durable append.
    let (server, report) =
        ReasoningServer::recover(&program, ServerConfig::default(), &path).unwrap();
    assert_eq!(report.batches_replayed, 1);
    match server.call(Request::Query(reach("n0"))) {
        Response::Answers { answers, .. } => assert_eq!(answers.len(), 4),
        other => panic!("unexpected: {other:?}"),
    }
    server.shutdown();
}
