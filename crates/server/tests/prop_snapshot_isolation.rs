//! Snapshot-isolation property test: hammer a [`ReasoningServer`] with a
//! random interleaving of concurrent queries and appends, then verify every
//! answer is **byte-identical** (after canonical sorting) to a fresh
//! session over exactly the EDB prefix its `observed_stamp` names.
//!
//! The oracle construction relies on two server guarantees:
//! * every append batch here is globally unique (per-batch node
//!   namespaces), so each batch promotes exactly once and its
//!   [`Response::Appended`] stamp identifies its position in the promote
//!   order — stamp `k` means "the k-th promoted batch";
//! * an answer tagged `observed_stamp = s` was computed on a copy-on-write
//!   snapshot containing precisely the batches promoted at stamps
//!   `1..=s` — no torn reads of a half-promoted batch, no lost layers.
//!
//! Run with `VADALOG_PARALLELISM=1` and `=4` in CI: worker concurrency
//! (tested here at 2 and 8 workers) composes with intra-query parallelism.

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeSet;
use vadalog_model::prelude::*;
use vadalog_server::{ReasoningServer, Request, Response, ServerConfig};

fn edge(a: &str, b: &str) -> Fact {
    Fact::new("Edge", vec![Value::str(a), Value::str(b)])
}

fn chain_program(n: usize, extra: &[Fact]) -> Program {
    let mut program = vadalog_parser::parse_program(
        "Edge(x, y) -> Reach(x, y).\n\
         Reach(x, y), Edge(y, z) -> Reach(x, z).\n\
         @output(\"Reach\").",
    )
    .unwrap();
    for i in 0..n {
        program.add_fact(edge(&format!("n{i}"), &format!("n{}", i + 1)));
    }
    for f in extra {
        program.add_fact(f.clone());
    }
    program
}

fn reach(source: &str) -> Atom {
    Atom {
        predicate: intern("Reach"),
        terms: vec![Term::Const(Value::str(source)), Term::var("y")],
    }
}

/// One append batch: edges that link a chain node into the batch's own
/// node namespace and extend it — unique across batches by construction.
fn batch_facts(batch: usize, chain_n: usize, links: &[(usize, usize)]) -> Vec<Fact> {
    let mut facts = BTreeSet::new();
    for (from, len) in links {
        let entry = format!("b{batch}x0");
        facts.insert(edge(&format!("n{}", from % (chain_n + 1)), &entry));
        for j in 0..*len {
            facts.insert(edge(
                &format!("b{batch}x{j}"),
                &format!("b{batch}x{}", j + 1),
            ));
        }
    }
    facts.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn concurrent_answers_match_the_stamped_prefix_oracle(
        chain_n in 2usize..6,
        batches in prop::collection::vec(
            prop::collection::vec((0usize..8, 1usize..3), 1..3),
            1..5,
        ),
        query_sources in prop::collection::vec(0usize..10, 4..10),
        workers in prop::sample::select(vec![2usize, 8]),
        shuffle_seed in any::<u32>(),
    ) {
        let batches: Vec<Vec<Fact>> = batches
            .iter()
            .enumerate()
            .map(|(i, links)| batch_facts(i, chain_n, links))
            .collect();
        // Query sources span the chain and the batch namespaces.
        let sources: Vec<String> = query_sources
            .iter()
            .map(|s| {
                if *s <= chain_n {
                    format!("n{s}")
                } else {
                    format!("b{}x0", (*s - chain_n - 1) % batches.len().max(1))
                }
            })
            .collect();

        // Random interleaving of appends and queries.
        let mut ops: Vec<Request> = batches
            .iter()
            .map(|b| Request::Append(b.clone()))
            .chain(sources.iter().map(|s| Request::Query(reach(s))))
            .collect();
        let mut rng = StdRng::seed_from_u64(shuffle_seed as u64);
        for i in (1..ops.len()).rev() {
            ops.swap(i, rng.gen_range(0..=i));
        }

        let program = chain_program(chain_n, &[]);
        let server = ReasoningServer::start(
            &program,
            ServerConfig {
                workers,
                queue_cap: 1024,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let tickets: Vec<_> = ops.iter().map(|op| server.submit(op.clone())).collect();
        let responses: Vec<Response> = tickets.into_iter().map(Ticket::recv).collect();
        server.shutdown();

        // Reconstruct the promote order: each unique batch promoted once,
        // so its response stamp is its position in the order.
        let mut stamp_of_batch: Vec<u64> = Vec::new();
        let mut appended_batches: Vec<(u64, &Vec<Fact>)> = Vec::new();
        for (op, resp) in ops.iter().zip(&responses) {
            if let Request::Append(facts) = op {
                match resp {
                    Response::Appended { appended, stamp, .. } => {
                        prop_assert_eq!(*appended, facts.len());
                        appended_batches.push((*stamp, facts));
                        stamp_of_batch.push(*stamp);
                    }
                    other => prop_assert!(false, "append got {:?}", other),
                }
            }
        }
        let stamps: BTreeSet<u64> = stamp_of_batch.iter().copied().collect();
        prop_assert_eq!(stamps.len(), batches.len(), "each batch promotes exactly once");
        prop_assert_eq!(stamps.iter().max().copied(), Some(batches.len() as u64));

        // Oracle check: every answer equals a fresh session over the EDB
        // prefix its observed stamp names.
        for (op, resp) in ops.iter().zip(&responses) {
            let Request::Query(atom) = op else { continue };
            let Response::Answers { answers, used_magic_sets, observed_stamp } = resp else {
                prop_assert!(false, "query got {:?}", resp);
                unreachable!();
            };
            let prefix: Vec<Fact> = appended_batches
                .iter()
                .filter(|(stamp, _)| *stamp <= *observed_stamp)
                .flat_map(|(_, facts)| facts.iter().cloned())
                .collect();
            let oracle_program = chain_program(chain_n, &prefix);
            let mut oracle = vadalog_engine::Reasoner::new()
                .session(&oracle_program)
                .unwrap();
            let expected = oracle.query(atom).unwrap();
            let mut expected_answers = expected.answers;
            expected_answers.sort();
            prop_assert_eq!(
                answers,
                &expected_answers,
                "stamp {} diverges from its prefix oracle",
                observed_stamp
            );
            prop_assert_eq!(*used_magic_sets, expected.used_magic_sets);
        }
    }
}

use vadalog_server::Ticket;
