//! Fragmented buffer cache (Section 4, "Memory management").
//!
//! The paper wraps every pipeline filter in a buffer segment that caches the
//! facts the filter has produced, so that repeated `next()` pulls can be
//! served from memory ("we primarily use the buffer cache as proxies for the
//! next() calls"), with LRU/LFU eviction when a segment exceeds its budget.
//!
//! This module provides exactly that: a [`BufferCache`] of bounded capacity
//! keyed by `(segment, position)` with pluggable eviction. The engine puts
//! one segment at the disposal of each filter; the termination-strategy
//! structures and the dynamic join indices also live behind it in the paper —
//! here they share the store, and the cache tracks hit/miss statistics that
//! the engine exposes in its run statistics.

use std::collections::HashMap;
use vadalog_model::sync::Mutex;
use vadalog_model::Fact;

/// Eviction policy for a buffer segment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvictionPolicy {
    /// Evict the least recently used entry.
    Lru,
    /// Evict the least frequently used entry.
    Lfu,
}

/// Cache statistics.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CacheStats {
    /// Number of lookups served from the cache.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of entries evicted so far.
    pub evictions: u64,
}

#[derive(Debug)]
struct EntryMeta {
    fact: Fact,
    last_used: u64,
    uses: u64,
}

struct Segment {
    entries: HashMap<u64, EntryMeta>,
    capacity: usize,
}

/// A fragmented buffer cache: independent bounded segments, one per filter.
pub struct BufferCache {
    segments: Mutex<HashMap<usize, Segment>>,
    default_capacity: usize,
    policy: EvictionPolicy,
    clock: Mutex<u64>,
    stats: Mutex<CacheStats>,
}

impl BufferCache {
    /// Create a cache whose segments hold at most `segment_capacity` facts
    /// each.
    pub fn new(segment_capacity: usize, policy: EvictionPolicy) -> Self {
        BufferCache {
            segments: Mutex::new(HashMap::new()),
            default_capacity: segment_capacity.max(1),
            policy,
            clock: Mutex::new(0),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    fn tick(&self) -> u64 {
        let mut c = self.clock.lock();
        *c += 1;
        *c
    }

    /// Store the fact produced at `position` by filter `segment`.
    pub fn put(&self, segment: usize, position: u64, fact: Fact) {
        let now = self.tick();
        let mut segments = self.segments.lock();
        let seg = segments.entry(segment).or_insert_with(|| Segment {
            entries: HashMap::new(),
            capacity: self.default_capacity,
        });
        if seg.entries.len() >= seg.capacity && !seg.entries.contains_key(&position) {
            // evict according to policy
            let victim = match self.policy {
                EvictionPolicy::Lru => seg
                    .entries
                    .iter()
                    .min_by_key(|(_, m)| m.last_used)
                    .map(|(k, _)| *k),
                EvictionPolicy::Lfu => seg
                    .entries
                    .iter()
                    .min_by_key(|(_, m)| (m.uses, m.last_used))
                    .map(|(k, _)| *k),
            };
            if let Some(v) = victim {
                seg.entries.remove(&v);
                self.stats.lock().evictions += 1;
            }
        }
        seg.entries.insert(
            position,
            EntryMeta {
                fact,
                last_used: now,
                uses: 1,
            },
        );
    }

    /// Look up the fact at `position` of filter `segment`.
    pub fn get(&self, segment: usize, position: u64) -> Option<Fact> {
        let now = self.tick();
        let mut segments = self.segments.lock();
        let hit = segments.get_mut(&segment).and_then(|seg| {
            seg.entries.get_mut(&position).map(|m| {
                m.last_used = now;
                m.uses += 1;
                m.fact.clone()
            })
        });
        let mut stats = self.stats.lock();
        if hit.is_some() {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
        hit
    }

    /// Current number of entries in a segment.
    pub fn segment_len(&self, segment: usize) -> usize {
        self.segments
            .lock()
            .get(&segment)
            .map(|s| s.entries.len())
            .unwrap_or(0)
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Drop every entry of a segment (used when a filter's warded tree has
    /// been fully explored and its ground values can be released).
    pub fn clear_segment(&self, segment: usize) {
        self.segments.lock().remove(&segment);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(i: i64) -> Fact {
        Fact::new("P", vec![i.into()])
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = BufferCache::new(10, EvictionPolicy::Lru);
        cache.put(0, 1, fact(1));
        assert_eq!(cache.get(0, 1), Some(fact(1)));
        assert_eq!(cache.get(0, 2), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = BufferCache::new(2, EvictionPolicy::Lru);
        cache.put(0, 1, fact(1));
        cache.put(0, 2, fact(2));
        // touch 1 so that 2 becomes the LRU victim
        cache.get(0, 1);
        cache.put(0, 3, fact(3));
        assert_eq!(cache.segment_len(0), 2);
        assert!(cache.get(0, 1).is_some());
        assert!(cache.get(0, 2).is_none());
        assert!(cache.get(0, 3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn lfu_evicts_the_least_frequently_used() {
        let cache = BufferCache::new(2, EvictionPolicy::Lfu);
        cache.put(0, 1, fact(1));
        cache.put(0, 2, fact(2));
        cache.get(0, 1);
        cache.get(0, 1);
        cache.get(0, 2);
        cache.put(0, 3, fact(3));
        assert!(cache.get(0, 1).is_some());
        assert!(cache.get(0, 2).is_none());
    }

    #[test]
    fn segments_are_independent() {
        let cache = BufferCache::new(1, EvictionPolicy::Lru);
        cache.put(0, 1, fact(1));
        cache.put(1, 1, fact(100));
        assert_eq!(cache.get(0, 1), Some(fact(1)));
        assert_eq!(cache.get(1, 1), Some(fact(100)));
        cache.clear_segment(0);
        assert_eq!(cache.get(0, 1), None);
        assert_eq!(cache.get(1, 1), Some(fact(100)));
    }
}
