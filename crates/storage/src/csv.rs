//! CSV record managers: adapters turning external CSV files into facts and
//! materialising reasoning output, as used by `@bind("P", "csv:path")`
//! annotations (Section 4, "record managers"; test setup of Section 6 uses
//! "simple CSV archives").

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use vadalog_model::prelude::*;

/// Error raised by the CSV record manager.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A row had a different number of fields than the first row.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Expected field count.
        expected: usize,
        /// Found field count.
        found: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv i/o error: {e}"),
            CsvError::RaggedRow {
                line,
                expected,
                found,
            } => write!(f, "csv row {line} has {found} fields, expected {expected}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parse one CSV field into a [`Value`]: integers and floats are recognised,
/// `true`/`false` become booleans, everything else is a string.
pub fn parse_field(field: &str) -> Value {
    let trimmed = field.trim();
    if let Ok(i) = trimmed.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = trimmed.parse::<f64>() {
        return Value::Float(f);
    }
    match trimmed {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => {
            // strip symmetric quotes if present
            let unquoted = trimmed
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .unwrap_or(trimmed);
            Value::str(unquoted)
        }
    }
}

fn split_row(line: &str) -> Vec<String> {
    // Minimal CSV splitting with support for double-quoted fields containing
    // commas.
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    fields.push(current);
    fields
}

/// Read a CSV file into facts of `predicate`.
///
/// `has_header`: when `true` the first row is skipped (and ignored — the
/// Vadalog perspective is positional; `@mapping` handles naming).
pub fn read_csv_facts(
    path: impl AsRef<Path>,
    predicate: &str,
    has_header: bool,
) -> Result<Vec<Fact>, CsvError> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    read_csv_from_reader(reader, predicate, has_header)
}

/// Read CSV facts from any reader (used by tests and in-memory sources).
pub fn read_csv_from_reader<R: BufRead>(
    reader: R,
    predicate: &str,
    has_header: bool,
) -> Result<Vec<Fact>, CsvError> {
    let mut facts = Vec::new();
    let mut expected: Option<usize> = None;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if has_header && i == 0 {
            continue;
        }
        let fields = split_row(&line);
        match expected {
            None => expected = Some(fields.len()),
            Some(n) if n != fields.len() => {
                return Err(CsvError::RaggedRow {
                    line: i + 1,
                    expected: n,
                    found: fields.len(),
                })
            }
            _ => {}
        }
        let args = fields.iter().map(|f| parse_field(f)).collect();
        facts.push(Fact::new(predicate, args));
    }
    Ok(facts)
}

/// Serialise one value as a CSV field.
pub fn format_field(v: &Value) -> String {
    match v {
        Value::Str(s) => {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        Value::Null(n) => format!("_:{n}"),
        other => other.to_string(),
    }
}

/// Write facts (all of the same arity) to a CSV file.
pub fn write_csv_facts(path: impl AsRef<Path>, facts: &[Fact]) -> Result<(), CsvError> {
    let mut file = std::fs::File::create(path)?;
    for f in facts {
        let row: Vec<String> = f.args.iter().map(format_field).collect();
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn reads_typed_fields() {
        let data = "acme,sub,0.6\nacme,other,1\nweird co,\"a,b\",true\n";
        let facts = read_csv_from_reader(Cursor::new(data), "Own", false).unwrap();
        assert_eq!(facts.len(), 3);
        assert_eq!(facts[0].args[2], Value::Float(0.6));
        assert_eq!(facts[1].args[2], Value::Int(1));
        assert_eq!(facts[2].args[1], Value::str("a,b"));
        assert_eq!(facts[2].args[2], Value::Bool(true));
    }

    #[test]
    fn header_row_is_skipped_when_requested() {
        let data = "comp1,comp2,w\nacme,sub,0.6\n";
        let with = read_csv_from_reader(Cursor::new(data), "Own", true).unwrap();
        assert_eq!(with.len(), 1);
        let without = read_csv_from_reader(Cursor::new(data), "Own", false).unwrap();
        assert_eq!(without.len(), 2);
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let data = "a,b,c\nx,y\n";
        let err = read_csv_from_reader(Cursor::new(data), "P", false).unwrap_err();
        match err {
            CsvError::RaggedRow {
                line,
                expected,
                found,
            } => {
                assert_eq!(line, 2);
                assert_eq!(expected, 3);
                assert_eq!(found, 2);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn round_trip_through_a_temp_file() {
        let dir = std::env::temp_dir().join("vadalog_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("own.csv");
        let facts = vec![
            Fact::new("Own", vec!["a".into(), "b".into(), Value::Float(0.5)]),
            Fact::new("Own", vec!["with, comma".into(), "c".into(), Value::Int(2)]),
        ];
        write_csv_facts(&path, &facts).unwrap();
        let back = read_csv_facts(&path, "Own", false).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].args[2], Value::Float(0.5));
        assert_eq!(back[1].args[0], Value::str("with, comma"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_lines_are_ignored() {
        let data = "a,b\n\n\nc,d\n";
        let facts = read_csv_from_reader(Cursor::new(data), "P", false).unwrap();
        assert_eq!(facts.len(), 2);
    }
}
