//! Active constant domain (`ACDom` / `Dom`) maintenance (Section 2 of the
//! paper).
//!
//! `ACDom(c)` holds for every constant `c` occurring in some database fact.
//! The `Dom` guard produced by harmful-join elimination and used around EGDs
//! and constraints restricts variable bindings to this set, keeping those
//! checks away from labelled nulls.

use std::collections::BTreeSet;
use vadalog_model::prelude::*;

/// The active constant domain of a database.
#[derive(Clone, Debug, Default)]
pub struct ActiveDomain {
    constants: BTreeSet<Value>,
}

impl ActiveDomain {
    /// Empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the domain from a set of facts (owned or borrowed), collecting
    /// every ground constant (labelled nulls are excluded by definition).
    pub fn from_facts<I>(facts: I) -> Self
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<Fact>,
    {
        use std::borrow::Borrow;
        let mut dom = Self::new();
        for f in facts {
            dom.add_fact(f.borrow());
        }
        dom
    }

    /// Record all ground constants of one fact.
    pub fn add_fact(&mut self, fact: &Fact) {
        for v in &fact.args {
            self.add_value(v);
        }
    }

    fn add_value(&mut self, v: &Value) {
        match v {
            Value::Null(_) => {}
            Value::List(vs) => {
                for v in vs {
                    self.add_value(v);
                }
            }
            Value::Set(vs) => {
                for v in vs {
                    self.add_value(v);
                }
            }
            other => {
                self.constants.insert(other.clone());
            }
        }
    }

    /// Is `v` in the active domain?
    pub fn contains(&self, v: &Value) -> bool {
        self.constants.contains(v)
    }

    /// Number of distinct constants.
    pub fn len(&self) -> usize {
        self.constants.len()
    }

    /// Is the domain empty?
    pub fn is_empty(&self) -> bool {
        self.constants.is_empty()
    }

    /// Iterate over the constants in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.constants.iter()
    }

    /// Materialise the domain as unary facts of the given predicate (the
    /// `Dom` relation consumed by rewritten rules).
    pub fn to_facts(&self, predicate: &str) -> Vec<Fact> {
        self.constants
            .iter()
            .map(|c| Fact::new(predicate, vec![c.clone()]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_constants_and_skips_nulls() {
        let facts = [
            Fact::new("Own", vec!["a".into(), "b".into(), Value::Float(0.6)]),
            Fact::new("PSC", vec!["a".into(), Value::Null(NullId(1))]),
        ];
        let dom = ActiveDomain::from_facts(facts.iter());
        assert!(dom.contains(&Value::str("a")));
        assert!(dom.contains(&Value::Float(0.6)));
        assert!(!dom.contains(&Value::Null(NullId(1))));
        assert_eq!(dom.len(), 3); // "a", "b", 0.6
    }

    #[test]
    fn composite_values_contribute_their_elements() {
        let facts = [Fact::new(
            "Groups",
            vec![Value::List(vec![Value::Int(1), Value::Int(2)])],
        )];
        let dom = ActiveDomain::from_facts(facts.iter());
        assert!(dom.contains(&Value::Int(1)));
        assert!(dom.contains(&Value::Int(2)));
    }

    #[test]
    fn to_facts_materialises_the_dom_relation() {
        let facts = [Fact::new("Company", vec!["HSBC".into()])];
        let dom = ActiveDomain::from_facts(facts.iter());
        let dom_facts = dom.to_facts("Dom");
        assert_eq!(dom_facts, vec![Fact::new("Dom", vec!["HSBC".into()])]);
    }

    #[test]
    fn incremental_updates() {
        let mut dom = ActiveDomain::new();
        assert!(dom.is_empty());
        dom.add_fact(&Fact::new("P", vec![Value::Int(3)]));
        dom.add_fact(&Fact::new("P", vec![Value::Int(3)]));
        assert_eq!(dom.len(), 1);
        assert_eq!(dom.iter().count(), 1);
    }
}
