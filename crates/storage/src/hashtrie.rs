//! On-demand hash-directory tries for atoms without a matching composite
//! sorted run.
//!
//! The leapfrog path (see [`crate::wcoj`]) walks [`TrieCursor`]s over a
//! relation's sorted-run index for the trie's column order. When no such
//! index exists — typically a layered copy-on-write relation whose shared
//! base never materialised the column list — building one via
//! [`Relation::ensure_index`] means a *base-covering* rebuild over every
//! layer's rows (counted in `Relation::full_index_builds`), and the result
//! is welded into the overlay, invisible to sibling forks of the same base.
//!
//! A [`HashTrie`] is the cheap alternative: one ephemeral `SortedRun`
//! built straight from [`Relation::iter_rows`] (projected on the trie's
//! columns, `FactId` = insertion position), whose directory doubles as the
//! hash-probe face — the same `(OrderKey, ValueId)`-sorted, `FactId`
//! tie-broken layout every index run uses. [`HashTrie::cursor`] therefore
//! hands out a standard [`TrieCursor`] with the **identical cursor
//! contract**: values enumerate in ascending pair order, leaf facts come
//! back `FactId`-ascending, and `open`/`seek`/`descend` behave exactly as
//! over an index's runs. The leapfrog output — and every counter — is
//! bit-identical whichever backend serves a trie, because both enumerate
//! the same key sets in the same order.
//!
//! Builds are deterministic (they run on the engine's sequential prepare
//! path) and cached two ways: per-pipeline by `(predicate, columns, row
//! count)`, and across the queries of a session fork family via
//! [`HashTrieCache`], keyed additionally by the session base's promotion
//! *stamp* so layer promotions and appends invalidate precisely — the
//! stamp-keyed sibling of the session's ensure-index memo.

use crate::store::{FactId, Relation, SortedRun, TrieCursor};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use vadalog_model::prelude::*;

/// A per-(relation, column-order) trie built on demand from rows — the
/// backend a leapfrog trie falls back to when the relation has no matching
/// composite sorted run. See the [module docs](self) for the contract.
#[derive(Clone, Debug)]
pub struct HashTrie {
    cols: Box<[usize]>,
    /// Relation row count at build time; a cached trie is only valid for a
    /// relation of exactly this length (rows are append-only, so equal
    /// length over the same frozen base implies equal contents).
    rows: usize,
    run: SortedRun,
}

impl HashTrie {
    /// Project `relation` on `cols` into one sorted run. Rows too narrow
    /// for the column list are skipped — they can never match a probe of
    /// this width, exactly as [`Relation::ensure_index`] skips them.
    pub fn build(relation: &Relation, cols: &[usize]) -> HashTrie {
        let rows = relation.len();
        let k = cols.len();
        let mut ids: Vec<ValueId> = Vec::new();
        let mut facts: Vec<FactId> = Vec::new();
        for (i, row) in relation.iter_rows().enumerate() {
            if cols.iter().all(|c| *c < row.len()) {
                for c in cols {
                    ids.push(row[*c]);
                }
                facts.push(FactId(i as u32));
            }
        }
        let keys: Vec<(OrderKey, ValueId)> = order_keys_of(&ids).into_iter().zip(ids).collect();
        HashTrie {
            cols: cols.into(),
            rows,
            run: SortedRun::from_entries(k, keys, facts),
        }
    }

    /// The column order this trie was built for.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// The relation row count at build time (the cache-validity check).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// A [`TrieCursor`] over the trie's single run — same contract as
    /// [`Relation::trie_cursor`], so the leapfrog driver cannot tell the
    /// backends apart.
    pub fn cursor(&self) -> TrieCursor<'_> {
        TrieCursor::new(self.cols.len(), vec![&self.run])
    }
}

/// A session-shared cache of [`HashTrie`] builds, keyed by
/// `(predicate, columns, base stamp)`. A session core holds one behind an
/// `Arc` and hands it to every pipeline it builds, so forked sessions over
/// the same frozen base reuse each other's builds; a base promotion (layer
/// append) bumps the stamp, and [`HashTrieCache::retain_stamp`] drops the
/// stale generation. Only tries over **pure base views** (relations with
/// zero overlay rows) are cached here — an overlay's own rows differ per
/// fork, so those tries stay in the pipeline-local cache.
#[derive(Debug, Default)]
pub struct HashTrieCache {
    inner: Mutex<HashMap<HashTrieKey, Arc<HashTrie>>>,
}

/// Cache key: `(predicate, columns, base stamp)`.
type HashTrieKey = (Sym, Box<[usize]>, u64);

impl HashTrieCache {
    /// An empty cache.
    pub fn new() -> HashTrieCache {
        HashTrieCache::default()
    }

    /// Look up the trie for `(predicate, cols)` under `stamp`.
    pub fn get(&self, predicate: Sym, cols: &[usize], stamp: u64) -> Option<Arc<HashTrie>> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.get(&(predicate, cols.into(), stamp)).cloned()
    }

    /// Cache a built trie under `stamp`.
    pub fn insert(&self, predicate: Sym, cols: &[usize], stamp: u64, trie: Arc<HashTrie>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.insert((predicate, cols.into(), stamp), trie);
    }

    /// Drop every entry built for a stamp other than `stamp` — the precise
    /// invalidation a base promotion performs.
    pub fn retain_stamp(&self, stamp: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.retain(|(_, _, s), _| *s == stamp);
    }

    /// Number of cached tries (all stamps).
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::FactStore;

    fn edge(a: i64, b: i64) -> Fact {
        Fact::new("E", vec![a.into(), b.into()])
    }

    /// Walk every tuple below `prefix`, descending to leaf depth, and
    /// report `(value path, leaf facts)` — the canonical contract probe.
    fn walk(cur: &mut TrieCursor<'_>, prefix: &[ValueId]) -> Vec<(Vec<Value>, Vec<FactId>)> {
        let mut out = Vec::new();
        if !cur.open(prefix) {
            return out;
        }
        let levels = cur.arity() - prefix.len();
        walk_level(cur, levels, &mut Vec::new(), &mut out);
        out
    }

    fn walk_level(
        cur: &mut TrieCursor<'_>,
        levels: usize,
        path: &mut Vec<Value>,
        out: &mut Vec<(Vec<Value>, Vec<FactId>)>,
    ) {
        while let Some(pair) = cur.key() {
            cur.descend(pair);
            path.push(resolve_value(pair.1));
            if levels == 1 {
                let mut facts = Vec::new();
                cur.leaf_facts(&mut facts);
                out.push((path.clone(), facts));
            } else {
                walk_level(cur, levels - 1, path, out);
            }
            path.pop();
            cur.up();
            cur.seek_past(pair);
        }
    }

    #[test]
    fn hashtrie_matches_the_indexed_cursor_contract() {
        let mut rel = Relation::new();
        for (a, b) in [(3, 1), (1, 2), (1, 5), (2, 3), (0, 9)] {
            rel.insert(edge(a, b));
        }
        rel.ensure_index(&[0, 1]);
        let ht = HashTrie::build(&rel, &[0, 1]);
        assert_eq!(ht.rows(), 5);
        assert_eq!(ht.cols(), &[0, 1]);
        // Same enumeration under the root and under a prefix.
        let mut indexed = rel.trie_cursor(&[0, 1]).unwrap();
        let mut hashed = ht.cursor();
        assert_eq!(walk(&mut indexed, &[]), walk(&mut hashed, &[]));
        let one = Value::Int(1).interned();
        assert_eq!(walk(&mut indexed, &[one]), walk(&mut hashed, &[one]));
        let missing = Value::Int(7).interned();
        assert!(!ht.cursor().open(&[missing]));
    }

    #[test]
    fn hashtrie_covers_layered_relations_without_a_base_index() {
        // Base indexed only on [0]; a trie over [1, 0] has no composite run
        // anywhere in the chain, so the overlay cannot hand out a cursor —
        // the exact situation the hash trie exists for.
        let mut store = FactStore::new();
        for (a, b) in [(1, 2), (2, 3), (1, 3)] {
            store.insert(edge(a, b));
        }
        store.relation_mut(intern("E")).ensure_index(&[0]);
        let base = store.freeze();
        let mut overlay = base.overlay();
        overlay.insert(edge(3, 3));
        let rel = overlay.relation_mut(intern("E"));
        assert!(rel.trie_cursor(&[1, 0]).is_none());
        let ht = HashTrie::build(rel, &[1, 0]);
        let got = walk(&mut ht.cursor(), &[Value::Int(3).interned()]);
        // Rows with second column 3: (2,3) id 1, (1,3) id 2, (3,3) id 3 —
        // first-column values ascending, leaf facts FactId-ascending.
        assert_eq!(
            got,
            vec![
                (vec![Value::Int(1)], vec![FactId(2)]),
                (vec![Value::Int(2)], vec![FactId(1)]),
                (vec![Value::Int(3)], vec![FactId(3)]),
            ]
        );
    }

    #[test]
    fn hashtrie_skips_rows_too_narrow_for_the_column_list() {
        let mut rel = Relation::new();
        rel.insert(Fact::new("P", vec![1i64.into()]));
        rel.insert(Fact::new("P", vec![2i64.into(), 9i64.into()]));
        let ht = HashTrie::build(&rel, &[0, 1]);
        let all = walk(&mut ht.cursor(), &[]);
        assert_eq!(
            all,
            vec![(vec![Value::Int(2), Value::Int(9)], vec![FactId(1)])]
        );
    }

    #[test]
    fn cache_is_stamp_keyed_and_prunes_stale_generations() {
        let mut rel = Relation::new();
        rel.insert(edge(1, 2));
        let cache = HashTrieCache::new();
        let pred = intern("E");
        let trie = Arc::new(HashTrie::build(&rel, &[0, 1]));
        cache.insert(pred, &[0, 1], 7, trie.clone());
        assert!(cache.get(pred, &[0, 1], 7).is_some());
        assert!(cache.get(pred, &[0, 1], 8).is_none());
        assert!(cache.get(pred, &[1, 0], 7).is_none());
        cache.insert(pred, &[1, 0], 8, trie);
        assert_eq!(cache.len(), 2);
        cache.retain_stamp(8);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(pred, &[0, 1], 7).is_none());
        assert!(cache.get(pred, &[1, 0], 8).is_some());
    }
}
