//! # vadalog-storage
//!
//! The storage substrate of the Vadalog reproduction (Section 4 of the
//! paper: record managers, dynamic in-memory indices, buffer cache and
//! memory management):
//!
//! * [`store`] — the in-memory [`store::FactStore`]: one relation per
//!   predicate with set semantics, per-column *dynamic hash indices* built
//!   lazily on first use (the indexing half of the slot-machine join), and
//!   deterministic iteration for reproducible runs;
//! * [`csv`] — the CSV *record managers* used by `@bind("P", "csv:...")`
//!   annotations to turn external files into facts and to materialise
//!   reasoning output;
//! * [`domain`] — maintenance of the active constant domain `ACDom` /
//!   `Dom` (Section 2), used to guard the grounded copies produced by
//!   harmful-join elimination and to restrict EGD/constraint checking to
//!   ground values;
//! * [`cache`] — a small fragmented buffer cache with LRU eviction,
//!   mirroring the paper's per-filter buffer segments; the engine wraps each
//!   pipeline filter in one segment.

pub mod cache;
pub mod csv;
pub mod domain;
pub mod store;

pub use cache::{BufferCache, CacheStats, EvictionPolicy};
pub use csv::{read_csv_facts, write_csv_facts, CsvError};
pub use domain::ActiveDomain;
pub use store::{FactStore, Relation};
