//! # vadalog-storage
//!
//! The storage substrate of the Vadalog reproduction (Section 4 of the
//! paper: record managers, dynamic in-memory indices, buffer cache and
//! memory management):
//!
//! * [`store`] — the in-memory [`store::FactStore`]: one relation per
//!   predicate with set semantics, per-column *dynamic hash indices* built
//!   lazily on first use (the indexing half of the slot-machine join), and
//!   deterministic iteration for reproducible runs;
//! * [`pattern`] — interned [`pattern::RowPattern`]s: atoms compiled to the
//!   id level, matched against borrowed rows with an undo trail — the probe
//!   half of the zero-clone join core;
//! * [`csv`] — the CSV *record managers* used by `@bind("P", "csv:...")`
//!   annotations to turn external files into facts and to materialise
//!   reasoning output;
//! * [`domain`] — maintenance of the active constant domain `ACDom` /
//!   `Dom` (Section 2), used to guard the grounded copies produced by
//!   harmful-join elimination and to restrict EGD/constraint checking to
//!   ground values;
//! * [`cache`] — a small fragmented buffer cache with LRU eviction,
//!   mirroring the paper's per-filter buffer segments; the engine wraps each
//!   pipeline filter in one segment.
//!
//! # Storage layout and interning design
//!
//! The paper's slot-machine join wins by probing incrementally-built dynamic
//! indices instead of scanning; this crate makes those probes allocation-free
//! by storing tuples as **interned rows** rather than as [`Fact`]s:
//!
//! * every constant and labelled null is interned exactly once into the
//!   process-wide value table of `vadalog-model`, yielding a 4-byte
//!   [`ValueId`] whose equality coincides with [`Value`] equality (including
//!   the `Int(2)` = `Float(2.0)` identification) — so an equi-join on ids is
//!   an equi-join on values;
//! * a [`Relation`] stores one `Box<[ValueId]>` row per distinct tuple, in
//!   insertion order; a row's [`FactId`] is its insertion position.
//!   Set-semantics dedup is a row-hash → `FactId` map: the row bytes live
//!   once in the row table, the dedup side holds only 8-byte hashes and ids
//!   (the seed stored every fact twice — `Vec<Fact>` plus `HashSet<Fact>`);
//! * dynamic indices map `(column, ValueId)` to a postings list
//!   `Vec<FactId>`, and [`Relation::lookup`] /
//!   [`Relation::lookup_if_indexed`] hand that list out as a **borrowed**
//!   `&[FactId]` slice (the seed cloned the whole `Vec` per probe);
//! * the join layers above ([`pattern`], `vadalog-engine::pipeline`,
//!   `vadalog-chase`) match compiled patterns against `Relation::row`
//!   borrows and bind ids in place, cloning **zero** `Fact`s per probe;
//!   real facts are materialised only at the API boundary
//!   ([`store::FactStore::facts_of`], iteration, outputs, `Display`).
//!
//! [`Fact`]: vadalog_model::Fact
//! [`Value`]: vadalog_model::Value
//! [`ValueId`]: vadalog_model::ValueId
//! [`Relation`]: store::Relation
//! [`Relation::lookup`]: store::Relation::lookup
//! [`Relation::lookup_if_indexed`]: store::Relation::lookup_if_indexed
//! [`Relation::row`]: store::Relation::row
//! [`FactId`]: store::FactId

pub mod cache;
pub mod csv;
pub mod domain;
pub mod pattern;
pub mod store;

pub use cache::{BufferCache, CacheStats, EvictionPolicy};
pub use csv::{read_csv_facts, write_csv_facts, CsvError};
pub use domain::ActiveDomain;
pub use pattern::{materialise, number_variables, undo_to, RowPattern, Slot};
pub use store::{DeltaBatch, FactId, FactStore, Relation};
