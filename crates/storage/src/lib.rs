//! # vadalog-storage
//!
//! The storage substrate of the Vadalog reproduction (Section 4 of the
//! paper: record managers, dynamic in-memory indices, buffer cache and
//! memory management):
//!
//! * [`store`] — the in-memory [`store::FactStore`]: one relation per
//!   predicate with set semantics, per-column *dynamic hash indices* built
//!   lazily on first use (the indexing half of the slot-machine join), and
//!   deterministic iteration for reproducible runs;
//! * [`pattern`] — interned [`pattern::RowPattern`]s: atoms compiled to the
//!   id level, matched against borrowed rows with an undo trail — the probe
//!   half of the zero-clone join core;
//! * [`csv`] — the CSV *record managers* used by `@bind("P", "csv:...")`
//!   annotations to turn external files into facts and to materialise
//!   reasoning output;
//! * [`domain`] — maintenance of the active constant domain `ACDom` /
//!   `Dom` (Section 2), used to guard the grounded copies produced by
//!   harmful-join elimination and to restrict EGD/constraint checking to
//!   ground values;
//! * [`cache`] — a small fragmented buffer cache with LRU eviction,
//!   mirroring the paper's per-filter buffer segments; the engine wraps each
//!   pipeline filter in one segment.
//!
//! # Storage layout and interning design
//!
//! The paper's slot-machine join wins by probing incrementally-built dynamic
//! indices instead of scanning; this crate makes those probes allocation-free
//! by storing tuples as **interned rows** rather than as [`Fact`]s:
//!
//! * every constant and labelled null is interned exactly once into the
//!   process-wide value table of `vadalog-model`, yielding a 4-byte
//!   [`ValueId`] whose equality coincides with [`Value`] equality (including
//!   the `Int(2)` = `Float(2.0)` identification) — so an equi-join on ids is
//!   an equi-join on values. Interning also caches each value's
//!   [`OrderKey`], an order-preserving `(class, bits)` key whose integer
//!   comparison is a monotone refinement of the comparison order conditions
//!   use;
//! * a [`Relation`] stores one `Box<[ValueId]>` row per distinct tuple, in
//!   insertion order; a row's [`FactId`] is its insertion position.
//!   Set-semantics dedup is a row-hash → `FactId` map: the row bytes live
//!   once in the row table, the dedup side holds only 8-byte hashes and ids
//!   (the seed stored every fact twice — `Vec<Fact>` plus `HashSet<Fact>`).
//!
//! # Sorted columnar postings
//!
//! Dynamic indices are **sorted runs over column lists** rather than
//! per-column hash maps, so one index answers three probe shapes:
//!
//! * **exact composite probes** — an index over `(c1, c2, ...)` keeps one
//!   `(OrderKey, ValueId)` pair per column per row, sorted per column with
//!   `FactId` as the final tie-break; equal composite keys form contiguous
//!   groups located by a small per-run **directory** (composite-key hash →
//!   group), so a multi-column equality probe is a single lookup instead of
//!   N postings intersections;
//! * **range scans** — comparison conditions over orderable values
//!   (`w > 0.5`, `x <= y`) binary-search the runs by order key under an
//!   optional exact prefix ([`RangeFilter`]): everything strictly inside the
//!   key range is emitted without resolving a value, entries tying the
//!   bound's key are checked exactly, labelled nulls are skipped by class;
//! * **merge-based intersection** — probes spanning several runs merge
//!   their (disjoint, ascending) insertion segments, so postings always come
//!   back in ascending `FactId` order: the enumeration order that keeps the
//!   engine's parallel sweep bit-identical at every worker count.
//!
//! Maintenance is amortised: inserts append to an index **tail** that probes
//! scan linearly; [`Relation::ensure_index`] (the engine calls it while
//! preparing each batch, before freezing the store for the worker pool)
//! flushes the tail into a fresh run and merges adjacent runs size-tiered.
//! [`Relation::probe_if_indexed`] yields postings either borrowed straight
//! from a single run ([`Probe::Run`]) or collected into a caller-owned
//! scratch buffer, so the hot exact probe stays allocation-free.
//!
//! # Sorted-trie cursors (worst-case-optimal joins)
//!
//! The same runs double as **tries**: entries sorted per column mean the
//! rows sharing a value prefix are one contiguous span per run, with the
//! next column's distinct values in ascending `(OrderKey, ValueId)` order
//! inside it. [`TrieCursor`] (from [`store::Relation::trie_cursor`]) walks
//! that shape — `open` on an exact prefix, `key`/`seek`/`seek_past` over the
//! current column, `descend`/`up` between columns, `leaf_facts` at full
//! depth — composing a copy-on-write base's runs before the overlay's so
//! leaf enumeration stays `FactId`-ascending. [`wcoj::leapfrog_join`] drives
//! one cursor per atom through the per-variable intersection of a
//! leapfrog-triejoin; the engine selects it for cyclic rule bodies where
//! binary joins pay the intermediate-result blowup. A cursor is only handed
//! out when every involved tail is flushed (the `ensure_index` pre-pass
//! guarantees this on the hot path); the fallback to binary probing is a
//! pure function of store state, hence deterministic across threads.
//!
//! # Copy-on-write EDB snapshots
//!
//! A relation is either **plain** (it owns every row) or a **copy-on-write
//! overlay** over a shared, immutable base relation. [`FactStore::freeze`]
//! turns a fully-loaded store into a [`StoreBase`]: every relation's index
//! tails are flushed (the shared runs are final and never re-sorted) and
//! wrapped in an `Arc`. [`StoreBase::overlay`] then hands out mutable
//! stores whose relations share the base's interned rows, dedup map *and*
//! sorted runs/directories by reference — the per-query storage of a query
//! session costs zero re-interning and zero re-indexing:
//!
//! * `FactId`s compose: base rows keep their positions, overlay rows
//!   continue the same id space (`base.len()..`), so an overlay is
//!   observationally identical to a plain relation with the same insertion
//!   history — same ids, same enumeration order, bit-identical parallel
//!   sweeps;
//! * probes compose: base postings (all strictly smaller ids) are emitted
//!   before overlay postings, preserving the ascending `FactId` order the
//!   engine's deterministic merge relies on. An overlay index not yet built
//!   degrades to a linear scan of the (small) overlay rows, exactly like an
//!   unflushed tail;
//! * maintenance composes: `ensure_index` on an overlay only ever flushes
//!   the overlay's own tail. When the base lacks a column list entirely the
//!   overlay builds a one-off fallback index covering the base rows too
//!   (counted by [`Relation::full_index_builds`] — a prepared session keeps
//!   this at zero via [`StoreBase::ensure_index`], which extends the base's
//!   index set in place between queries while no overlay is alive).
//!
//! Bases themselves stack into **layer chains**: [`StoreBase::promote`]
//! turns an overlay holding appended facts into a new immutable base layer
//! with its own pre-flushed sorted runs, and bumps the base *stamp* so
//! engine-side memos keyed on it invalidate. Probes compose the whole chain
//! deepest-layer-first — ascending `FactId` order by construction — so a
//! consumer cannot tell whether rows arrived in one snapshot or across k
//! appends. This is the layering clause of the workspace-wide bit-identity
//! contract (`docs/ARCHITECTURE.md`).
//!
//! The join layers above ([`pattern`], `vadalog-engine::pipeline`,
//! `vadalog-chase`) match compiled patterns against `Relation::row` borrows
//! and bind ids in place, cloning **zero** `Fact`s per probe; real facts are
//! materialised only at the API boundary ([`store::FactStore::facts_of`],
//! iteration, outputs, `Display`).
//!
//! [`Fact`]: vadalog_model::Fact
//! [`Value`]: vadalog_model::Value
//! [`ValueId`]: vadalog_model::ValueId
//! [`OrderKey`]: vadalog_model::OrderKey
//! [`Relation`]: store::Relation
//! [`Relation::ensure_index`]: store::Relation::ensure_index
//! [`Relation::probe_if_indexed`]: store::Relation::probe_if_indexed
//! [`Relation::row`]: store::Relation::row
//! [`Relation::full_index_builds`]: store::Relation::full_index_builds
//! [`FactId`]: store::FactId
//! [`RangeFilter`]: store::RangeFilter
//! [`Probe::Run`]: store::Probe::Run
//! [`FactStore::freeze`]: store::FactStore::freeze
//! [`StoreBase`]: store::StoreBase
//! [`StoreBase::overlay`]: store::StoreBase::overlay
//! [`StoreBase::ensure_index`]: store::StoreBase::ensure_index
//! [`StoreBase::promote`]: store::StoreBase::promote

pub mod cache;
pub mod csv;
pub mod domain;
pub mod hashtrie;
pub mod pattern;
pub mod store;
pub mod wal;
pub mod wcoj;

pub use cache::{BufferCache, CacheStats, EvictionPolicy};
pub use csv::{read_csv_facts, write_csv_facts, CsvError};
pub use domain::ActiveDomain;
pub use hashtrie::{HashTrie, HashTrieCache};
pub use pattern::{
    chunk_windows, materialise, number_variables, undo_to, JoinScratch, ProbeBuffers, RowPattern,
    Slot,
};
pub use store::{
    DeltaBatch, FactId, FactStore, IndexStats, OpenSpans, Probe, RangeFilter, Relation, StoreBase,
    TrieCursor,
};
pub use wal::{costs_path, load_costs, save_costs, TornTail, Wal, WalError, WalOpen, WarmCosts};
pub use wcoj::{leapfrog_join, WcojCounters, WcojLevel};
