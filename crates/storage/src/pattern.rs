//! Interned row patterns: the id-level compilation of an [`Atom`] that the
//! zero-clone join core matches against borrowed relation rows.
//!
//! A [`RowPattern`] maps each argument position of an atom to a [`Slot`]:
//! either an interned constant (`ValueId`, interned once at compile time) or
//! a *variable slot* — an index into a per-rule binding array
//! `[Option<ValueId>]`. Matching a pattern against a borrowed `&[ValueId]`
//! row is then a short loop of `u32` comparisons that binds free slots in
//! place, with an undo trail for backtracking: no `Fact` is cloned, no
//! `Substitution` hash map is touched, and nothing allocates on the
//! per-probe path. Real [`Substitution`]s are materialised from the binding
//! array only for accepted matches (see [`materialise`]).

use crate::store::{FactId, OpenSpans, Probe, RangeFilter, Relation};
use std::collections::HashMap;
use vadalog_model::prelude::*;

/// One argument position of a compiled pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Slot {
    /// An interned constant the row must equal at this position.
    Const(ValueId),
    /// A variable: index into the rule's binding array.
    Var(usize),
}

impl Slot {
    /// The id this slot is determined to under `binding`: the constant's id,
    /// or the variable's bound id (`None` while unbound).
    pub fn value(self, binding: &[Option<ValueId>]) -> Option<ValueId> {
        match self {
            Slot::Const(c) => Some(c),
            Slot::Var(v) => binding[v],
        }
    }
}

/// An atom compiled against a rule-level variable numbering.
#[derive(Clone, Debug)]
pub struct RowPattern {
    /// The predicate the pattern probes.
    pub predicate: Sym,
    /// One slot per argument position.
    pub slots: Box<[Slot]>,
}

/// Reusable buffers for [`RowPattern::probe_determined`] and
/// [`RowPattern::any_match_with`]: hold one per loop so repeated probes
/// allocate nothing in the steady state.
#[derive(Default, Debug)]
pub struct ProbeBuffers {
    trail: Vec<usize>,
    cols: Vec<usize>,
    key: Vec<ValueId>,
    /// Postings scratch; read a probe's result through [`Probe::as_slice`].
    pub scratch: Vec<FactId>,
}

/// Reusable per-worker join state for the engine's chunked slot-machine
/// join: the binding array, the undo trail, one postings scratch buffer per
/// join depth and the composite probe-key buffer. A worker holds one
/// `JoinScratch` for its whole lifetime and [`JoinScratch::reset`]s it per
/// (filter, chunk) work item, so processing any number of chunks allocates
/// nothing in the steady state — the chunk-scoped counterpart of
/// [`ProbeBuffers`].
#[derive(Default, Debug)]
pub struct JoinScratch {
    /// One slot per rule variable, bound during matching.
    pub binding: Vec<Option<ValueId>>,
    /// Newly-bound slot numbers, for backtracking via [`undo_to`].
    pub trail: Vec<usize>,
    /// Per-join-depth postings buffers (read through [`Probe::as_slice`]).
    pub postings: Vec<Vec<FactId>>,
    /// Composite probe-key buffer (see [`RowPattern::fill_probe_key`]).
    pub key: Vec<ValueId>,
    /// Hoisted trie open-span memos, one per leapfrog trie of the work item
    /// identified by [`JoinScratch::memo_token`]. Trie cursors are created
    /// fresh per chunk, but consecutive chunks of one filter activation
    /// re-open the same few prefixes against the same frozen runs — the
    /// driver adopts these memos into its cursors on entry and takes them
    /// back on exit, so the per-run binary searches are paid once per
    /// activation instead of once per chunk. Deliberately **not** cleared by
    /// [`JoinScratch::reset`]; a token mismatch clears them instead.
    pub trie_memos: Vec<HashMap<Box<[ValueId]>, OpenSpans>>,
    /// Identity of the work item the memos belong to — the engine keys it
    /// `(filter index, delta position)`, unique within one frozen batch
    /// (a scratch never outlives a batch, so stale-store reuse is
    /// impossible by construction).
    pub memo_token: Option<(usize, usize)>,
}

impl JoinScratch {
    /// Prepare for a job with `slots` variables and `depths` join steps:
    /// every slot unbound, the trail empty, one (cleared) postings buffer
    /// available per depth. Capacity is retained across resets; the trie
    /// memo bank survives too (see [`JoinScratch::trie_memos`]).
    pub fn reset(&mut self, slots: usize, depths: usize) {
        self.binding.clear();
        self.binding.resize(slots, None);
        self.trail.clear();
        if self.postings.len() < depths {
            self.postings.resize_with(depths, Vec::new);
        }
        for buf in &mut self.postings {
            buf.clear();
        }
        self.key.clear();
    }

    /// Borrow the memo bank for the work item identified by `token`: on a
    /// token match the existing memos are kept (the previous chunk of the
    /// same activation filled them); otherwise the bank is cleared and
    /// resized to `tries` empty memos. Always leaves exactly `tries` memos.
    pub fn memo_bank(
        &mut self,
        token: (usize, usize),
        tries: usize,
    ) -> &mut [HashMap<Box<[ValueId]>, OpenSpans>] {
        if self.memo_token != Some(token) || self.trie_memos.len() != tries {
            self.trie_memos.clear();
            self.trie_memos.resize_with(tries, HashMap::new);
            self.memo_token = Some(token);
        }
        &mut self.trie_memos
    }
}

/// Split the window `[from, to)` into `chunks` contiguous, near-equal-length
/// windows, earlier windows absorbing the remainder. Concatenating the
/// windows in order reproduces `[from, to)` exactly — the property that
/// makes a chunked join's merge bit-identical to the sequential scan. Shared
/// by the engine's intra-filter shard planner and the chase's sharded
/// `find_matches`, so both sides split identically.
pub fn chunk_windows(from: usize, to: usize, chunks: usize) -> Vec<(usize, usize)> {
    let len = to.saturating_sub(from);
    let k = chunks.clamp(1, len.max(1));
    let (base, rem) = (len / k, len % k);
    let mut out = Vec::with_capacity(k);
    let mut start = from;
    for i in 0..k {
        let size = base + usize::from(i < rem);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Assign a dense slot number to every distinct variable of `atoms`
/// (first-occurrence order), shared by all patterns of one rule.
pub fn number_variables(atoms: &[&Atom]) -> HashMap<Var, usize> {
    let mut slots = HashMap::new();
    for atom in atoms {
        for v in atom.variables() {
            let next = slots.len();
            slots.entry(v).or_insert(next);
        }
    }
    slots
}

impl RowPattern {
    /// Compile `atom`, interning its constants once. Variables missing from
    /// `slots` (possible for negated atoms whose variables never occur
    /// positively) must have been numbered by [`number_variables`] too — pass
    /// all atoms of the rule there.
    pub fn compile(atom: &Atom, slots: &HashMap<Var, usize>) -> RowPattern {
        RowPattern {
            predicate: atom.predicate,
            slots: atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => Slot::Const(intern_value(c)),
                    Term::Var(v) => Slot::Var(slots[v]),
                })
                .collect(),
        }
    }

    /// Try to extend `binding` so this pattern matches `row`.
    ///
    /// On success returns `true` with newly-bound slot numbers appended to
    /// `trail` (so the caller can backtrack with [`undo_to`]). On failure
    /// returns `false` with `binding` and `trail` exactly as before the call.
    pub fn match_row(
        &self,
        row: &[ValueId],
        binding: &mut [Option<ValueId>],
        trail: &mut Vec<usize>,
    ) -> bool {
        if self.slots.len() != row.len() {
            return false;
        }
        let mark = trail.len();
        for (slot, v) in self.slots.iter().zip(row.iter()) {
            let ok = match slot {
                Slot::Const(c) => c == v,
                Slot::Var(s) => match binding[*s] {
                    Some(bound) => bound == *v,
                    None => {
                        binding[*s] = Some(*v);
                        trail.push(*s);
                        true
                    }
                },
            };
            if !ok {
                undo_to(binding, trail, mark);
                return false;
            }
        }
        true
    }

    /// Instantiate this pattern under `binding` into a concrete row:
    /// constants copy their interned id, variables copy their bound id.
    /// `None` if any variable slot is unbound (mirrors `Atom::apply`
    /// returning `None` on an incomplete substitution).
    pub fn instantiate(&self, binding: &[Option<ValueId>]) -> Option<Box<[ValueId]>> {
        self.slots
            .iter()
            .map(|s| match s {
                Slot::Const(c) => Some(*c),
                Slot::Var(v) => binding[*v],
            })
            .collect::<Option<Vec<ValueId>>>()
            .map(Vec::into_boxed_slice)
    }

    /// Fill `key` with the probe key of `cols` under `binding`: the id each
    /// column is determined to (constant or bound variable). Returns `false`
    /// (leaving `key` truncated) if any of the columns is still free — the
    /// probe-key half of the pattern's prefix/range probe modes.
    pub fn fill_probe_key(
        &self,
        cols: &[usize],
        binding: &[Option<ValueId>],
        key: &mut Vec<ValueId>,
    ) -> bool {
        key.clear();
        for col in cols {
            match self.slots.get(*col).and_then(|s| s.value(binding)) {
                Some(id) => key.push(id),
                None => return false,
            }
        }
        true
    }

    /// Probe `relation` on every column this pattern already determines
    /// under `binding` (constants and bound variables): the composite index
    /// over exactly those columns when it exists, else any single determined
    /// column's index. `None` when no determined column has an index (the
    /// caller scans). The shared probe-selection strategy of the negation
    /// probe and the chase's left-to-right join.
    pub fn probe_determined<'r>(
        &self,
        relation: &'r Relation,
        binding: &[Option<ValueId>],
        bufs: &mut ProbeBuffers,
    ) -> Option<Probe<'r>> {
        bufs.cols.clear();
        bufs.key.clear();
        for (col, s) in self.slots.iter().enumerate() {
            if let Some(id) = s.value(binding) {
                bufs.cols.push(col);
                bufs.key.push(id);
            }
        }
        if bufs.cols.is_empty() {
            return None;
        }
        relation
            .probe_if_indexed(&bufs.cols, &bufs.key, None, &mut bufs.scratch)
            .or_else(|| {
                bufs.cols.iter().zip(&bufs.key).find_map(|(col, id)| {
                    relation.probe_if_indexed(&[*col], &[*id], None, &mut bufs.scratch)
                })
            })
    }

    /// Does any row of `relation` match this pattern under `binding`?
    ///
    /// Used for negation probes: prefers one composite probe over all
    /// determined columns (constants and bound variables) when that index
    /// exists, then any single determined column's index, falling back to a
    /// scan of the row table — never cloning a fact either way. `binding` is
    /// left untouched. Allocates its buffers per call; hot paths should hold
    /// a [`ProbeBuffers`] and use [`RowPattern::any_match_with`].
    pub fn any_match(&self, relation: &Relation, binding: &mut [Option<ValueId>]) -> bool {
        self.any_match_with(relation, binding, &mut ProbeBuffers::default())
    }

    /// [`RowPattern::any_match`] with caller-owned reusable buffers (no
    /// allocation in the steady state).
    pub fn any_match_with(
        &self,
        relation: &Relation,
        binding: &mut [Option<ValueId>],
        bufs: &mut ProbeBuffers,
    ) -> bool {
        bufs.trail.clear();
        match self.probe_determined(relation, binding, bufs) {
            Some(hit) => {
                let ProbeBuffers { trail, scratch, .. } = bufs;
                let ids: &[FactId] = hit.as_slice(scratch);
                ids.iter().any(|id| {
                    let matched = self.match_row(relation.row(*id), binding, trail);
                    undo_to(binding, trail, 0);
                    matched
                })
            }
            None => relation.iter_rows().any(|row| {
                let hit = self.match_row(row, binding, &mut bufs.trail);
                undo_to(binding, &mut bufs.trail, 0);
                hit
            }),
        }
    }

    /// Probe `relation` for the rows matching this pattern under `binding`,
    /// using the index over `cols` (exact prefix plus optional range on the
    /// following column) — the pattern-level face of the sorted-run probe
    /// API. `None` when the index is missing or a prefix column is unbound;
    /// the ids come back in ascending [`FactId`] order.
    #[allow(clippy::too_many_arguments)]
    pub fn probe<'r>(
        &self,
        relation: &'r Relation,
        cols: &[usize],
        prefix_len: usize,
        range: Option<&RangeFilter>,
        key: &mut Vec<ValueId>,
        binding: &[Option<ValueId>],
        out: &mut Vec<FactId>,
    ) -> Option<Probe<'r>> {
        if !self.fill_probe_key(&cols[..prefix_len], binding, key) {
            return None;
        }
        relation.probe_if_indexed(cols, key, range, out)
    }
}

/// Unbind every slot recorded in `trail` past `mark`, truncating the trail.
pub fn undo_to(binding: &mut [Option<ValueId>], trail: &mut Vec<usize>, mark: usize) {
    for s in trail.drain(mark..) {
        binding[s] = None;
    }
}

/// Materialise a real [`Substitution`] from a binding array — the API
/// boundary where interned ids become values again. Called once per accepted
/// match, never per probe.
pub fn materialise(slots: &HashMap<Var, usize>, binding: &[Option<ValueId>]) -> Substitution {
    let mut subst = Substitution::new();
    for (var, slot) in slots {
        if let Some(id) = binding[*slot] {
            subst.bind(*var, resolve_value(id));
        }
    }
    subst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(pred: &str, vars: &[&str]) -> Atom {
        Atom::vars(pred, vars)
    }

    #[test]
    fn match_binds_and_backtracks() {
        let a = atom("P", &["x", "y"]);
        let slots = number_variables(&[&a]);
        let p = RowPattern::compile(&a, &slots);
        let row = [Value::Int(1).interned(), Value::Int(2).interned()];
        let mut binding = vec![None; slots.len()];
        let mut trail = Vec::new();
        assert!(p.match_row(&row, &mut binding, &mut trail));
        assert_eq!(trail.len(), 2);
        assert_eq!(binding[slots[&Var::new("x")]], Some(row[0]));
        undo_to(&mut binding, &mut trail, 0);
        assert!(binding.iter().all(Option::is_none));
    }

    #[test]
    fn repeated_variables_force_equality() {
        let a = atom("P", &["x", "x"]);
        let slots = number_variables(&[&a]);
        let p = RowPattern::compile(&a, &slots);
        let eq = [Value::Int(3).interned(), Value::Int(3).interned()];
        let ne = [Value::Int(3).interned(), Value::Int(4).interned()];
        let mut binding = vec![None; slots.len()];
        let mut trail = Vec::new();
        assert!(p.match_row(&eq, &mut binding, &mut trail));
        undo_to(&mut binding, &mut trail, 0);
        assert!(!p.match_row(&ne, &mut binding, &mut trail));
        // failed match must leave no residue
        assert!(binding.iter().all(Option::is_none));
        assert!(trail.is_empty());
    }

    #[test]
    fn constants_are_compiled_to_ids() {
        let a = Atom::new("P", vec![Term::constant("k"), Term::var("y")]);
        let slots = number_variables(&[&a]);
        let p = RowPattern::compile(&a, &slots);
        let good = [Value::str("k").interned(), Value::Int(9).interned()];
        let bad = [Value::str("other").interned(), Value::Int(9).interned()];
        let mut binding = vec![None; slots.len()];
        let mut trail = Vec::new();
        assert!(p.match_row(&good, &mut binding, &mut trail));
        undo_to(&mut binding, &mut trail, 0);
        assert!(!p.match_row(&bad, &mut binding, &mut trail));
    }

    #[test]
    fn any_match_probes_relation() {
        let mut rel = Relation::new();
        rel.insert(Fact::new("Q", vec!["a".into(), 1i64.into()]));
        rel.insert(Fact::new("Q", vec!["b".into(), 2i64.into()]));
        let a = atom("Q", &["u", "w"]);
        let b = Atom::new("Q", vec![Term::constant("b"), Term::var("w")]);
        let c = Atom::new("Q", vec![Term::constant("zz"), Term::var("w")]);
        let slots = number_variables(&[&a, &b, &c]);
        let mut binding = vec![None; slots.len()];
        assert!(RowPattern::compile(&a, &slots).any_match(&rel, &mut binding));
        assert!(RowPattern::compile(&b, &slots).any_match(&rel, &mut binding));
        assert!(!RowPattern::compile(&c, &slots).any_match(&rel, &mut binding));
        // with an index present the probe path is exercised
        rel.ensure_index(&[0]);
        assert!(RowPattern::compile(&b, &slots).any_match(&rel, &mut binding));
        assert!(!RowPattern::compile(&c, &slots).any_match(&rel, &mut binding));
        assert!(binding.iter().all(Option::is_none));
    }

    #[test]
    fn materialise_resolves_only_bound_slots() {
        let a = atom("P", &["x", "y"]);
        let slots = number_variables(&[&a]);
        let mut binding = vec![None; slots.len()];
        binding[slots[&Var::new("x")]] = Some(Value::str("v").interned());
        let subst = materialise(&slots, &binding);
        assert_eq!(subst.get(Var::new("x")), Some(&Value::str("v")));
        assert_eq!(subst.get(Var::new("y")), None);
    }
}
