//! In-memory fact store with interned rows and dynamic **sorted-run**
//! indices.
//!
//! A [`FactStore`] keeps one [`Relation`] per predicate. Relations have set
//! semantics (duplicate insertion is a no-op) and maintain *dynamic indices*:
//! an index over a column list is only materialised the first time a lookup
//! on those columns is requested, and is kept incrementally up to date
//! afterwards — this is the storage half of the paper's "slot machine join",
//! which builds indexes while iterators are being consumed and uses them even
//! when still incomplete.
//!
//! # Storage layout
//!
//! The store never holds a [`Fact`] at rest. Each relation stores its tuples
//! as **rows**: boxed `[ValueId]` slices over the global value interner of
//! `vadalog-model`, identified by a [`FactId`] equal to the row's insertion
//! position. Set-semantics deduplication is a row-hash → `FactId` map (the
//! row bytes exist exactly once, in the row table; the dedup map holds only
//! hashes and ids).
//!
//! # Sorted-run indices
//!
//! Every dynamic index covers an ordered **column list** (a single column or
//! a composite prefix) and keeps its postings as a small set of **sorted
//! runs** plus an unsorted tail:
//!
//! * a `SortedRun` holds, per indexed row, one `(OrderKey, ValueId)` pair
//!   per column plus the row's `FactId`, sorted lexicographically per column
//!   (order key first, id as a grouping tie-break) with `FactId` as the final
//!   tie-break. A per-run **directory** maps the hash of each distinct
//!   composite key to its contiguous entry group, so exact composite probes
//!   are one hash lookup per run — no per-column intersection;
//! * **range scans** binary-search the run by order key: everything strictly
//!   inside the key range is emitted without resolving a value, only entries
//!   whose key ties the bound's key are checked exactly (and labelled nulls,
//!   which never satisfy an ordering comparison, are skipped by class);
//! * inserts append to the index's **tail**; [`Relation::ensure_index`]
//!   flushes the tail into a fresh run and merges adjacent runs size-tiered,
//!   so maintenance stays amortised `O(log n)` per row. Probes scan the
//!   (small) tail linearly, so an unflushed index is still exact;
//! * probes spanning several runs are **merged by `FactId`**: runs cover
//!   disjoint ascending insertion ranges, so results are always yielded in
//!   `FactId` order — the enumeration order the engine's deterministic
//!   parallel sweep relies on.
//!
//! [`Relation::probe_if_indexed`] hands postings out either as a borrowed
//! slice of a single run or through a caller-owned scratch buffer, so the
//! common exact probe costs one hash of the composite key and zero
//! allocations.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::hash::BuildHasher;
use std::sync::Arc;
use vadalog_model::prelude::*;

/// Hash map from pre-computed row hashes to postings: the key *is* the hash,
/// so the map uses a pass-through hasher (one multiply via Fx, no SipHash).
type DedupMap = HashMap<u64, Vec<FactId>, FxBuildHasher>;

/// Identifier of a stored row within one [`Relation`]: its insertion
/// position. `Copy`, 4 bytes, and totally ordered by insertion time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FactId(pub u32);

impl FactId {
    /// The row position as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

fn row_hash(row: &[ValueId]) -> u64 {
    FxBuildHasher::default().hash_one(row)
}

/// Hash of a composite key (the raw ids), used by the per-run directory.
fn ids_hash(ids: &[ValueId]) -> u64 {
    FxBuildHasher::default().hash_one(ids)
}

/// Tail length at which an index flushes itself into a sorted run even
/// without an [`Relation::ensure_index`] call, bounding the linear tail scan
/// every probe performs.
const TAIL_AUTO_FLUSH: usize = 4096;

/// A pushed-down comparison condition, evaluated by the index: keeps the
/// bound's interned id and order key so range scans can binary-search by key
/// and only resolve values on key ties (see [`CmpOp::eval_ids`]).
#[derive(Clone, Copy, Debug)]
pub struct RangeFilter {
    op: CmpOp,
    bound: ValueId,
    key: OrderKey,
}

impl RangeFilter {
    /// A filter selecting the values `v` with `v op bound`. Only ordering
    /// operators (`<`, `<=`, `>`, `>=`) are rangeable — equality is an exact
    /// probe, inequality is not indexable.
    pub fn new(op: CmpOp, bound: ValueId) -> RangeFilter {
        debug_assert!(
            matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge),
            "only ordering comparisons can be range filters"
        );
        RangeFilter {
            op,
            bound,
            key: order_key_of(bound),
        }
    }

    /// Does `v` satisfy the filter? Exact (`CmpOp::eval` semantics): order
    /// keys decide, ties resolve.
    pub fn matches(&self, v: ValueId) -> bool {
        self.op.eval_ids(v, self.bound)
    }

    /// A filter whose bound is a labelled null matches nothing (ordering a
    /// null against anything is `false`).
    fn never(&self) -> bool {
        self.key.is_null_class()
    }

    /// Does the filter select values *below* the bound?
    fn is_upper(&self) -> bool {
        matches!(self.op, CmpOp::Lt | CmpOp::Le)
    }
}

/// Aggregate statistics of one materialised sorted-run index, read from its
/// run directories: how many rows it indexes and how many distinct composite
/// keys they group into. The ratio `entries / distinct_keys` is the **mean
/// postings-group width** — the expected number of rows one exact probe
/// yields — which the engine uses as the per-delta-row cost estimate when
/// sizing intra-filter chunks and as the selectivity estimate when choosing
/// between several pushable range conditions.
#[derive(Clone, Copy, Debug, Default)]
pub struct IndexStats {
    /// Indexed rows across all sorted runs and the unflushed tail.
    pub entries: usize,
    /// Distinct composite keys, summed over the runs' directories (a key
    /// split across runs counts once per run). Unflushed tail rows count as
    /// one key each — an upper bound that vanishes after a flush.
    pub distinct_keys: usize,
}

impl IndexStats {
    /// Mean postings-group width: rows per distinct composite key (≥ 1.0
    /// whenever the index is non-empty, 1.0 when it is empty).
    pub fn mean_group_width(&self) -> f64 {
        if self.distinct_keys == 0 {
            1.0
        } else {
            self.entries as f64 / self.distinct_keys as f64
        }
    }
}

/// The result of an index probe: postings in ascending [`FactId`] order.
#[derive(Debug)]
pub enum Probe<'a> {
    /// Borrowed directly from a single sorted run — the zero-copy fast path
    /// of exact composite probes.
    Run(&'a [FactId]),
    /// The probe spanned several runs, a range boundary or the tail; the
    /// result was collected into the caller's scratch buffer.
    Buffered,
}

impl<'a> Probe<'a> {
    /// View the postings, whichever way the probe yielded them. `scratch`
    /// must be the buffer passed to the probe call.
    pub fn as_slice<'s>(&self, scratch: &'s [FactId]) -> &'s [FactId]
    where
        'a: 's,
    {
        match self {
            Probe::Run(ids) => ids,
            Probe::Buffered => scratch,
        }
    }
}

/// First index in `[0, n)` for which `less` is false (classic lower bound).
fn lower_bound(mut lo: usize, mut hi: usize, mut less: impl FnMut(usize) -> bool) -> usize {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if less(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// One sorted run of an index: `k` `(OrderKey, ValueId)` pairs per entry
/// (entry-major), the matching `FactId`s, and the directory of composite-key
/// groups. Entries are sorted per column by `(key, id)` with `FactId` as the
/// final tie-break, so equal composite keys form contiguous, FactId-ordered
/// groups and every column is range-scannable under its prefix.
#[derive(Clone, Debug, Default)]
pub(crate) struct SortedRun {
    keys: Vec<(OrderKey, ValueId)>,
    facts: Vec<FactId>,
    /// composite-key hash → (start, len) of the group. On the rare hash
    /// collision the directory keeps one group and probes for the other fall
    /// back to binary search.
    dir: FxHashMap<u64, (u32, u32)>,
}

impl SortedRun {
    fn entry(&self, k: usize, i: usize) -> &[(OrderKey, ValueId)] {
        &self.keys[i * k..(i + 1) * k]
    }

    fn entry_ids_eq(&self, k: usize, i: usize, ids: &[ValueId]) -> bool {
        self.entry(k, i).iter().zip(ids).all(|((_, v), id)| v == id)
    }

    /// Build a run from unsorted entries (one `k`-pair chunk per fact).
    pub(crate) fn from_entries(
        k: usize,
        keys: Vec<(OrderKey, ValueId)>,
        facts: Vec<FactId>,
    ) -> SortedRun {
        let n = facts.len();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            keys[a * k..(a + 1) * k]
                .cmp(&keys[b * k..(b + 1) * k])
                .then_with(|| facts[a].cmp(&facts[b]))
        });
        let mut sorted_keys = Vec::with_capacity(keys.len());
        let mut sorted_facts = Vec::with_capacity(n);
        for &p in &perm {
            let p = p as usize;
            sorted_keys.extend_from_slice(&keys[p * k..(p + 1) * k]);
            sorted_facts.push(facts[p]);
        }
        let mut run = SortedRun {
            keys: sorted_keys,
            facts: sorted_facts,
            dir: FxHashMap::default(),
        };
        run.rebuild_dir(k);
        run
    }

    /// Merge two sorted runs covering adjacent insertion ranges.
    fn merge(k: usize, a: SortedRun, b: SortedRun) -> SortedRun {
        let n = a.facts.len() + b.facts.len();
        let mut keys = Vec::with_capacity(n * k);
        let mut facts = Vec::with_capacity(n);
        let (mut i, mut j) = (0, 0);
        while i < a.facts.len() && j < b.facts.len() {
            let take_a = a
                .entry(k, i)
                .cmp(b.entry(k, j))
                .then_with(|| a.facts[i].cmp(&b.facts[j]))
                .is_le();
            if take_a {
                keys.extend_from_slice(a.entry(k, i));
                facts.push(a.facts[i]);
                i += 1;
            } else {
                keys.extend_from_slice(b.entry(k, j));
                facts.push(b.facts[j]);
                j += 1;
            }
        }
        keys.extend_from_slice(&a.keys[i * k..]);
        facts.extend_from_slice(&a.facts[i..]);
        keys.extend_from_slice(&b.keys[j * k..]);
        facts.extend_from_slice(&b.facts[j..]);
        let mut run = SortedRun {
            keys,
            facts,
            dir: FxHashMap::default(),
        };
        run.rebuild_dir(k);
        run
    }

    /// Rebuild the composite-key directory: one entry per distinct key group.
    fn rebuild_dir(&mut self, k: usize) {
        self.dir.clear();
        let n = self.facts.len();
        let mut ids: Vec<ValueId> = Vec::with_capacity(k);
        let mut start = 0;
        while start < n {
            let mut end = start + 1;
            while end < n && self.entry(k, start) == self.entry(k, end) {
                end += 1;
            }
            ids.clear();
            ids.extend(self.entry(k, start).iter().map(|(_, v)| *v));
            self.dir
                .insert(ids_hash(&ids), (start as u32, (end - start) as u32));
            start = end;
        }
    }

    /// Contiguous group of entries whose first `pairs.len()` columns equal
    /// `pairs`, as an entry-index span.
    fn group_span(&self, k: usize, pairs: &[(OrderKey, ValueId)]) -> (usize, usize) {
        let n = self.facts.len();
        let p = pairs.len();
        let lo = lower_bound(0, n, |i| self.entry(k, i)[..p] < *pairs);
        let hi = lower_bound(lo, n, |i| self.entry(k, i)[..p] <= *pairs);
        (lo, hi)
    }

    /// Exact full-composite probe: directory hit, or (on a directory hash
    /// collision) a binary-search fallback. The returned slice is in
    /// ascending `FactId` order.
    fn exact_group(&self, k: usize, ids: &[ValueId]) -> &[FactId] {
        match self.dir.get(&ids_hash(ids)) {
            None => &[],
            Some(&(start, len)) => {
                let s = start as usize;
                if self.entry_ids_eq(k, s, ids) {
                    &self.facts[s..s + len as usize]
                } else {
                    // Directory collision: locate the group the slow way.
                    let pairs: Vec<(OrderKey, ValueId)> =
                        ids.iter().map(|v| (order_key_of(*v), *v)).collect();
                    let (lo, hi) = self.group_span(k, &pairs);
                    &self.facts[lo..hi]
                }
            }
        }
    }

    /// Append to `out` the facts of entries in `[g0, g1)` whose column `p`
    /// satisfies `range`. Entries strictly inside the key range are emitted
    /// with only a null-class check; entries tying the bound's key are
    /// checked exactly.
    fn collect_range(
        &self,
        k: usize,
        (g0, g1): (usize, usize),
        p: usize,
        range: &RangeFilter,
        out: &mut Vec<FactId>,
    ) {
        let key_at = |i: usize| self.entry(k, i)[p].0;
        let lo = lower_bound(g0, g1, |i| key_at(i) < range.key);
        let hi = lower_bound(lo, g1, |i| key_at(i) <= range.key);
        let interior = if range.is_upper() { g0..lo } else { hi..g1 };
        for i in interior {
            if !key_at(i).is_null_class() {
                out.push(self.facts[i]);
            }
        }
        for i in lo..hi {
            if range.matches(self.entry(k, i)[p].1) {
                out.push(self.facts[i]);
            }
        }
    }
}

/// A dynamic index over an ordered column list: sorted runs over disjoint
/// ascending insertion ranges plus an unsorted tail of recent inserts.
#[derive(Clone, Debug)]
struct SortedIndex {
    cols: Box<[usize]>,
    runs: Vec<SortedRun>,
    /// `cols.len()` ids per tail row, in insertion order.
    tail_ids: Vec<ValueId>,
    tail_facts: Vec<FactId>,
    /// For an overlay relation (one with a copy-on-write base): does this
    /// index cover the base rows too? `true` only for the fallback indexes
    /// built when the shared base lacks the column list — probes then use
    /// this index alone instead of composing base + overlay.
    covers_base: bool,
}

impl SortedIndex {
    fn new(cols: &[usize]) -> SortedIndex {
        SortedIndex {
            cols: cols.into(),
            runs: Vec::new(),
            tail_ids: Vec::new(),
            tail_facts: Vec::new(),
            covers_base: false,
        }
    }

    fn k(&self) -> usize {
        self.cols.len()
    }

    /// Register a newly inserted row. Rows too narrow for the column list
    /// are not indexed (they can never match a probe of this width).
    fn push_row(&mut self, id: FactId, row: &[ValueId]) {
        if self.cols.iter().all(|c| *c < row.len()) {
            for c in self.cols.iter() {
                self.tail_ids.push(row[*c]);
            }
            self.tail_facts.push(id);
            if self.tail_facts.len() >= TAIL_AUTO_FLUSH {
                self.flush();
            }
        }
    }

    /// Sort the tail into a fresh run and merge adjacent runs size-tiered,
    /// keeping the run count logarithmic in the relation size.
    fn flush(&mut self) {
        if self.tail_facts.is_empty() {
            return;
        }
        let k = self.k();
        let order_keys = order_keys_of(&self.tail_ids);
        let keys: Vec<(OrderKey, ValueId)> = order_keys
            .into_iter()
            .zip(self.tail_ids.drain(..))
            .collect();
        let facts = std::mem::take(&mut self.tail_facts);
        self.runs.push(SortedRun::from_entries(k, keys, facts));
        while self.runs.len() >= 2 {
            let n = self.runs.len();
            if self.runs[n - 2].facts.len() <= self.runs[n - 1].facts.len() * 2 {
                let b = self.runs.pop().expect("len checked");
                let a = self.runs.pop().expect("len checked");
                self.runs.push(SortedRun::merge(k, a, b));
            } else {
                break;
            }
        }
    }

    /// Probe the index: exact on the first `prefix.len()` columns, plus an
    /// optional range filter on the next column. Postings come back in
    /// ascending `FactId` order — borrowed from a single run when possible,
    /// otherwise collected into `out`.
    fn probe<'r>(
        &'r self,
        prefix: &[ValueId],
        range: Option<&RangeFilter>,
        out: &mut Vec<FactId>,
    ) -> Probe<'r> {
        out.clear();
        match self.probe_append(prefix, range, out) {
            Some(run) => Probe::Run(run),
            None => Probe::Buffered,
        }
    }

    /// The composable core of [`SortedIndex::probe`]: **append** matching
    /// postings to `out` (which may already hold smaller `FactId`s from a
    /// copy-on-write base probe), or — when the whole result is one borrowed
    /// run group and nothing was appended — return that slice instead and
    /// leave `out` untouched. Either way the ids this index contributes are
    /// in ascending `FactId` order.
    fn probe_append<'r>(
        &'r self,
        prefix: &[ValueId],
        range: Option<&RangeFilter>,
        out: &mut Vec<FactId>,
    ) -> Option<&'r [FactId]> {
        let k = self.k();
        debug_assert!(prefix.len() + usize::from(range.is_some()) <= k);
        if range.is_some_and(RangeFilter::never) {
            return None;
        }

        if range.is_none() && prefix.len() == k {
            // Exact composite probe: directory lookups, zero allocations.
            let start = out.len();
            let mut single: Option<&[FactId]> = None;
            let mut multi = false;
            for run in &self.runs {
                let group = run.exact_group(k, prefix);
                if group.is_empty() {
                    continue;
                }
                match single {
                    None if !multi => single = Some(group),
                    _ => {
                        if let Some(first) = single.take() {
                            out.extend_from_slice(first);
                        }
                        multi = true;
                        out.extend_from_slice(group);
                    }
                }
            }
            for (i, f) in self.tail_facts.iter().enumerate() {
                if self.tail_ids[i * k..(i + 1) * k] == *prefix {
                    out.push(*f);
                }
            }
            match single {
                // Runs cover ascending disjoint insertion ranges and the
                // tail is newest, so concatenations stay FactId-ordered.
                Some(group) if out.len() == start => Some(group),
                Some(group) => {
                    // A single run plus tail matches: splice in run order
                    // (only the tail was appended past `start`).
                    out.splice(start..start, group.iter().copied());
                    None
                }
                None => None,
            }
        } else {
            // Prefix and/or range probe: binary search per run by order key.
            let pairs: Vec<(OrderKey, ValueId)> =
                prefix.iter().map(|v| (order_key_of(*v), *v)).collect();
            let p = prefix.len();
            for run in &self.runs {
                let span = run.group_span(k, &pairs);
                if span.0 >= span.1 {
                    continue;
                }
                let before = out.len();
                match range {
                    Some(r) => run.collect_range(k, span, p, r, out),
                    None => out.extend_from_slice(&run.facts[span.0..span.1]),
                }
                // Within one run a multi-key span is key-ordered, not
                // FactId-ordered; runs themselves are ascending segments.
                out[before..].sort_unstable();
            }
            for (i, f) in self.tail_facts.iter().enumerate() {
                let ids = &self.tail_ids[i * k..(i + 1) * k];
                if ids[..p] == *prefix && range.is_none_or(|r| r.matches(ids[p])) {
                    out.push(*f);
                }
            }
            None
        }
    }
}

/// A memoised [`TrieCursor::open`] result: whether the prefix span is
/// non-empty, plus the per-run `(lo, hi)` spans to restore on a repeat.
/// Public only as the element type of the hoisted memo bank
/// ([`crate::pattern::JoinScratch::trie_memos`]) — the spans are opaque to
/// everything outside [`TrieCursor`].
pub type OpenSpans = (bool, Box<[(u32, u32)]>);

/// A sorted-**trie** cursor over one relation's run index: the
/// leapfrog-triejoin face of the sorted columnar postings.
///
/// The runs of an index over `(c1, ..., ck)` are already tries in disguise:
/// entries are sorted lexicographically per column, so the entries sharing a
/// value prefix form one contiguous span per run, and the distinct values of
/// the next column appear in ascending `(OrderKey, ValueId)` order within
/// that span. A `TrieCursor` walks this shape directly — no new storage
/// format — by keeping one `(lo, hi, pos)` span per run per opened column:
///
/// * [`TrieCursor::open`] positions the cursor on the span of an exact value
///   prefix (the columns a join binding already determines);
/// * [`TrieCursor::key`] / [`TrieCursor::seek`] / [`TrieCursor::seek_past`]
///   enumerate the current column's values in ascending pair order,
///   leapfrogging via binary search within each run's span;
/// * [`TrieCursor::descend`] / [`TrieCursor::up`] move between columns,
///   narrowing every run's span to the entries carrying the chosen value;
/// * at full depth [`TrieCursor::leaf_facts`] yields the matching `FactId`s
///   in ascending order (runs cover disjoint ascending insertion ranges, and
///   a copy-on-write base's runs come before the overlay's).
///
/// Values are compared as `(OrderKey, ValueId)` pairs — the runs' sort
/// order. Pair equality coincides with id equality (ids are global interns
/// and a value's order key is a pure function of the value), so an
/// intersection on pairs is an intersection on values.
///
/// A cursor is only handed out by [`Relation::trie_cursor`] when every
/// involved index tail is flushed and (for overlays without their own index)
/// no unindexed overlay rows exist — otherwise the caller must fall back to
/// the probe/scan path. The store state is identical on every worker thread,
/// so the fallback decision is deterministic.
#[derive(Clone, Debug)]
pub struct TrieCursor<'r> {
    /// Columns per entry of the underlying index.
    k: usize,
    /// The composed runs: a copy-on-write base's runs first (strictly
    /// smaller `FactId`s), then the overlay's own.
    runs: Vec<&'r SortedRun>,
    /// One `(lo, hi, pos)` span per run per opened column, flattened: the
    /// last `runs.len()` triples are the current column's frame.
    frames: Vec<(u32, u32, u32)>,
    /// Columns currently bound (prefix columns after `open`, plus one per
    /// `descend`).
    depth: usize,
    /// Scratch for `open`'s prefix pairs (reused across rows).
    pairs: Vec<(OrderKey, ValueId)>,
    /// Memo of [`TrieCursor::open`] spans by prefix: join drivers re-open
    /// the same few prefix values once per delta row, and the underlying
    /// runs are frozen for the cursor's lifetime, so each distinct prefix
    /// pays the per-run binary searches once and every repeat is a hash
    /// lookup. Keyed on the raw prefix ids (`spans[i]` is run `i`'s
    /// `(lo, hi)`).
    open_memo: HashMap<Box<[ValueId]>, OpenSpans>,
}

impl<'r> TrieCursor<'r> {
    pub(crate) fn new(k: usize, runs: Vec<&'r SortedRun>) -> TrieCursor<'r> {
        TrieCursor {
            k,
            runs,
            frames: Vec::new(),
            depth: 0,
            pairs: Vec::new(),
            open_memo: HashMap::new(),
        }
    }

    /// Number of indexed columns (the trie's full depth).
    pub fn arity(&self) -> usize {
        self.k
    }

    /// Install an open-span memo previously [taken](TrieCursor::take_memo)
    /// from a cursor over the **same frozen runs** — the engine hoists memos
    /// into its per-worker [`JoinScratch`](crate::pattern::JoinScratch) so
    /// consecutive chunks of one filter activation (store frozen, identical
    /// run composition) skip the per-run binary searches for prefixes they
    /// already opened. A memo whose span count does not match this cursor's
    /// run count is silently discarded: restoring it would index the wrong
    /// runs.
    pub fn adopt_memo(&mut self, memo: HashMap<Box<[ValueId]>, OpenSpans>) {
        let compatible = memo
            .values()
            .next()
            .is_none_or(|(_, spans)| spans.len() == self.runs.len());
        if compatible {
            self.open_memo = memo;
        }
    }

    /// Take the cursor's open-span memo, leaving an empty one behind. Memos
    /// only ever accelerate [`TrieCursor::open`] — adopting or clearing one
    /// never changes a cursor's results, so the hoist cannot perturb the
    /// bit-identity contract.
    pub fn take_memo(&mut self) -> HashMap<Box<[ValueId]>, OpenSpans> {
        std::mem::take(&mut self.open_memo)
    }

    /// Columns currently bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Position the cursor on the entries whose first `prefix.len()` columns
    /// equal `prefix`, discarding any previous position. Returns `false`
    /// when no entry matches (the cursor is then exhausted at every depth).
    pub fn open(&mut self, prefix: &[ValueId]) -> bool {
        debug_assert!(prefix.len() <= self.k);
        self.frames.clear();
        self.depth = prefix.len();
        if let Some((any, spans)) = self.open_memo.get(prefix) {
            self.frames
                .extend(spans.iter().map(|&(lo, hi)| (lo, hi, lo)));
            return *any;
        }
        self.pairs.clear();
        self.pairs
            .extend(prefix.iter().map(|v| (order_key_of(*v), *v)));
        let mut any = false;
        for run in &self.runs {
            let (lo, hi) = if self.pairs.is_empty() {
                (0, run.facts.len())
            } else {
                run.group_span(self.k, &self.pairs)
            };
            any |= lo < hi;
            self.frames.push((lo as u32, hi as u32, lo as u32));
        }
        self.open_memo.insert(
            prefix.into(),
            (
                any,
                self.frames.iter().map(|&(lo, hi, _)| (lo, hi)).collect(),
            ),
        );
        any
    }

    /// The smallest `(OrderKey, ValueId)` pair at the current column across
    /// all runs, or `None` when the cursor is exhausted at this depth.
    pub fn key(&self) -> Option<(OrderKey, ValueId)> {
        debug_assert!(self.depth < self.k, "key() at leaf depth");
        let base = self.frames.len() - self.runs.len();
        let mut best: Option<(OrderKey, ValueId)> = None;
        for (r, run) in self.runs.iter().enumerate() {
            let (_, hi, pos) = self.frames[base + r];
            if pos < hi {
                let pair = run.entry(self.k, pos as usize)[self.depth];
                best = Some(match best {
                    Some(b) if b <= pair => b,
                    _ => pair,
                });
            }
        }
        best
    }

    /// Advance the current column to the first value `>= target` (pair
    /// order). A no-op for runs already at or past the target.
    pub fn seek(&mut self, target: (OrderKey, ValueId)) {
        self.advance(target, false);
    }

    /// Advance the current column strictly past `target`.
    pub fn seek_past(&mut self, target: (OrderKey, ValueId)) {
        self.advance(target, true);
    }

    fn advance(&mut self, target: (OrderKey, ValueId), past: bool) {
        let base = self.frames.len() - self.runs.len();
        for (r, run) in self.runs.iter().enumerate() {
            let (lo, hi, pos) = self.frames[base + r];
            let d = self.depth;
            let next = lower_bound(pos as usize, hi as usize, |i| {
                let pair = run.entry(self.k, i)[d];
                if past {
                    pair <= target
                } else {
                    pair < target
                }
            });
            self.frames[base + r] = (lo, hi, next as u32);
        }
    }

    /// Bind the current column to `value` (which the caller observed via
    /// [`TrieCursor::key`] after seeking every run to it) and move one
    /// column deeper: every run's span narrows to its entries equal to
    /// `value` at this column.
    pub fn descend(&mut self, value: (OrderKey, ValueId)) {
        debug_assert!(self.depth < self.k);
        let base = self.frames.len() - self.runs.len();
        for (r, run) in self.runs.iter().enumerate() {
            let (_, hi, pos) = self.frames[base + r];
            let d = self.depth;
            let child_hi = lower_bound(pos as usize, hi as usize, |i| {
                run.entry(self.k, i)[d] <= value
            });
            self.frames.push((pos, child_hi as u32, pos));
        }
        self.depth += 1;
    }

    /// Reset the current column's positions to the start of their spans,
    /// undoing any [`TrieCursor::seek`]s at this depth (the spans themselves
    /// are untouched). A leapfrog level calls this on exit so the cursors it
    /// seeked — but never descended — re-enumerate from the start when the
    /// enclosing level advances.
    pub fn rewind(&mut self) {
        let base = self.frames.len() - self.runs.len();
        for frame in &mut self.frames[base..] {
            frame.2 = frame.0;
        }
    }

    /// Undo the innermost [`TrieCursor::descend`], restoring the parent
    /// column's spans and positions.
    pub fn up(&mut self) {
        debug_assert!(self.frames.len() > self.runs.len(), "up() past the root");
        self.frames.truncate(self.frames.len() - self.runs.len());
        self.depth -= 1;
    }

    /// Append the `FactId`s of the entries at the current (full-depth)
    /// position, in ascending order. With set semantics at most one row of
    /// width `arity()` can match a full binding, but a relation holding
    /// wider rows may contribute several — callers matching an atom filter
    /// by row width.
    pub fn leaf_facts(&self, out: &mut Vec<FactId>) {
        debug_assert_eq!(self.depth, self.k, "leaf_facts() above leaf depth");
        let base = self.frames.len() - self.runs.len();
        for (r, run) in self.runs.iter().enumerate() {
            let (lo, hi, _) = self.frames[base + r];
            out.extend_from_slice(&run.facts[lo as usize..hi as usize]);
        }
    }
}

/// A single relation: all rows of one predicate.
///
/// A relation is either **plain** (it owns every row, `base` is `None`) or a
/// **copy-on-write overlay** over a shared, immutable base relation: the base
/// keeps its interned rows *and* its sorted runs/directories behind an `Arc`,
/// the overlay owns only the rows inserted after the snapshot. `FactId`s of
/// base rows are their original positions; overlay rows continue the same id
/// space (`base.len()..`), so probes composing base postings before overlay
/// postings stay ascending by construction — exactly the enumeration order a
/// plain relation with the same insertion history would produce.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    /// The shared immutable snapshot this relation overlays, if any. The
    /// base may itself be an overlay: promoted layers form a chain (oldest
    /// layer at the bottom), and every composed operation walks it.
    base: Option<Arc<Relation>>,
    /// Row table: the single copy of every tuple owned by *this* relation,
    /// in insertion order (overlay rows only, when `base` is set).
    rows: Vec<Box<[ValueId]>>,
    /// Set-semantics dedup: row hash -> ids of rows with that hash. Almost
    /// every bucket has exactly one entry; collisions fall back to comparing
    /// rows in the row table. Covers only this relation's own rows; the
    /// base's dedup map is consulted first.
    dedup: DedupMap,
    /// Dynamic sorted-run indices, one per requested column list. In an
    /// overlay they usually cover only the overlay rows (the base brings its
    /// own runs); a [`SortedIndex::covers_base`] index is the fallback for
    /// column lists the base never indexed.
    indices: Vec<SortedIndex>,
    /// Number of full (base-covering) index builds this overlay performed —
    /// the rebuild work a well-prepared snapshot avoids entirely.
    full_index_builds: u64,
}

impl Relation {
    /// Create an empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty overlay over a shared immutable base: the
    /// copy-on-write snapshot entry point. The base's rows, dedup map and
    /// sorted-run indexes are reused as-is; inserts land in the overlay. The
    /// base may itself be a promoted layer chain (see
    /// [`StoreBase::promote`]).
    pub fn with_base(base: Arc<Relation>) -> Self {
        Relation {
            base: Some(base),
            ..Self::default()
        }
    }

    /// Number of rows contributed by the whole shared base chain (0 for
    /// plain relations).
    pub fn base_row_count(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.len())
    }

    /// Number of immutable layers below this relation's own rows (0 for a
    /// plain relation, k for an overlay of a k-layer chain).
    pub fn layer_depth(&self) -> usize {
        let mut depth = 0;
        let mut base = self.base.as_deref();
        while let Some(b) = base {
            depth += 1;
            base = b.base.as_deref();
        }
        depth
    }

    /// Number of rows owned by this relation itself (everything, for a plain
    /// relation; the copy-on-write overlay otherwise).
    pub fn overlay_row_count(&self) -> usize {
        self.rows.len()
    }

    /// Full (base-covering) index builds this overlay performed because the
    /// base lacked a planned column list. 0 on plain relations.
    pub fn full_index_builds(&self) -> u64 {
        self.full_index_builds
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.base_row_count() + self.rows.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a row; returns its fresh [`FactId`], or `None` if an equal row
    /// is already present (in the shared base or in this relation).
    pub fn insert_row(&mut self, row: Box<[ValueId]>) -> Option<FactId> {
        let base_len = self.base_row_count();
        assert!(
            base_len + self.rows.len() < u32::MAX as usize,
            "relation overflow: FactId space exhausted"
        );
        let hash = row_hash(&row);
        if self.base_chain_contains(hash, &row) {
            return None;
        }
        match self.dedup.entry(hash) {
            Entry::Occupied(mut e) => {
                if e.get()
                    .iter()
                    .any(|id| *self.rows[id.index() - base_len] == *row)
                {
                    return None;
                }
                let id = FactId((base_len + self.rows.len()) as u32);
                e.get_mut().push(id);
                self.index_new_row(id, &row);
                self.rows.push(row);
                Some(id)
            }
            Entry::Vacant(e) => {
                let id = FactId((base_len + self.rows.len()) as u32);
                e.insert(vec![id]);
                self.index_new_row(id, &row);
                self.rows.push(row);
                Some(id)
            }
        }
    }

    /// Keep the already-materialised indices up to date with a new row (the
    /// row joins each index's tail; probes scan the tail, so the index stays
    /// exact without re-sorting per insert).
    fn index_new_row(&mut self, id: FactId, row: &[ValueId]) {
        for index in self.indices.iter_mut() {
            index.push_row(id, row);
        }
    }

    /// Insert a fact (interning its arguments); returns `true` if it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        self.insert_row(fact.intern_args()).is_some()
    }

    /// Insert a batch of rows in order, in one pass: dedup, row table and
    /// every materialised index are updated per row exactly as repeated
    /// [`Relation::insert_row`] calls would, but the relation is resolved
    /// once and the row table grows by one reservation. Returns the number
    /// of rows that were new.
    pub fn insert_rows<I>(&mut self, rows: I) -> usize
    where
        I: IntoIterator<Item = Box<[ValueId]>>,
    {
        let rows = rows.into_iter();
        let (lower, _) = rows.size_hint();
        self.rows.reserve(lower);
        let mut fresh = 0;
        for row in rows {
            if self.insert_row(row).is_some() {
                fresh += 1;
            }
        }
        fresh
    }

    /// Does any layer of the base chain (not this relation's own rows)
    /// contain `row`? Each layer's dedup ids live in that layer's own id
    /// space, so they index its row table offset by its own base length.
    fn base_chain_contains(&self, hash: u64, row: &[ValueId]) -> bool {
        let mut base = self.base.as_deref();
        while let Some(layer) = base {
            let layer_start = layer.base_row_count();
            if layer.dedup.get(&hash).is_some_and(|ids| {
                ids.iter()
                    .any(|id| *layer.rows[id.index() - layer_start] == *row)
            }) {
                return true;
            }
            base = layer.base.as_deref();
        }
        false
    }

    /// Does the relation contain exactly this row?
    pub fn contains_row(&self, row: &[ValueId]) -> bool {
        let hash = row_hash(row);
        if self.base_chain_contains(hash, row) {
            return true;
        }
        let base_len = self.base_row_count();
        self.dedup.get(&hash).is_some_and(|ids| {
            ids.iter()
                .any(|id| *self.rows[id.index() - base_len] == *row)
        })
    }

    /// Does the relation contain exactly this fact?
    pub fn contains(&self, fact: &Fact) -> bool {
        // A value that was never interned cannot occur in any stored row.
        let mut row = Vec::with_capacity(fact.args.len());
        for v in &fact.args {
            match find_value_id(v) {
                Some(id) => row.push(id),
                None => return false,
            }
        }
        self.contains_row(&row)
    }

    /// The row of `id`.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this relation (or its base).
    pub fn row(&self, id: FactId) -> &[ValueId] {
        let i = id.index();
        let mut rel = self;
        loop {
            let layer_start = rel.base_row_count();
            if i >= layer_start {
                return &rel.rows[i - layer_start];
            }
            rel = rel
                .base
                .as_deref()
                .expect("id below the layer boundary implies a base layer");
        }
    }

    /// All rows in insertion order (`FactId(i)` is position `i`): the shared
    /// base chain's rows first (oldest layer at the bottom), then this
    /// relation's own.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[ValueId]> {
        let mut layers: Vec<&Relation> = vec![self];
        let mut base = self.base.as_deref();
        while let Some(b) = base {
            layers.push(b);
            base = b.base.as_deref();
        }
        layers
            .into_iter()
            .rev()
            .flat_map(|layer| layer.rows.iter().map(|r| &**r))
    }

    /// Materialise the fact stored at `id`.
    pub fn fact(&self, predicate: Sym, id: FactId) -> Fact {
        Fact::new_sym(
            predicate,
            self.row(id).iter().map(|v| resolve_value(*v)).collect(),
        )
    }

    /// Position of the index covering exactly `cols`, if materialised.
    fn index_of(&self, cols: &[usize]) -> Option<usize> {
        self.indices.iter().position(|ix| &*ix.cols == cols)
    }

    /// Force construction of the sorted-run index over `cols` (a single
    /// column or a composite prefix, probe-order). If the index already
    /// exists its tail is flushed, so subsequent probes run entirely on
    /// sorted runs — the pre-pass the engine performs before freezing a
    /// store for a parallel batch.
    ///
    /// On a copy-on-write overlay only the **overlay's** tail is ever
    /// flushed; the shared base's runs are immutable and reused as-is. When
    /// the base already carries the index over `cols`, the overlay index
    /// covers just the overlay rows and probes compose the two; when the
    /// base lacks it, a fallback index covering base rows too is built once
    /// (counted in [`Relation::full_index_builds`]).
    pub fn ensure_index(&mut self, cols: &[usize]) {
        if let Some(i) = self.index_of(cols) {
            self.indices[i].flush();
            return;
        }
        let base_len = self.base_row_count();
        let base_has = self.base.as_ref().is_some_and(|b| b.has_index(cols));
        let mut index = SortedIndex::new(cols);
        if let Some(base) = &self.base {
            if !base_has {
                index.covers_base = true;
                self.full_index_builds += 1;
                for (i, row) in base.iter_rows().enumerate() {
                    index.push_row(FactId(i as u32), row);
                }
            }
        }
        for (i, row) in self.rows.iter().enumerate() {
            index.push_row(FactId((base_len + i) as u32), row);
        }
        index.flush();
        self.indices.push(index);
    }

    /// Can probes over `cols` be answered from index structures (this
    /// relation's own, its base chain's, or all composed)? A layer chain is
    /// probeable when every layer below either indexes `cols` itself or is
    /// covered by a descendant's base-covering fallback.
    pub fn has_index(&self, cols: &[usize]) -> bool {
        match (&self.base, self.index_of(cols)) {
            (None, over) => over.is_some(),
            (Some(_), Some(i)) if self.indices[i].covers_base => true,
            (Some(base), _) => base.has_index(cols),
        }
    }

    /// Flush the tails of all materialised indices into sorted runs.
    pub fn flush_indexes(&mut self) {
        for index in self.indices.iter_mut() {
            index.flush();
        }
    }

    /// Probe the index over `cols` without building it: exact match on the
    /// first `prefix.len()` columns plus an optional [`RangeFilter`] on the
    /// following column. `None` on an index miss (the caller falls back to a
    /// scan — the "optimistic" get of the slot-machine join). Postings are
    /// yielded in ascending [`FactId`] order, either borrowed from a single
    /// sorted run or collected into `out`.
    ///
    /// On a copy-on-write overlay the probe **composes** the whole layer
    /// chain's prebuilt runs with the overlay's own index (deeper layers
    /// first — their ids are strictly smaller, so the concatenation stays
    /// ascending). An overlay whose index was never built falls back to a
    /// linear scan of the (usually small) overlay rows, exactly like an
    /// unflushed tail.
    pub fn probe_if_indexed<'r>(
        &'r self,
        cols: &[usize],
        prefix: &[ValueId],
        range: Option<&RangeFilter>,
        out: &mut Vec<FactId>,
    ) -> Option<Probe<'r>> {
        if self.base.is_none() {
            let over = self.index_of(cols).map(|i| &self.indices[i]);
            return over.map(|ix| ix.probe(prefix, range, out));
        }
        if !self.has_index(cols) {
            // Some layer of the chain never indexed these columns and no
            // fallback index covers it: a miss (a partial index alone would
            // be incomplete — it cannot see the other layers' rows).
            return None;
        }
        out.clear();
        let run = self
            .probe_compose(cols, prefix, range, out)
            .expect("has_index implies a composable chain");
        Some(match run {
            Some(run) => Probe::Run(run),
            None => Probe::Buffered,
        })
    }

    /// Chain-recursive core of [`Relation::probe_if_indexed`]: append this
    /// relation's and its whole base chain's matching postings to `out` in
    /// ascending [`FactId`] order. Preserves [`SortedIndex::probe_append`]'s
    /// contract — `Some(Some(run))` means the entire contribution is the
    /// borrowed run group and *nothing* was appended; `Some(None)` means the
    /// contribution (possibly empty) went into `out`; `None` is an index
    /// miss somewhere in the chain.
    fn probe_compose<'r>(
        &'r self,
        cols: &[usize],
        prefix: &[ValueId],
        range: Option<&RangeFilter>,
        out: &mut Vec<FactId>,
    ) -> Option<Option<&'r [FactId]>> {
        let over = self.index_of(cols).map(|i| &self.indices[i]);
        let Some(base) = self.base.as_deref() else {
            return Some(over?.probe_append(prefix, range, out));
        };
        if let Some(ix) = over {
            if ix.covers_base {
                return Some(ix.probe_append(prefix, range, out));
            }
        }
        let start = out.len();
        let base_run = base.probe_compose(cols, prefix, range, out)?;
        let appended_base = out.len() > start;
        let over_start = out.len();
        let over_run = match over {
            Some(oix) => oix.probe_append(prefix, range, out),
            None => {
                self.scan_overlay_rows(cols, prefix, range, out);
                None
            }
        };
        let appended_over = out.len() > over_start;
        Some(match (base_run, over_run) {
            (Some(b), Some(o)) => {
                // Both sides are whole borrowed groups; a single slice
                // cannot represent their concatenation, so buffer both.
                out.extend_from_slice(b);
                out.extend_from_slice(o);
                None
            }
            (Some(b), None) if !appended_over => Some(b),
            (Some(b), None) => {
                // Deeper ids come first: splice the base group in front of
                // what the overlay appended.
                out.splice(over_start..over_start, b.iter().copied());
                None
            }
            (None, Some(o)) if !appended_base => Some(o),
            (None, Some(o)) => {
                out.extend_from_slice(o);
                None
            }
            (None, None) => None,
        })
    }

    /// Append, in insertion (= ascending `FactId`) order, the overlay rows
    /// matching `prefix` on `cols` (plus the optional range on the next
    /// column) — the scan that stands in for a not-yet-built overlay index.
    fn scan_overlay_rows(
        &self,
        cols: &[usize],
        prefix: &[ValueId],
        range: Option<&RangeFilter>,
        out: &mut Vec<FactId>,
    ) {
        let base_len = self.base_row_count();
        let p = prefix.len();
        for (i, row) in self.rows.iter().enumerate() {
            if cols.iter().any(|c| *c >= row.len()) {
                continue;
            }
            if cols[..p].iter().zip(prefix).all(|(c, v)| row[*c] == *v)
                && range.is_none_or(|r| r.matches(row[cols[p]]))
            {
                out.push(FactId((base_len + i) as u32));
            }
        }
    }

    /// Look up rows whose column `col` equals `value`, building the dynamic
    /// index for that column on first use.
    pub fn lookup(&mut self, col: usize, value: ValueId) -> Vec<FactId> {
        self.ensure_index(&[col]);
        self.lookup_if_indexed(col, value)
            .expect("index was just built")
    }

    /// Like [`Relation::lookup`] but without building a missing index
    /// (returns `None` on an index miss). Single-column convenience over
    /// [`Relation::probe_if_indexed`].
    pub fn lookup_if_indexed(&self, col: usize, value: ValueId) -> Option<Vec<FactId>> {
        let mut out = Vec::new();
        let probe = self.probe_if_indexed(&[col], &[value], None, &mut out)?;
        Some(match probe {
            Probe::Run(ids) => ids.to_vec(),
            Probe::Buffered => out,
        })
    }

    /// Number of dynamic indices currently materialised (an overlay counts
    /// its base chain's indexes too; a column list indexed in several layers
    /// counts once).
    pub fn index_count(&self) -> usize {
        self.indexed_col_lists().len()
    }

    /// The distinct column lists indexed anywhere in this relation's layer
    /// chain, discovery order (own indexes first, then deeper layers').
    pub fn indexed_col_lists(&self) -> Vec<Box<[usize]>> {
        let mut lists: Vec<Box<[usize]>> = Vec::new();
        let mut layer = Some(self);
        while let Some(rel) = layer {
            for ix in &rel.indices {
                if !lists.iter().any(|c| **c == *ix.cols) {
                    lists.push(ix.cols.clone());
                }
            }
            layer = rel.base.as_deref();
        }
        lists
    }

    /// Fold one index's run directories and tail into `stats`.
    fn accumulate_stats(index: &SortedIndex, stats: &mut IndexStats) {
        for run in &index.runs {
            stats.entries += run.facts.len();
            stats.distinct_keys += run.dir.len();
        }
        stats.entries += index.tail_facts.len();
        stats.distinct_keys += index.tail_facts.len();
    }

    /// Per-layer contribution of this relation (not its base chain) to the
    /// stats of the index over `cols`: the layer's own directories, or one
    /// key per row when the layer never indexed `cols` (probes scan those
    /// rows, like an unflushed tail).
    fn layer_stats(&self, cols: &[usize]) -> IndexStats {
        let mut stats = IndexStats::default();
        match self.index_of(cols) {
            Some(i) => Self::accumulate_stats(&self.indices[i], &mut stats),
            None => {
                stats.entries += self.rows.len();
                stats.distinct_keys += self.rows.len();
            }
        }
        stats
    }

    /// Run-directory statistics of the index over `cols`, if materialised.
    /// `None` on an index miss, like [`Relation::probe_if_indexed`]. On an
    /// overlay every layer's directories are summed; rows a layer never
    /// indexed count as one key each, like an unflushed tail.
    pub fn index_stats(&self, cols: &[usize]) -> Option<IndexStats> {
        let per_layer = self.index_stats_per_layer(cols)?;
        let mut stats = IndexStats::default();
        for layer in per_layer {
            stats.entries += layer.entries;
            stats.distinct_keys += layer.distinct_keys;
        }
        Some(stats)
    }

    /// Like [`Relation::index_stats`] but itemised per layer, deepest layer
    /// first and this relation's own contribution last — the composition a
    /// probe actually walks. `None` on an index miss anywhere in the chain.
    pub fn index_stats_per_layer(&self, cols: &[usize]) -> Option<Vec<IndexStats>> {
        if !self.has_index(cols) {
            return None;
        }
        if let Some(i) = self.index_of(cols) {
            if self.base.is_none() || self.indices[i].covers_base {
                // One covering index: the whole chain reads as one layer.
                let mut stats = IndexStats::default();
                Self::accumulate_stats(&self.indices[i], &mut stats);
                return Some(vec![stats]);
            }
        }
        let mut per_layer = self
            .base
            .as_deref()
            .expect("has_index on a plain relation implies an own index")
            .index_stats_per_layer(cols)?;
        per_layer.push(self.layer_stats(cols));
        Some(per_layer)
    }

    /// A [`TrieCursor`] over the sorted runs of the index over `cols`, for
    /// leapfrog-triejoin probing. Composes exactly like
    /// [`Relation::probe_if_indexed`]: a plain relation walks its own runs;
    /// an overlay walks its base-covering fallback index if it built one,
    /// and otherwise the whole layer chain's runs deepest-first followed by
    /// the overlay's own — deeper `FactId`s are strictly smaller, so leaf
    /// enumeration stays ascending.
    ///
    /// Returns `None` — the caller falls back to the binary probe/scan path
    /// — when the index is missing in some layer, when any involved tail is
    /// unflushed, or when unindexed overlay rows exist (a trie walk cannot
    /// see either). The engine's `ensure_index` pre-pass and
    /// [`StoreBase::promote`]'s per-layer index mirroring make all three
    /// conditions false on the hot path.
    pub fn trie_cursor(&self, cols: &[usize]) -> Option<TrieCursor<'_>> {
        let mut runs: Vec<&SortedRun> = Vec::new();
        self.collect_trie_runs(cols, &mut runs)?;
        Some(TrieCursor::new(cols.len(), runs))
    }

    /// Chain-recursive run collection for [`Relation::trie_cursor`]:
    /// deepest layer's runs first. `None` when any layer cannot contribute
    /// fully-sorted runs.
    fn collect_trie_runs<'r>(
        &'r self,
        cols: &[usize],
        runs: &mut Vec<&'r SortedRun>,
    ) -> Option<()> {
        fn sorted_runs(ix: &SortedIndex) -> Option<&SortedIndex> {
            ix.tail_facts.is_empty().then_some(ix)
        }
        let over = self.index_of(cols).map(|i| &self.indices[i]);
        match self.base.as_deref() {
            None => {
                runs.extend(sorted_runs(over?)?.runs.iter());
            }
            Some(base) => {
                if let Some(ix) = over {
                    if ix.covers_base {
                        runs.extend(sorted_runs(ix)?.runs.iter());
                        return Some(());
                    }
                }
                base.collect_trie_runs(cols, runs)?;
                match over {
                    Some(oix) => runs.extend(sorted_runs(oix)?.runs.iter()),
                    None if self.rows.is_empty() => {}
                    None => return None,
                }
            }
        }
        Some(())
    }

    /// Materialise all facts of this relation under `predicate`, in
    /// insertion order.
    pub fn to_facts(&self, predicate: Sym) -> Vec<Fact> {
        self.iter_rows()
            .map(|row| Fact::new_sym(predicate, resolve_values(row)))
            .collect()
    }

    /// Merge this relation's whole layer chain into one **plain** relation
    /// with identical contents: same rows under the same [`FactId`]s
    /// (rows re-insert in [`Relation::iter_rows`] order — deepest layer
    /// first, which is exactly ascending-id insertion order — and layers
    /// never share a row, so the sequentially assigned ids reproduce the
    /// originals), and a freshly built, flushed sorted-run index for every
    /// column list indexed anywhere in the chain. Long-lived sessions use
    /// this to keep the layer depth — and thus per-probe composition work —
    /// bounded (see `StoreBase::compact`); retained overlays of the old
    /// chain keep their `Arc`s and are unaffected.
    pub fn compacted(&self) -> Relation {
        let mut flat = Relation::new();
        flat.rows.reserve(self.len());
        for row in self.iter_rows() {
            let inserted = flat.insert_row(row.into());
            debug_assert!(inserted.is_some(), "layers never share a row");
        }
        for cols in self.indexed_col_lists() {
            flat.ensure_index(&cols);
        }
        flat.flush_indexes();
        flat
    }
}

/// A buffered batch of derived rows, grouped by predicate in emission order.
///
/// This is the merge currency of the parallel sweep: each filter's admitted
/// head rows accumulate here instead of being inserted one relation lookup
/// at a time, and [`FactStore::apply_delta`] then applies the whole batch in
/// one pass — one `relation_mut` resolution per predicate, with per-row
/// dedup and index maintenance preserved exactly (rows are applied in the
/// order they were pushed, so `FactId` assignment matches insert-as-you-go).
#[derive(Clone, Debug, Default)]
pub struct DeltaBatch {
    /// predicate -> rows pushed for it, in push order. A `Vec` (not a map)
    /// keyed by first-push order keeps the batch allocation-light for the
    /// common one-or-two-head-predicates case.
    buffers: Vec<(Sym, Vec<Box<[ValueId]>>)>,
    rows: usize,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one derived row for `predicate`.
    pub fn push(&mut self, predicate: Sym, row: Box<[ValueId]>) {
        self.rows += 1;
        match self.buffers.iter_mut().find(|(p, _)| *p == predicate) {
            Some((_, rows)) => rows.push(row),
            None => self.buffers.push((predicate, vec![row])),
        }
    }

    /// Total number of buffered rows (before dedup).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The predicates with at least one buffered row, in first-push order.
    pub fn predicates(&self) -> impl Iterator<Item = Sym> + '_ {
        self.buffers.iter().map(|(p, _)| *p)
    }
}

/// The fact store: a map from predicate symbols to relations.
#[derive(Clone, Debug, Default)]
pub struct FactStore {
    relations: BTreeMap<Sym, Relation>,
}

impl FactStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a store from an initial set of facts.
    pub fn from_facts<I: IntoIterator<Item = Fact>>(facts: I) -> Self {
        let mut store = Self::new();
        for f in facts {
            store.insert(f);
        }
        store
    }

    /// Insert a fact; returns `true` if it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        self.relations
            .entry(fact.predicate)
            .or_default()
            .insert(fact)
    }

    /// Does the store contain the fact?
    pub fn contains(&self, fact: &Fact) -> bool {
        self.relations
            .get(&fact.predicate)
            .map(|r| r.contains(fact))
            .unwrap_or(false)
    }

    /// The relation of `predicate`, if any facts exist for it.
    pub fn relation(&self, predicate: Sym) -> Option<&Relation> {
        self.relations.get(&predicate)
    }

    /// Mutable access to the relation of `predicate`, creating it if needed.
    pub fn relation_mut(&mut self, predicate: Sym) -> &mut Relation {
        self.relations.entry(predicate).or_default()
    }

    /// Apply a merged delta batch in one pass: for each predicate, resolve
    /// its relation once and bulk-insert the buffered rows (dedup, row table
    /// and postings updates per row, in push order — `FactId` assignment is
    /// identical to inserting the rows one at a time). Consumes the batch
    /// and returns the number of rows that were new.
    pub fn apply_delta(&mut self, batch: DeltaBatch) -> usize {
        let mut fresh = 0;
        for (predicate, rows) in batch.buffers {
            fresh += self.relation_mut(predicate).insert_rows(rows);
        }
        fresh
    }

    /// Facts of a predicate, materialised in insertion order (empty if
    /// unknown). This is the API boundary: internally everything stays in
    /// row form.
    pub fn facts_of(&self, predicate: Sym) -> Vec<Fact> {
        self.relations
            .get(&predicate)
            .map(|r| r.to_facts(predicate))
            .unwrap_or_default()
    }

    /// Iterate over all facts of all predicates, predicate-ordered,
    /// materialising each on the fly.
    pub fn iter(&self) -> impl Iterator<Item = Fact> + '_ {
        self.relations
            .iter()
            .flat_map(|(p, r)| (0..r.len()).map(|i| r.fact(*p, FactId(i as u32))))
    }

    /// All predicates with at least one fact.
    pub fn predicates(&self) -> Vec<Sym> {
        self.relations.keys().copied().collect()
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of facts of a predicate.
    pub fn count(&self, predicate: Sym) -> usize {
        self.relations
            .get(&predicate)
            .map(Relation::len)
            .unwrap_or(0)
    }

    /// Rows contributed by shared copy-on-write bases across all relations
    /// (0 for a plain store) — the interned EDB rows a snapshot run reused
    /// instead of rebuilding.
    pub fn base_rows(&self) -> usize {
        self.relations.values().map(Relation::base_row_count).sum()
    }

    /// Rows owned by the relations themselves: everything for a plain
    /// store, the copy-on-write overlays otherwise.
    pub fn overlay_rows(&self) -> usize {
        self.relations
            .values()
            .map(Relation::overlay_row_count)
            .sum()
    }

    /// Full (base-covering) index rebuilds performed by overlays because a
    /// shared base lacked a planned column list — 0 when the snapshot was
    /// prepared with every planned index.
    pub fn full_index_builds(&self) -> u64 {
        self.relations
            .values()
            .map(Relation::full_index_builds)
            .sum()
    }

    /// Deepest layer chain under any relation of this store (0 when every
    /// relation is plain): the number of immutable layers a probe composes
    /// below the live overlay.
    pub fn max_layer_depth(&self) -> usize {
        self.relations
            .values()
            .map(Relation::layer_depth)
            .max()
            .unwrap_or(0)
    }

    /// Freeze this store into a shareable, immutable EDB base: every
    /// relation's index tails are flushed (so the shared runs are final and
    /// never re-sorted) and wrapped in an [`Arc`]. Overlay stores created
    /// with [`StoreBase::overlay`] reuse the interned rows and the sorted
    /// runs without copying either.
    pub fn freeze(mut self) -> StoreBase {
        for rel in self.relations.values_mut() {
            rel.flush_indexes();
        }
        StoreBase {
            relations: self
                .relations
                .into_iter()
                .map(|(p, r)| (p, Arc::new(r)))
                .collect(),
            stamp: 0,
        }
    }
}

/// A shareable, immutable EDB snapshot: the copy-on-write base of a query
/// session. Holds one `Arc`'d [`Relation`] per predicate — interned rows,
/// dedup map and pre-flushed sorted runs included — and hands out cheap
/// [`StoreBase::overlay`] stores whose relations write only to their
/// private overlays. Between runs (when no overlay is alive) the owner can
/// still extend the base's *index set* in place via
/// [`StoreBase::ensure_index`]; the rows themselves are immutable for the
/// lifetime of the snapshot.
///
/// Appending facts does not mutate existing layers either:
/// [`StoreBase::promote`] freezes a mutated overlay into a **new immutable
/// layer** on top of its snapshot, so relations grow as layer chains (oldest
/// base at the bottom, most recent append layer on top) and every composed
/// probe yields postings deepest-layer-first, staying [`FactId`]-ascending.
/// Each promotion bumps the base's [`StoreBase::stamp`], the invalidation
/// key for anything computed against a particular layering.
#[derive(Clone, Debug, Default)]
pub struct StoreBase {
    relations: BTreeMap<Sym, Arc<Relation>>,
    /// Monotonic layer stamp: bumped by every [`StoreBase::promote`] that
    /// adds a layer.
    stamp: u64,
}

impl StoreBase {
    /// A mutable copy-on-write store over this base: every relation starts
    /// as an empty overlay sharing the base's rows and indexes.
    pub fn overlay(&self) -> FactStore {
        FactStore {
            relations: self
                .relations
                .iter()
                .map(|(p, r)| (*p, Relation::with_base(Arc::clone(r))))
                .collect(),
        }
    }

    /// Build (or flush) the index over `cols` on the base relation of
    /// `predicate`. Returns `true` when a new index was built.
    ///
    /// When the session is the sole owner of the relation (no overlay store
    /// alive) the index is built in place. When a caller still holds
    /// overlays of an earlier snapshot — retained `QueryResult` stores, for
    /// instance — a *fresh* build copies the relation once
    /// ([`Arc::make_mut`]) and indexes the copy: later overlays share the
    /// newly indexed base, the retained ones keep their original snapshot
    /// untouched. One relation copy per new plan shape is strictly cheaper
    /// than the per-query full fallback builds every future overlay would
    /// otherwise pay; a mere tail flush is never worth a copy and stays a
    /// no-op while shared (frozen bases have empty tails anyway).
    pub fn ensure_index(&mut self, predicate: Sym, cols: &[usize]) -> bool {
        let Some(arc) = self.relations.get_mut(&predicate) else {
            return false;
        };
        if arc.has_index(cols) {
            if let Some(rel) = Arc::get_mut(arc) {
                rel.ensure_index(cols);
            }
            return false;
        }
        Arc::make_mut(arc).ensure_index(cols);
        true
    }

    /// Promote a mutated overlay store (created by [`StoreBase::overlay`])
    /// into this base: every relation that gained rows becomes a new
    /// immutable layer on top of its snapshot, with its index tails flushed
    /// and an own per-layer index built for every column list the chain
    /// below already indexes — so composed probes and trie cursors keep
    /// running entirely on sorted runs. Untouched relations keep their
    /// existing `Arc` (no new layer); predicates new in `store` enter as
    /// plain single-layer relations.
    ///
    /// Returns the number of relations that gained a layer; when that is
    /// non-zero the [`StoreBase::stamp`] is bumped.
    pub fn promote(&mut self, store: FactStore) -> usize {
        let mut promoted = 0;
        for (p, mut rel) in store.relations {
            if rel.overlay_row_count() == 0 {
                continue;
            }
            for cols in rel.indexed_col_lists() {
                rel.ensure_index(&cols);
            }
            rel.flush_indexes();
            promoted += 1;
            self.relations.insert(p, Arc::new(rel));
        }
        if promoted > 0 {
            self.stamp += 1;
        }
        promoted
    }

    /// Monotonic layer stamp: bumped every time [`StoreBase::promote`] adds
    /// a layer. Cached artefacts keyed to a stamp (per-plan ensure-index
    /// passes, materialised instances) are invalid once it moves.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Force the stamp forward without promoting a layer — the
    /// memo-invalidation hammer of the session's poison-heal policy: after
    /// a panic that may have interrupted a promotion mid-flight, everything
    /// keyed to the old stamp (ensure-index memos, cone entries, live
    /// materialised instances) must go stale at once rather than silently
    /// reuse half-promoted state.
    pub fn bump_stamp(&mut self) {
        self.stamp += 1;
    }

    /// Merge every relation whose layer chain exceeds `max_layers` back
    /// into a single plain snapshot ([`Relation::compacted`]): same rows,
    /// same [`FactId`]s, every indexed column list rebuilt as one flushed
    /// covering index. Returns the number of relations compacted.
    ///
    /// Compaction is **content-preserving**, so the [`StoreBase::stamp`] is
    /// *not* bumped: results, memos and caches keyed to the stamp stay
    /// valid (the rebuilt covering indexes answer every probe the layered
    /// indexes did). Retained overlay stores keep `Arc`s of the old chains
    /// and are unaffected. This is what keeps per-probe layer composition
    /// bounded on a long-lived reasoning server that appends forever.
    pub fn compact(&mut self, max_layers: usize) -> usize {
        if max_layers == 0 {
            return 0;
        }
        let mut compacted = 0;
        for arc in self.relations.values_mut() {
            if 1 + arc.layer_depth() > max_layers {
                *arc = Arc::new(arc.compacted());
                compacted += 1;
            }
        }
        compacted
    }

    /// Deepest layer chain across relations (1 = all plain, k = some
    /// relation composes k layers). 1 on an empty base.
    pub fn layer_count(&self) -> usize {
        self.relations
            .values()
            .map(|r| 1 + r.layer_depth())
            .max()
            .unwrap_or(1)
    }

    /// Total promoted layers beyond each relation's original snapshot,
    /// summed across relations — the `--stats` layer counter.
    pub fn promoted_layers(&self) -> usize {
        self.relations.values().map(|r| r.layer_depth()).sum()
    }

    /// The base relation of `predicate`, if any facts exist for it.
    pub fn relation(&self, predicate: Sym) -> Option<&Relation> {
        self.relations.get(&predicate).map(Arc::as_ref)
    }

    /// Every relation of the snapshot, in predicate order.
    pub fn relations(&self) -> impl Iterator<Item = (Sym, &Relation)> {
        self.relations.iter().map(|(p, r)| (*p, r.as_ref()))
    }

    /// Total number of facts in the snapshot.
    pub fn len(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl FromIterator<Fact> for FactStore {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Self {
        Self::from_facts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn own(a: &str, b: &str, w: f64) -> Fact {
        Fact::new("Own", vec![a.into(), b.into(), Value::Float(w)])
    }

    #[test]
    fn set_semantics() {
        let mut store = FactStore::new();
        assert!(store.insert(own("a", "b", 0.6)));
        assert!(!store.insert(own("a", "b", 0.6)));
        assert!(store.insert(own("a", "b", 0.7)));
        assert_eq!(store.len(), 2);
        assert!(store.contains(&own("a", "b", 0.6)));
        assert!(!store.contains(&own("z", "b", 0.6)));
    }

    #[test]
    fn dynamic_index_is_built_on_first_lookup_and_maintained() {
        let mut store = FactStore::new();
        store.insert(own("a", "b", 0.6));
        store.insert(own("a", "c", 0.2));
        store.insert(own("d", "c", 0.9));
        let rel = store.relation_mut(intern("Own"));
        assert_eq!(rel.index_count(), 0);
        let hits = rel.lookup(0, Value::str("a").interned());
        assert_eq!(hits.len(), 2);
        assert_eq!(rel.index_count(), 1);
        // inserting after the index exists keeps it consistent (tail path)
        rel.insert(own("a", "e", 0.1));
        assert_eq!(rel.lookup(0, Value::str("a").interned()).len(), 3);
        // optimistic lookup on a non-indexed column reports a miss
        assert!(rel
            .lookup_if_indexed(1, Value::str("c").interned())
            .is_none());
        assert!(rel
            .lookup_if_indexed(0, Value::str("zzz").interned())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn composite_probe_matches_both_columns_in_one_lookup() {
        let mut rel = Relation::new();
        rel.insert(own("a", "b", 0.6));
        rel.insert(own("a", "c", 0.2));
        rel.insert(own("d", "b", 0.9));
        rel.insert(own("a", "b", 0.3));
        rel.ensure_index(&[0, 1]);
        let key = [Value::str("a").interned(), Value::str("b").interned()];
        let mut scratch = Vec::new();
        let probe = rel
            .probe_if_indexed(&[0, 1], &key, None, &mut scratch)
            .unwrap();
        assert_eq!(probe.as_slice(&scratch), &[FactId(0), FactId(3)]);
        // prefix probe: only the first column bound
        let probe = rel
            .probe_if_indexed(&[0, 1], &key[..1], None, &mut scratch)
            .unwrap();
        assert_eq!(probe.as_slice(&scratch), &[FactId(0), FactId(1), FactId(3)]);
    }

    #[test]
    fn range_probe_answers_comparisons_from_the_index() {
        let mut rel = Relation::new();
        for (i, w) in [0.1, 0.9, 0.5, 0.7, 0.3].iter().enumerate() {
            rel.insert(own(&format!("c{i}"), "t", *w));
        }
        // a labelled null in the range column never satisfies an ordering
        rel.insert(Fact::new(
            "Own",
            vec!["c9".into(), "t".into(), Value::Null(NullId(77))],
        ));
        rel.ensure_index(&[2]);
        let mut scratch = Vec::new();
        let gt = RangeFilter::new(CmpOp::Gt, Value::Float(0.5).interned());
        let probe = rel
            .probe_if_indexed(&[2], &[], Some(&gt), &mut scratch)
            .unwrap();
        assert_eq!(probe.as_slice(&scratch), &[FactId(1), FactId(3)]);
        let le = RangeFilter::new(CmpOp::Le, Value::Float(0.5).interned());
        let probe = rel
            .probe_if_indexed(&[2], &[], Some(&le), &mut scratch)
            .unwrap();
        assert_eq!(probe.as_slice(&scratch), &[FactId(0), FactId(2), FactId(4)]);
        // composite prefix + range: Own("c1", _, w > 0.5)
        rel.ensure_index(&[0, 2]);
        let probe = rel
            .probe_if_indexed(
                &[0, 2],
                &[Value::str("c1").interned()],
                Some(&gt),
                &mut scratch,
            )
            .unwrap();
        assert_eq!(probe.as_slice(&scratch), &[FactId(1)]);
    }

    #[test]
    fn probes_see_unflushed_tail_rows() {
        let mut rel = Relation::new();
        rel.insert(own("a", "b", 0.6));
        rel.ensure_index(&[2]);
        // Inserted after the flush: lives in the tail until the next ensure.
        rel.insert(own("c", "d", 0.8));
        let mut scratch = Vec::new();
        let gt = RangeFilter::new(CmpOp::Gt, Value::Float(0.5).interned());
        let probe = rel
            .probe_if_indexed(&[2], &[], Some(&gt), &mut scratch)
            .unwrap();
        assert_eq!(probe.as_slice(&scratch), &[FactId(0), FactId(1)]);
        // flushing merges the tail into the runs without changing results
        rel.ensure_index(&[2]);
        let probe = rel
            .probe_if_indexed(&[2], &[], Some(&gt), &mut scratch)
            .unwrap();
        assert_eq!(probe.as_slice(&scratch), &[FactId(0), FactId(1)]);
    }

    #[test]
    fn index_stats_report_group_widths() {
        let mut rel = Relation::new();
        // column 0 has 2 distinct keys over 6 rows (mean width 3), column 1
        // has 6 distinct keys (mean width 1).
        for i in 0..6 {
            rel.insert(Fact::new(
                "P",
                vec![Value::Int((i % 2) as i64), Value::Int(i as i64)],
            ));
        }
        assert!(
            rel.index_stats(&[0]).is_none(),
            "unbuilt index has no stats"
        );
        rel.ensure_index(&[0]);
        rel.ensure_index(&[1]);
        let wide = rel.index_stats(&[0]).unwrap();
        let narrow = rel.index_stats(&[1]).unwrap();
        assert_eq!(wide.entries, 6);
        assert_eq!(wide.distinct_keys, 2);
        assert_eq!(wide.mean_group_width(), 3.0);
        assert_eq!(narrow.distinct_keys, 6);
        assert_eq!(narrow.mean_group_width(), 1.0);
        // tail rows count as one key each until the next flush
        rel.insert(Fact::new("P", vec![Value::Int(0), Value::Int(99)]));
        let with_tail = rel.index_stats(&[0]).unwrap();
        assert_eq!(with_tail.entries, 7);
        assert_eq!(with_tail.distinct_keys, 3);
        // after a flush the new row lives in its own run (too small to be
        // size-tier merged), so its key still counts once per run it spans
        rel.ensure_index(&[0]);
        assert_eq!(rel.index_stats(&[0]).unwrap().distinct_keys, 3);
        assert_eq!(rel.index_stats(&[0]).unwrap().entries, 7);
    }

    #[test]
    fn facts_of_and_counts() {
        let store: FactStore = vec![
            own("a", "b", 0.6),
            Fact::new("Company", vec!["a".into()]),
            Fact::new("Company", vec!["b".into()]),
        ]
        .into_iter()
        .collect();
        assert_eq!(store.count(intern("Company")), 2);
        assert_eq!(store.count(intern("Own")), 1);
        assert_eq!(store.count(intern("Missing")), 0);
        assert_eq!(store.facts_of(intern("Company")).len(), 2);
        assert_eq!(store.predicates().len(), 2);
        assert_eq!(store.iter().count(), 3);
    }

    #[test]
    fn lookup_by_position_returns_insertion_ids() {
        let mut rel = Relation::new();
        rel.insert(own("a", "b", 0.6));
        rel.insert(own("c", "b", 0.3));
        let hits = rel.lookup(1, Value::str("b").interned());
        assert_eq!(hits, vec![FactId(0), FactId(1)]);
        assert_eq!(rel.row(FactId(1))[0], Value::str("c").interned());
        // materialisation round-trips through the interner
        assert_eq!(rel.fact(intern("Own"), FactId(1)), own("c", "b", 0.3));
    }

    #[test]
    fn nulls_are_valid_index_keys() {
        let mut rel = Relation::new();
        let n = Value::Null(NullId(7));
        rel.insert(Fact::new("PSC", vec!["x".into(), n.clone()]));
        rel.insert(Fact::new("PSC", vec!["y".into(), n.clone()]));
        assert_eq!(rel.lookup(1, n.interned()).len(), 2);
    }

    #[test]
    fn rows_are_stored_once_and_borrowable() {
        let mut rel = Relation::new();
        assert!(rel.insert(own("a", "b", 0.5)));
        assert!(!rel.insert(own("a", "b", 0.5)));
        let row = rel.row(FactId(0)).to_vec();
        assert!(rel.contains_row(&row));
        assert_eq!(rel.iter_rows().count(), 1);
        // the exact-probe fast path borrows the run's postings, no clone
        rel.ensure_index(&[0]);
        let mut scratch = Vec::new();
        match rel
            .probe_if_indexed(&[0], &row[..1], None, &mut scratch)
            .unwrap()
        {
            Probe::Run(ids) => assert_eq!(ids, &[FactId(0)]),
            Probe::Buffered => panic!("single-run exact probe must borrow"),
        }
    }

    #[test]
    fn delta_batch_applies_like_insert_as_you_go() {
        let rows: Vec<(&str, Vec<Value>)> = vec![
            ("P", vec!["a".into(), 1i64.into()]),
            ("Q", vec!["b".into()]),
            ("P", vec!["a".into(), 2i64.into()]),
            ("P", vec!["a".into(), 1i64.into()]), // duplicate
            ("Q", vec!["c".into()]),
        ];
        // Reference: one insert per fact.
        let mut reference = FactStore::new();
        reference.relation_mut(intern("P")).ensure_index(&[0]);
        for (p, args) in &rows {
            reference.insert(Fact::new(p, args.clone()));
        }
        // Batched: same rows through a DeltaBatch.
        let mut batched = FactStore::new();
        batched.relation_mut(intern("P")).ensure_index(&[0]);
        let mut delta = DeltaBatch::new();
        for (p, args) in &rows {
            delta.push(intern(p), Fact::new(p, args.clone()).intern_args());
        }
        assert_eq!(delta.len(), 5);
        assert_eq!(delta.predicates().count(), 2);
        let fresh = batched.apply_delta(delta);
        assert_eq!(fresh, 4, "the duplicate row must be deduplicated");
        // Same contents, same FactId order, same maintained indices.
        for pred in [intern("P"), intern("Q")] {
            assert_eq!(batched.facts_of(pred), reference.facts_of(pred));
        }
        let key = Value::str("a").interned();
        assert_eq!(
            batched
                .relation(intern("P"))
                .unwrap()
                .lookup_if_indexed(0, key),
            reference
                .relation(intern("P"))
                .unwrap()
                .lookup_if_indexed(0, key),
        );
    }

    #[test]
    fn insert_rows_counts_only_fresh_rows() {
        let mut rel = Relation::new();
        rel.insert(own("a", "b", 0.6));
        let batch: Vec<Box<[ValueId]>> = vec![
            own("a", "b", 0.6).intern_args(), // already present
            own("c", "d", 0.5).intern_args(),
            own("c", "d", 0.5).intern_args(), // in-batch duplicate
        ];
        assert_eq!(rel.insert_rows(batch), 1);
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn heterogeneous_arity_rows_coexist() {
        // no schema enforcement at this layer: rows of different arity under
        // one predicate must not confuse dedup or indices
        let mut rel = Relation::new();
        assert!(rel.insert(Fact::new("P", vec![1i64.into()])));
        assert!(rel.insert(Fact::new("P", vec![1i64.into(), 2i64.into()])));
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.lookup(1, Value::Int(2).interned()), vec![FactId(1)]);
    }

    /// A base/overlay pair and a plain relation with the same insertion
    /// history must be observationally identical: same `FactId`s, same
    /// probe results, same dedup decisions.
    #[test]
    fn overlay_composes_with_base_bit_identically() {
        let facts: Vec<Fact> = (0..20)
            .map(|i| {
                own(
                    &format!("c{}", i % 4),
                    &format!("t{}", i % 3),
                    i as f64 / 20.0,
                )
            })
            .collect();
        let (edb, idb) = facts.split_at(12);

        // Plain reference: everything inserted into one relation.
        let mut plain = Relation::new();
        plain.ensure_index(&[0]);
        plain.ensure_index(&[0, 1]);
        for f in facts.iter() {
            plain.insert(f.clone());
        }
        plain.ensure_index(&[0]);
        plain.ensure_index(&[0, 1]);

        // Snapshot: EDB frozen with the same indexes, IDB in the overlay.
        let mut base = Relation::new();
        base.ensure_index(&[0]);
        base.ensure_index(&[0, 1]);
        for f in edb.iter() {
            base.insert(f.clone());
        }
        base.flush_indexes();
        let mut overlay = Relation::with_base(Arc::new(base));
        for f in idb.iter() {
            overlay.insert(f.clone());
        }
        overlay.ensure_index(&[0]);
        overlay.ensure_index(&[0, 1]);

        assert_eq!(overlay.len(), plain.len());
        assert_eq!(overlay.base_row_count(), 12);
        assert_eq!(overlay.full_index_builds(), 0);
        for i in 0..plain.len() {
            assert_eq!(overlay.row(FactId(i as u32)), plain.row(FactId(i as u32)));
        }
        // duplicates across the base boundary are rejected
        assert!(!overlay.insert(edb[0].clone()));
        assert!(!overlay.insert(idb[0].clone()));
        assert!(overlay.contains(&edb[3]));
        // single-column, composite and range probes agree exactly
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        for c in ["c0", "c1", "c2", "c3"] {
            let key = [Value::str(c).interned(), Value::str("t1").interned()];
            for (cols, k) in [(&[0usize][..], 1usize), (&[0usize, 1][..], 2)] {
                let a = plain
                    .probe_if_indexed(cols, &key[..k], None, &mut s1)
                    .unwrap()
                    .as_slice(&s1)
                    .to_vec();
                let b = overlay
                    .probe_if_indexed(cols, &key[..k], None, &mut s2)
                    .unwrap()
                    .as_slice(&s2)
                    .to_vec();
                assert_eq!(a, b, "probe diverges on {cols:?} {c}");
            }
        }
        assert_eq!(
            plain.index_stats(&[0, 1]).map(|s| s.entries),
            overlay.index_stats(&[0, 1]).map(|s| s.entries)
        );
    }

    /// Probes against a base index with no overlay index yet fall back to
    /// scanning the overlay rows — like an unflushed tail — and a base
    /// without the index triggers exactly one full fallback build.
    #[test]
    fn overlay_without_index_scans_and_full_builds_are_counted() {
        let mut base = Relation::new();
        base.ensure_index(&[1]);
        base.insert(own("a", "b", 0.1));
        base.insert(own("c", "b", 0.2));
        let base = Arc::new(base);

        let mut overlay = Relation::with_base(Arc::clone(&base));
        overlay.insert(own("d", "b", 0.3));
        // no overlay index over [1] yet: base runs + overlay scan compose
        let mut scratch = Vec::new();
        let probe = overlay
            .probe_if_indexed(&[1], &[Value::str("b").interned()], None, &mut scratch)
            .unwrap();
        assert_eq!(probe.as_slice(&scratch), &[FactId(0), FactId(1), FactId(2)]);
        // a column list the base never indexed: miss first, then one full
        // fallback build that covers the base rows too
        assert!(overlay
            .probe_if_indexed(&[0], &[Value::str("a").interned()], None, &mut scratch)
            .is_none());
        overlay.ensure_index(&[0]);
        assert_eq!(overlay.full_index_builds(), 1);
        assert_eq!(
            overlay.lookup_if_indexed(0, Value::str("a").interned()),
            Some(vec![FactId(0)])
        );
        overlay.ensure_index(&[0]); // flush only, no second build
        assert_eq!(overlay.full_index_builds(), 1);
    }

    #[test]
    fn store_base_overlay_reuses_rows_and_prebuilt_indexes() {
        let mut store = FactStore::new();
        for i in 0..6 {
            store.insert(own(&format!("c{i}"), "t", i as f64 / 6.0));
        }
        store.relation_mut(intern("Own")).ensure_index(&[0]);
        let mut base = store.freeze();
        assert_eq!(base.len(), 6);
        // building an index that exists is not a fresh build
        assert!(!base.ensure_index(intern("Own"), &[0]));
        assert!(base.ensure_index(intern("Own"), &[2]));
        assert!(!base.ensure_index(intern("Missing"), &[0]));

        let mut overlay = base.overlay();
        assert_eq!(overlay.base_rows(), 6);
        assert_eq!(overlay.overlay_rows(), 0);
        assert!(overlay.insert(own("x", "t", 0.9)));
        assert!(!overlay.insert(own("c0", "t", 0.0)), "base dedup holds");
        assert_eq!(overlay.overlay_rows(), 1);
        assert_eq!(overlay.len(), 7);
        // overlay writes never touch the base
        assert_eq!(base.len(), 6);
        // ...and a second overlay starts clean
        assert_eq!(base.overlay().len(), 6);
        // while an overlay store is alive a *fresh* index still builds —
        // the relation is copied once (retained overlays keep their
        // original snapshot) and later overlays share the indexed copy
        assert!(base.ensure_index(intern("Own"), &[1]));
        assert!(
            !overlay.relation(intern("Own")).unwrap().has_index(&[1]),
            "retained overlays must keep their pre-copy snapshot"
        );
        let mut scratch = Vec::new();
        assert!(base
            .overlay()
            .relation(intern("Own"))
            .unwrap()
            .probe_if_indexed(&[1], &[Value::str("t").interned()], None, &mut scratch)
            .is_some());
        drop(overlay);
        // already indexed: not a fresh build, sole ownership or not
        assert!(!base.ensure_index(intern("Own"), &[1]));
        assert_eq!(base.relation(intern("Own")).unwrap().len(), 6);
        assert!(!base.is_empty());
    }

    #[test]
    fn many_inserts_trigger_auto_flush_and_stay_consistent() {
        let mut rel = Relation::new();
        rel.ensure_index(&[0]);
        let n = super::TAIL_AUTO_FLUSH + 100;
        for i in 0..n {
            rel.insert(Fact::new(
                "P",
                vec![Value::Int((i % 7) as i64), Value::Int(i as i64)],
            ));
        }
        let hits = rel.lookup(0, Value::Int(3).interned());
        let expected: Vec<FactId> = (0..n)
            .filter(|i| i % 7 == 3)
            .map(|i| FactId(i as u32))
            .collect();
        assert_eq!(hits, expected, "postings must stay FactId-ordered");
    }

    /// A k-layer chain built through repeated `promote` must be
    /// observationally identical to a plain relation with the same
    /// insertion history: same `FactId`s, probe results, dedup decisions
    /// and trie-cursor leaves.
    #[test]
    fn layer_chain_composes_bit_identically_with_plain() {
        let batches: Vec<Vec<Fact>> = (0..4)
            .map(|b| {
                (0..8)
                    .map(|i| {
                        own(
                            &format!("c{}", (b * 8 + i) % 5),
                            &format!("t{}", i % 3),
                            (b * 8 + i) as f64 / 32.0,
                        )
                    })
                    .collect()
            })
            .collect();

        // Plain reference.
        let mut plain = Relation::new();
        plain.ensure_index(&[0]);
        plain.ensure_index(&[0, 1]);
        for f in batches.iter().flatten() {
            plain.insert(f.clone());
        }
        plain.ensure_index(&[0]);
        plain.ensure_index(&[0, 1]);

        // Layered: first batch frozen, every later batch promoted.
        let mut store = FactStore::new();
        for f in &batches[0] {
            store.insert(f.clone());
        }
        store.relation_mut(intern("Own")).ensure_index(&[0]);
        store.relation_mut(intern("Own")).ensure_index(&[0, 1]);
        let mut base = store.freeze();
        assert_eq!(base.stamp(), 0);
        for batch in &batches[1..] {
            let mut overlay = base.overlay();
            for f in batch {
                overlay.insert(f.clone());
            }
            assert_eq!(base.promote(overlay), 1);
        }
        assert_eq!(base.stamp(), 3);
        assert_eq!(base.layer_count(), 4);
        assert_eq!(base.promoted_layers(), 3);

        let layered = base.relation(intern("Own")).unwrap();
        assert_eq!(layered.len(), plain.len());
        assert_eq!(layered.layer_depth(), 3);
        for i in 0..plain.len() {
            assert_eq!(layered.row(FactId(i as u32)), plain.row(FactId(i as u32)));
        }
        let rows_plain: Vec<_> = plain.iter_rows().collect();
        let rows_layered: Vec<_> = layered.iter_rows().collect();
        assert_eq!(rows_plain, rows_layered);
        // dedup composes across every layer
        let mut probe_overlay = base.overlay();
        let rel = probe_overlay.relation_mut(intern("Own"));
        for batch in &batches {
            assert!(!rel.insert(batch[0].clone()), "chain dedup must hold");
        }
        // probes agree on every key, composite and single-column alike
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        for c in ["c0", "c1", "c2", "c3", "c4"] {
            let key = [Value::str(c).interned(), Value::str("t1").interned()];
            for (cols, k) in [(&[0usize][..], 1usize), (&[0usize, 1][..], 2)] {
                let a = plain
                    .probe_if_indexed(cols, &key[..k], None, &mut s1)
                    .unwrap()
                    .as_slice(&s1)
                    .to_vec();
                let b = layered
                    .probe_if_indexed(cols, &key[..k], None, &mut s2)
                    .unwrap()
                    .as_slice(&s2)
                    .to_vec();
                assert_eq!(a, b, "layered probe diverges on {cols:?} {c}");
            }
        }
        // promoted layers carry their own pre-flushed runs: the trie walk
        // composes them without falling back
        for c in ["c0", "c1", "c2", "c3", "c4"] {
            for t in ["t0", "t1", "t2"] {
                let key = [Value::str(c).interned(), Value::str(t).interned()];
                let mut plain_cursor = plain.trie_cursor(&[0, 1]).unwrap();
                let mut layered_cursor = layered.trie_cursor(&[0, 1]).unwrap();
                let mut plain_leaves = Vec::new();
                let mut layered_leaves = Vec::new();
                if plain_cursor.open(&key) {
                    plain_cursor.leaf_facts(&mut plain_leaves);
                }
                if layered_cursor.open(&key) {
                    layered_cursor.leaf_facts(&mut layered_leaves);
                }
                assert_eq!(
                    plain_leaves, layered_leaves,
                    "trie leaves diverge on {c},{t}"
                );
            }
        }
        assert_eq!(
            plain.index_stats(&[0]).map(|s| s.entries),
            layered.index_stats(&[0]).map(|s| s.entries)
        );
    }

    /// `promote` leaves untouched relations alone (no layer, no stamp
    /// churn), mirrors the chain's index set onto the new layer, and
    /// reports per-layer index stats deepest-first.
    #[test]
    fn promote_mirrors_indexes_and_itemises_per_layer_stats() {
        let mut store = FactStore::new();
        store.insert(Fact::new("E", vec![Value::str("a"), Value::str("b")]));
        store.insert(Fact::new("F", vec![Value::str("x")]));
        store.relation_mut(intern("E")).ensure_index(&[0]);
        let mut base = store.freeze();

        // An overlay that only read (no rows): no promotion, no stamp bump.
        let untouched = base.overlay();
        assert_eq!(base.promote(untouched), 0);
        assert_eq!(base.stamp(), 0);

        let mut overlay = base.overlay();
        overlay.insert(Fact::new("E", vec![Value::str("b"), Value::str("c")]));
        assert_eq!(base.promote(overlay), 1);
        assert_eq!(base.stamp(), 1);
        let e = base.relation(intern("E")).unwrap();
        let f = base.relation(intern("F")).unwrap();
        assert_eq!(e.layer_depth(), 1);
        assert_eq!(f.layer_depth(), 0, "untouched relations gain no layer");
        // the new layer carries its own index over [0]: stats itemise both
        // layers and the trie cursor runs entirely on sorted runs
        let per_layer = e.index_stats_per_layer(&[0]).unwrap();
        assert_eq!(per_layer.len(), 2);
        assert_eq!(per_layer[0].entries, 1);
        assert_eq!(per_layer[1].entries, 1);
        assert!(e.trie_cursor(&[0]).is_some());
        // new predicates enter as plain relations
        let mut overlay = base.overlay();
        overlay.insert(Fact::new("G", vec![Value::str("g")]));
        assert_eq!(base.promote(overlay), 1);
        assert_eq!(base.relation(intern("G")).unwrap().layer_depth(), 0);
    }
}
