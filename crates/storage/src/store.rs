//! In-memory fact store with interned rows and dynamic hash indices.
//!
//! A [`FactStore`] keeps one [`Relation`] per predicate. Relations have set
//! semantics (duplicate insertion is a no-op) and maintain *dynamic indices*:
//! a per-column hash index is only materialised the first time a lookup on
//! that column is requested, and is kept incrementally up to date afterwards
//! — this is the storage half of the paper's "slot machine join", which
//! builds indexes while iterators are being consumed and uses them even when
//! still incomplete.
//!
//! # Storage layout
//!
//! The store never holds a [`Fact`] at rest. Each relation stores its tuples
//! as **rows**: boxed `[ValueId]` slices over the global value interner of
//! `vadalog-model`, identified by a [`FactId`] equal to the row's insertion
//! position. Set-semantics deduplication is a row-hash → `FactId` map (the
//! row bytes exist exactly once, in the row table; the dedup map holds only
//! hashes and ids), and every dynamic index maps `(column, ValueId)` to the
//! postings list of matching `FactId`s. [`Relation::lookup`] hands that list
//! out as a **borrowed** `&[FactId]` slice, so a join probe costs a hash of
//! one `u32` and zero allocations — the engine's slot-machine join matches
//! borrowed rows id-by-id and only materialises real `Fact`s at the API
//! boundary ([`FactStore::facts_of`], iteration, output post-processing).

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hash};
use vadalog_model::prelude::*;

/// Hash map from pre-computed row hashes to postings: the key *is* the hash,
/// so the map uses a pass-through hasher (one multiply via Fx, no SipHash).
type DedupMap = HashMap<u64, Vec<FactId>, FxBuildHasher>;

/// Postings index for one column: interned value id -> row ids.
type ColumnIndex = FxHashMap<ValueId, Vec<FactId>>;

/// Identifier of a stored row within one [`Relation`]: its insertion
/// position. `Copy`, 4 bytes, and totally ordered by insertion time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FactId(pub u32);

impl FactId {
    /// The row position as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

fn row_hash(row: &[ValueId]) -> u64 {
    let mut h = FxBuildHasher::default().build_hasher();
    row.hash(&mut h);
    std::hash::Hasher::finish(&h)
}

/// A single relation: all rows of one predicate.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    /// Row table: the single copy of every tuple, in insertion order.
    rows: Vec<Box<[ValueId]>>,
    /// Set-semantics dedup: row hash -> ids of rows with that hash. Almost
    /// every bucket has exactly one entry; collisions fall back to comparing
    /// rows in the row table.
    dedup: DedupMap,
    /// column index -> (value id -> postings list of row ids).
    indices: HashMap<usize, ColumnIndex>,
}

impl Relation {
    /// Create an empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a row; returns its fresh [`FactId`], or `None` if an equal row
    /// is already present.
    pub fn insert_row(&mut self, row: Box<[ValueId]>) -> Option<FactId> {
        assert!(
            self.rows.len() < u32::MAX as usize,
            "relation overflow: FactId space exhausted"
        );
        let hash = row_hash(&row);
        match self.dedup.entry(hash) {
            Entry::Occupied(mut e) => {
                if e.get().iter().any(|id| *self.rows[id.index()] == *row) {
                    return None;
                }
                let id = FactId(self.rows.len() as u32);
                e.get_mut().push(id);
                self.index_new_row(id, &row);
                self.rows.push(row);
                Some(id)
            }
            Entry::Vacant(e) => {
                let id = FactId(self.rows.len() as u32);
                e.insert(vec![id]);
                self.index_new_row(id, &row);
                self.rows.push(row);
                Some(id)
            }
        }
    }

    /// Keep the already-materialised indices up to date with a new row.
    fn index_new_row(&mut self, id: FactId, row: &[ValueId]) {
        for (col, index) in self.indices.iter_mut() {
            if let Some(v) = row.get(*col) {
                index.entry(*v).or_default().push(id);
            }
        }
    }

    /// Insert a fact (interning its arguments); returns `true` if it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        self.insert_row(fact.intern_args()).is_some()
    }

    /// Insert a batch of rows in order, in one pass: dedup, row table and
    /// every materialised index are updated per row exactly as repeated
    /// [`Relation::insert_row`] calls would, but the relation is resolved
    /// once and the row table grows by one reservation. Returns the number
    /// of rows that were new.
    pub fn insert_rows<I>(&mut self, rows: I) -> usize
    where
        I: IntoIterator<Item = Box<[ValueId]>>,
    {
        let rows = rows.into_iter();
        let (lower, _) = rows.size_hint();
        self.rows.reserve(lower);
        let mut fresh = 0;
        for row in rows {
            if self.insert_row(row).is_some() {
                fresh += 1;
            }
        }
        fresh
    }

    /// Does the relation contain exactly this row?
    pub fn contains_row(&self, row: &[ValueId]) -> bool {
        self.dedup
            .get(&row_hash(row))
            .is_some_and(|ids| ids.iter().any(|id| *self.rows[id.index()] == *row))
    }

    /// Does the relation contain exactly this fact?
    pub fn contains(&self, fact: &Fact) -> bool {
        // A value that was never interned cannot occur in any stored row.
        let mut row = Vec::with_capacity(fact.args.len());
        for v in &fact.args {
            match find_value_id(v) {
                Some(id) => row.push(id),
                None => return false,
            }
        }
        self.contains_row(&row)
    }

    /// The row of `id`.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this relation.
    pub fn row(&self, id: FactId) -> &[ValueId] {
        &self.rows[id.index()]
    }

    /// All rows in insertion order (`FactId(i)` is position `i`).
    pub fn rows(&self) -> &[Box<[ValueId]>] {
        &self.rows
    }

    /// Materialise the fact stored at `id`.
    pub fn fact(&self, predicate: Sym, id: FactId) -> Fact {
        Fact::new_sym(
            predicate,
            self.rows[id.index()]
                .iter()
                .map(|v| resolve_value(*v))
                .collect(),
        )
    }

    /// Look up rows whose column `col` equals `value`, building the dynamic
    /// index for that column on first use. Returns a borrowed postings list:
    /// no clone, no allocation.
    pub fn lookup(&mut self, col: usize, value: ValueId) -> &[FactId] {
        self.ensure_index(col);
        self.indices[&col]
            .get(&value)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Like [`Relation::lookup`] but without building a missing index
    /// (returns `None` on an index miss), for callers that want to fall back
    /// to a scan — the "optimistic" get of the slot-machine join.
    pub fn lookup_if_indexed(&self, col: usize, value: ValueId) -> Option<&[FactId]> {
        self.indices
            .get(&col)
            .map(|ix| ix.get(&value).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Force construction of the index on `col`.
    pub fn ensure_index(&mut self, col: usize) {
        if let Entry::Vacant(e) = self.indices.entry(col) {
            let mut index = ColumnIndex::default();
            for (i, row) in self.rows.iter().enumerate() {
                if let Some(v) = row.get(col) {
                    index.entry(*v).or_default().push(FactId(i as u32));
                }
            }
            e.insert(index);
        }
    }

    /// Number of dynamic indices currently materialised.
    pub fn index_count(&self) -> usize {
        self.indices.len()
    }

    /// Materialise all facts of this relation under `predicate`, in
    /// insertion order.
    pub fn to_facts(&self, predicate: Sym) -> Vec<Fact> {
        self.rows
            .iter()
            .map(|row| Fact::new_sym(predicate, resolve_values(row)))
            .collect()
    }
}

/// A buffered batch of derived rows, grouped by predicate in emission order.
///
/// This is the merge currency of the parallel sweep: each filter's admitted
/// head rows accumulate here instead of being inserted one relation lookup
/// at a time, and [`FactStore::apply_delta`] then applies the whole batch in
/// one pass — one `relation_mut` resolution per predicate, with per-row
/// dedup and index maintenance preserved exactly (rows are applied in the
/// order they were pushed, so `FactId` assignment matches insert-as-you-go).
#[derive(Clone, Debug, Default)]
pub struct DeltaBatch {
    /// predicate -> rows pushed for it, in push order. A `Vec` (not a map)
    /// keyed by first-push order keeps the batch allocation-light for the
    /// common one-or-two-head-predicates case.
    buffers: Vec<(Sym, Vec<Box<[ValueId]>>)>,
    rows: usize,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one derived row for `predicate`.
    pub fn push(&mut self, predicate: Sym, row: Box<[ValueId]>) {
        self.rows += 1;
        match self.buffers.iter_mut().find(|(p, _)| *p == predicate) {
            Some((_, rows)) => rows.push(row),
            None => self.buffers.push((predicate, vec![row])),
        }
    }

    /// Total number of buffered rows (before dedup).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The predicates with at least one buffered row, in first-push order.
    pub fn predicates(&self) -> impl Iterator<Item = Sym> + '_ {
        self.buffers.iter().map(|(p, _)| *p)
    }
}

/// The fact store: a map from predicate symbols to relations.
#[derive(Clone, Debug, Default)]
pub struct FactStore {
    relations: BTreeMap<Sym, Relation>,
}

impl FactStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a store from an initial set of facts.
    pub fn from_facts<I: IntoIterator<Item = Fact>>(facts: I) -> Self {
        let mut store = Self::new();
        for f in facts {
            store.insert(f);
        }
        store
    }

    /// Insert a fact; returns `true` if it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        self.relations
            .entry(fact.predicate)
            .or_default()
            .insert(fact)
    }

    /// Does the store contain the fact?
    pub fn contains(&self, fact: &Fact) -> bool {
        self.relations
            .get(&fact.predicate)
            .map(|r| r.contains(fact))
            .unwrap_or(false)
    }

    /// The relation of `predicate`, if any facts exist for it.
    pub fn relation(&self, predicate: Sym) -> Option<&Relation> {
        self.relations.get(&predicate)
    }

    /// Mutable access to the relation of `predicate`, creating it if needed.
    pub fn relation_mut(&mut self, predicate: Sym) -> &mut Relation {
        self.relations.entry(predicate).or_default()
    }

    /// Apply a merged delta batch in one pass: for each predicate, resolve
    /// its relation once and bulk-insert the buffered rows (dedup, row table
    /// and postings updates per row, in push order — `FactId` assignment is
    /// identical to inserting the rows one at a time). Consumes the batch
    /// and returns the number of rows that were new.
    pub fn apply_delta(&mut self, batch: DeltaBatch) -> usize {
        let mut fresh = 0;
        for (predicate, rows) in batch.buffers {
            fresh += self.relation_mut(predicate).insert_rows(rows);
        }
        fresh
    }

    /// Facts of a predicate, materialised in insertion order (empty if
    /// unknown). This is the API boundary: internally everything stays in
    /// row form.
    pub fn facts_of(&self, predicate: Sym) -> Vec<Fact> {
        self.relations
            .get(&predicate)
            .map(|r| r.to_facts(predicate))
            .unwrap_or_default()
    }

    /// Iterate over all facts of all predicates, predicate-ordered,
    /// materialising each on the fly.
    pub fn iter(&self) -> impl Iterator<Item = Fact> + '_ {
        self.relations
            .iter()
            .flat_map(|(p, r)| (0..r.len()).map(|i| r.fact(*p, FactId(i as u32))))
    }

    /// All predicates with at least one fact.
    pub fn predicates(&self) -> Vec<Sym> {
        self.relations.keys().copied().collect()
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of facts of a predicate.
    pub fn count(&self, predicate: Sym) -> usize {
        self.relations
            .get(&predicate)
            .map(Relation::len)
            .unwrap_or(0)
    }
}

impl FromIterator<Fact> for FactStore {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Self {
        Self::from_facts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn own(a: &str, b: &str, w: f64) -> Fact {
        Fact::new("Own", vec![a.into(), b.into(), Value::Float(w)])
    }

    #[test]
    fn set_semantics() {
        let mut store = FactStore::new();
        assert!(store.insert(own("a", "b", 0.6)));
        assert!(!store.insert(own("a", "b", 0.6)));
        assert!(store.insert(own("a", "b", 0.7)));
        assert_eq!(store.len(), 2);
        assert!(store.contains(&own("a", "b", 0.6)));
        assert!(!store.contains(&own("z", "b", 0.6)));
    }

    #[test]
    fn dynamic_index_is_built_on_first_lookup_and_maintained() {
        let mut store = FactStore::new();
        store.insert(own("a", "b", 0.6));
        store.insert(own("a", "c", 0.2));
        store.insert(own("d", "c", 0.9));
        let rel = store.relation_mut(intern("Own"));
        assert_eq!(rel.index_count(), 0);
        let hits = rel.lookup(0, Value::str("a").interned());
        assert_eq!(hits.len(), 2);
        assert_eq!(rel.index_count(), 1);
        // inserting after the index exists keeps it consistent
        rel.insert(own("a", "e", 0.1));
        assert_eq!(rel.lookup(0, Value::str("a").interned()).len(), 3);
        // optimistic lookup on a non-indexed column reports a miss
        assert!(rel
            .lookup_if_indexed(1, Value::str("c").interned())
            .is_none());
        assert!(rel
            .lookup_if_indexed(0, Value::str("zzz").interned())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn facts_of_and_counts() {
        let store: FactStore = vec![
            own("a", "b", 0.6),
            Fact::new("Company", vec!["a".into()]),
            Fact::new("Company", vec!["b".into()]),
        ]
        .into_iter()
        .collect();
        assert_eq!(store.count(intern("Company")), 2);
        assert_eq!(store.count(intern("Own")), 1);
        assert_eq!(store.count(intern("Missing")), 0);
        assert_eq!(store.facts_of(intern("Company")).len(), 2);
        assert_eq!(store.predicates().len(), 2);
        assert_eq!(store.iter().count(), 3);
    }

    #[test]
    fn lookup_by_position_returns_insertion_ids() {
        let mut rel = Relation::new();
        rel.insert(own("a", "b", 0.6));
        rel.insert(own("c", "b", 0.3));
        let hits = rel.lookup(1, Value::str("b").interned());
        assert_eq!(hits, &[FactId(0), FactId(1)]);
        assert_eq!(rel.row(FactId(1))[0], Value::str("c").interned());
        // materialisation round-trips through the interner
        assert_eq!(rel.fact(intern("Own"), FactId(1)), own("c", "b", 0.3));
    }

    #[test]
    fn nulls_are_valid_index_keys() {
        let mut rel = Relation::new();
        let n = Value::Null(NullId(7));
        rel.insert(Fact::new("PSC", vec!["x".into(), n.clone()]));
        rel.insert(Fact::new("PSC", vec!["y".into(), n.clone()]));
        assert_eq!(rel.lookup(1, n.interned()).len(), 2);
    }

    #[test]
    fn rows_are_stored_once_and_borrowable() {
        let mut rel = Relation::new();
        assert!(rel.insert(own("a", "b", 0.5)));
        assert!(!rel.insert(own("a", "b", 0.5)));
        let row = rel.row(FactId(0)).to_vec();
        assert!(rel.contains_row(&row));
        assert_eq!(rel.rows().len(), 1);
        // borrowed lookups alias the postings list, not a clone
        rel.ensure_index(0);
        let a = rel.lookup_if_indexed(0, row[0]).unwrap();
        assert_eq!(a, &[FactId(0)]);
    }

    #[test]
    fn delta_batch_applies_like_insert_as_you_go() {
        let rows: Vec<(&str, Vec<Value>)> = vec![
            ("P", vec!["a".into(), 1i64.into()]),
            ("Q", vec!["b".into()]),
            ("P", vec!["a".into(), 2i64.into()]),
            ("P", vec!["a".into(), 1i64.into()]), // duplicate
            ("Q", vec!["c".into()]),
        ];
        // Reference: one insert per fact.
        let mut reference = FactStore::new();
        reference.relation_mut(intern("P")).ensure_index(0);
        for (p, args) in &rows {
            reference.insert(Fact::new(p, args.clone()));
        }
        // Batched: same rows through a DeltaBatch.
        let mut batched = FactStore::new();
        batched.relation_mut(intern("P")).ensure_index(0);
        let mut delta = DeltaBatch::new();
        for (p, args) in &rows {
            delta.push(intern(p), Fact::new(p, args.clone()).intern_args());
        }
        assert_eq!(delta.len(), 5);
        assert_eq!(delta.predicates().count(), 2);
        let fresh = batched.apply_delta(delta);
        assert_eq!(fresh, 4, "the duplicate row must be deduplicated");
        // Same contents, same FactId order, same maintained indices.
        for pred in [intern("P"), intern("Q")] {
            assert_eq!(batched.facts_of(pred), reference.facts_of(pred));
        }
        let key = Value::str("a").interned();
        assert_eq!(
            batched
                .relation(intern("P"))
                .unwrap()
                .lookup_if_indexed(0, key),
            reference
                .relation(intern("P"))
                .unwrap()
                .lookup_if_indexed(0, key),
        );
    }

    #[test]
    fn insert_rows_counts_only_fresh_rows() {
        let mut rel = Relation::new();
        rel.insert(own("a", "b", 0.6));
        let batch: Vec<Box<[ValueId]>> = vec![
            own("a", "b", 0.6).intern_args(), // already present
            own("c", "d", 0.5).intern_args(),
            own("c", "d", 0.5).intern_args(), // in-batch duplicate
        ];
        assert_eq!(rel.insert_rows(batch), 1);
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn heterogeneous_arity_rows_coexist() {
        // no schema enforcement at this layer: rows of different arity under
        // one predicate must not confuse dedup or indices
        let mut rel = Relation::new();
        assert!(rel.insert(Fact::new("P", vec![1i64.into()])));
        assert!(rel.insert(Fact::new("P", vec![1i64.into(), 2i64.into()])));
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.lookup(1, Value::Int(2).interned()), &[FactId(1)]);
    }
}
