//! In-memory fact store with dynamic hash indices.
//!
//! A [`FactStore`] keeps one [`Relation`] per predicate. Relations have set
//! semantics (duplicate insertion is a no-op) and maintain *dynamic indices*:
//! a per-column hash index is only materialised the first time a lookup on
//! that column is requested, and is kept incrementally up to date afterwards
//! — this is the storage half of the paper's "slot machine join", which
//! builds indexes while iterators are being consumed and uses them even when
//! still incomplete.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap, HashSet};
use vadalog_model::prelude::*;

/// A single relation: all facts of one predicate.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    facts: Vec<Fact>,
    present: HashSet<Fact>,
    /// column index -> (value -> positions in `facts`)
    indices: HashMap<usize, HashMap<Value, Vec<usize>>>,
}

impl Relation {
    /// Create an empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Insert a fact; returns `true` if it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        if self.present.contains(&fact) {
            return false;
        }
        let pos = self.facts.len();
        // keep existing indices up to date
        for (col, index) in self.indices.iter_mut() {
            if let Some(v) = fact.args.get(*col) {
                index.entry(v.clone()).or_default().push(pos);
            }
        }
        self.present.insert(fact.clone());
        self.facts.push(fact);
        true
    }

    /// Does the relation contain exactly this fact?
    pub fn contains(&self, fact: &Fact) -> bool {
        self.present.contains(fact)
    }

    /// Iterate over all facts in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Fact> {
        self.facts.iter()
    }

    /// Fact at insertion position `i`.
    pub fn get(&self, i: usize) -> Option<&Fact> {
        self.facts.get(i)
    }

    /// Look up facts whose column `col` equals `value`, building the dynamic
    /// index for that column on first use.
    pub fn lookup(&mut self, col: usize, value: &Value) -> Vec<usize> {
        self.ensure_index(col);
        self.indices
            .get(&col)
            .and_then(|ix| ix.get(value))
            .cloned()
            .unwrap_or_default()
    }

    /// Like [`Relation::lookup`] but without building a missing index
    /// (returns `None` on an index miss), for callers that want to fall back
    /// to a scan — the "optimistic" get of the slot-machine join.
    pub fn lookup_if_indexed(&self, col: usize, value: &Value) -> Option<Vec<usize>> {
        self.indices
            .get(&col)
            .map(|ix| ix.get(value).cloned().unwrap_or_default())
    }

    /// Force construction of the index on `col`.
    pub fn ensure_index(&mut self, col: usize) {
        if let Entry::Vacant(e) = self.indices.entry(col) {
            let mut index: HashMap<Value, Vec<usize>> = HashMap::new();
            for (i, f) in self.facts.iter().enumerate() {
                if let Some(v) = f.args.get(col) {
                    index.entry(v.clone()).or_default().push(i);
                }
            }
            e.insert(index);
        }
    }

    /// Number of dynamic indices currently materialised.
    pub fn index_count(&self) -> usize {
        self.indices.len()
    }
}

/// The fact store: a map from predicate symbols to relations.
#[derive(Clone, Debug, Default)]
pub struct FactStore {
    relations: BTreeMap<Sym, Relation>,
}

impl FactStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a store from an initial set of facts.
    pub fn from_facts<I: IntoIterator<Item = Fact>>(facts: I) -> Self {
        let mut store = Self::new();
        for f in facts {
            store.insert(f);
        }
        store
    }

    /// Insert a fact; returns `true` if it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        self.relations.entry(fact.predicate).or_default().insert(fact)
    }

    /// Does the store contain the fact?
    pub fn contains(&self, fact: &Fact) -> bool {
        self.relations
            .get(&fact.predicate)
            .map(|r| r.contains(fact))
            .unwrap_or(false)
    }

    /// The relation of `predicate`, if any facts exist for it.
    pub fn relation(&self, predicate: Sym) -> Option<&Relation> {
        self.relations.get(&predicate)
    }

    /// Mutable access to the relation of `predicate`, creating it if needed.
    pub fn relation_mut(&mut self, predicate: Sym) -> &mut Relation {
        self.relations.entry(predicate).or_default()
    }

    /// Facts of a predicate, in insertion order (empty if unknown).
    pub fn facts_of(&self, predicate: Sym) -> Vec<Fact> {
        self.relations
            .get(&predicate)
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Iterate over all facts of all predicates, predicate-ordered.
    pub fn iter(&self) -> impl Iterator<Item = &Fact> {
        self.relations.values().flat_map(|r| r.iter())
    }

    /// All predicates with at least one fact.
    pub fn predicates(&self) -> Vec<Sym> {
        self.relations.keys().copied().collect()
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of facts of a predicate.
    pub fn count(&self, predicate: Sym) -> usize {
        self.relations.get(&predicate).map(Relation::len).unwrap_or(0)
    }
}

impl FromIterator<Fact> for FactStore {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Self {
        Self::from_facts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn own(a: &str, b: &str, w: f64) -> Fact {
        Fact::new("Own", vec![a.into(), b.into(), Value::Float(w)])
    }

    #[test]
    fn set_semantics() {
        let mut store = FactStore::new();
        assert!(store.insert(own("a", "b", 0.6)));
        assert!(!store.insert(own("a", "b", 0.6)));
        assert!(store.insert(own("a", "b", 0.7)));
        assert_eq!(store.len(), 2);
        assert!(store.contains(&own("a", "b", 0.6)));
        assert!(!store.contains(&own("z", "b", 0.6)));
    }

    #[test]
    fn dynamic_index_is_built_on_first_lookup_and_maintained() {
        let mut store = FactStore::new();
        store.insert(own("a", "b", 0.6));
        store.insert(own("a", "c", 0.2));
        store.insert(own("d", "c", 0.9));
        let rel = store.relation_mut(intern("Own"));
        assert_eq!(rel.index_count(), 0);
        let hits = rel.lookup(0, &Value::str("a"));
        assert_eq!(hits.len(), 2);
        assert_eq!(rel.index_count(), 1);
        // inserting after the index exists keeps it consistent
        rel.insert(own("a", "e", 0.1));
        assert_eq!(rel.lookup(0, &Value::str("a")).len(), 3);
        // optimistic lookup on a non-indexed column reports a miss
        assert!(rel.lookup_if_indexed(1, &Value::str("c")).is_none());
        assert!(rel.lookup_if_indexed(0, &Value::str("zzz")).unwrap().is_empty());
    }

    #[test]
    fn facts_of_and_counts() {
        let store: FactStore = vec![
            own("a", "b", 0.6),
            Fact::new("Company", vec!["a".into()]),
            Fact::new("Company", vec!["b".into()]),
        ]
        .into_iter()
        .collect();
        assert_eq!(store.count(intern("Company")), 2);
        assert_eq!(store.count(intern("Own")), 1);
        assert_eq!(store.count(intern("Missing")), 0);
        assert_eq!(store.facts_of(intern("Company")).len(), 2);
        assert_eq!(store.predicates().len(), 2);
        assert_eq!(store.iter().count(), 3);
    }

    #[test]
    fn lookup_by_position_returns_insertion_indices() {
        let mut rel = Relation::new();
        rel.insert(own("a", "b", 0.6));
        rel.insert(own("c", "b", 0.3));
        let hits = rel.lookup(1, &Value::str("b"));
        assert_eq!(hits, vec![0, 1]);
        assert_eq!(rel.get(1).unwrap().args[0], Value::str("c"));
    }

    #[test]
    fn nulls_are_valid_index_keys() {
        let mut rel = Relation::new();
        let n = Value::Null(NullId(7));
        rel.insert(Fact::new("PSC", vec!["x".into(), n.clone()]));
        rel.insert(Fact::new("PSC", vec!["y".into(), n.clone()]));
        assert_eq!(rel.lookup(1, &n).len(), 2);
    }
}
