//! Write-ahead log for append batches, plus the warm-cost sidecar.
//!
//! Every `append_facts` batch a session accepts is appended here **before**
//! the in-memory layer promotion is acknowledged: serialize the batch
//! (predicate symbols + resolved values, length-prefixed, checksummed),
//! `write_all`, `fsync`, and only then promote. A session recovered from the
//! log replays the same batches through the same append path, so stamps,
//! FactIds and labelled-null ids come out bit-identical to the never-crashed
//! session — the log records *submitted* batches verbatim (duplicates
//! included) precisely because replay must feed the termination strategy the
//! same sequence it saw live.
//!
//! ## On-disk format
//!
//! ```text
//! file   := magic record*
//! magic  := "VADWAL1\0"                                 (8 bytes)
//! record := len:u32le  checksum:u64le  payload[len]     (checksum = FNV-1a 64 of payload)
//! payload:= count:u32le  fact*
//! fact   := plen:u16le  predicate[plen]  arity:u16le  value*
//! value  := tag:u8  body                                 (see `encode_value`)
//! ```
//!
//! A **torn tail** — a record whose length prefix, payload, or checksum is
//! incomplete or wrong (the classic partial-write-then-crash) — is detected
//! on open: the file is truncated back to the last whole record and a typed
//! [`TornTail`] warning is returned. Everything before the tear is trusted
//! (each record's checksum covers its payload).
//!
//! The **warm-cost sidecar** (`<wal>.costs`) persists the session's measured
//! per-plan access costs so a recovered session starts warm (cross-restart
//! warmth). It is advisory: a missing or corrupt sidecar never blocks
//! recovery — [`load_costs`] distinguishes "absent" (`Ok(None)`) from
//! "corrupt" (`Err`) so callers can warn.
//!
//! Fault points (`wal.append`, `wal.partial_write`, `wal.fsync`,
//! `wal.costs_write`) let the crash-recovery property tests fail or kill a
//! session at every interesting instant; see `vadalog_fault`.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use vadalog_fault as fault;
use vadalog_model::{Fact, Value};

/// Magic header of a WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"VADWAL1\0";
/// Magic header of a warm-cost sidecar file.
pub const COSTS_MAGIC: [u8; 8] = *b"VADCST1\0";

/// Errors from WAL and sidecar I/O.
#[derive(Debug)]
pub enum WalError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file exists but does not start with [`WAL_MAGIC`] (or the sidecar
    /// with [`COSTS_MAGIC`]).
    BadMagic(PathBuf),
    /// A batch contained a labelled null; only ground facts are appendable,
    /// so only ground facts are loggable.
    NonGround { predicate: String },
    /// An injected fault fired (test harness only).
    Fault(fault::FaultError),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::BadMagic(p) => write!(f, "{} is not a Vadalog log file", p.display()),
            WalError::NonGround { predicate } => {
                write!(f, "cannot log non-ground fact for {predicate}")
            }
            WalError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<fault::FaultError> for WalError {
    fn from(e: fault::FaultError) -> Self {
        WalError::Fault(e)
    }
}

/// Typed warning for a torn/corrupt tail truncated on open.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TornTail {
    /// Byte offset the file was truncated back to (end of last whole record).
    pub offset: u64,
    /// Bytes dropped by the truncation.
    pub dropped_bytes: u64,
    /// Why the tail was rejected.
    pub reason: String,
}

impl std::fmt::Display for TornTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "torn wal tail: {} ({} bytes dropped, log truncated to offset {})",
            self.reason, self.dropped_bytes, self.offset
        )
    }
}

/// Result of opening a WAL: the writer positioned at the end, the replayed
/// batches in append order, and the torn-tail warning if the file needed
/// truncation.
pub struct WalOpen {
    /// The log, ready for further appends.
    pub wal: Wal,
    /// Every durable batch, in the order it was appended.
    pub batches: Vec<Vec<Fact>>,
    /// Present when a torn/corrupt tail was truncated away.
    pub torn_tail: Option<TornTail>,
}

/// An open write-ahead log.
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Open (or create) the log at `path`, replay its durable records, and
    /// truncate any torn tail. The returned [`Wal`] appends after the last
    /// whole record.
    pub fn open(path: &Path) -> Result<WalOpen, WalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            file.write_all(&WAL_MAGIC)?;
            file.sync_data()?;
            return Ok(WalOpen {
                wal: Wal {
                    file,
                    path: path.to_owned(),
                },
                batches: Vec::new(),
                torn_tail: None,
            });
        }
        let mut bytes = Vec::with_capacity(len as usize);
        file.read_to_end(&mut bytes)?;
        if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(WalError::BadMagic(path.to_owned()));
        }
        let mut batches = Vec::new();
        let mut good_end = WAL_MAGIC.len();
        let mut torn: Option<String> = None;
        let mut cursor = good_end;
        while cursor < bytes.len() {
            match decode_record(&bytes[cursor..]) {
                Ok((batch, consumed)) => {
                    batches.push(batch);
                    cursor += consumed;
                    good_end = cursor;
                }
                Err(reason) => {
                    torn = Some(reason);
                    break;
                }
            }
        }
        let torn_tail = torn.map(|reason| TornTail {
            offset: good_end as u64,
            dropped_bytes: (bytes.len() - good_end) as u64,
            reason,
        });
        if torn_tail.is_some() {
            file.set_len(good_end as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(WalOpen {
            wal: Wal {
                file,
                path: path.to_owned(),
            },
            batches,
            torn_tail,
        })
    }

    /// Path this log lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one batch: serialize, write, fsync. Returns only after the
    /// record is durable — callers must not acknowledge the corresponding
    /// layer promotion before this returns `Ok`.
    pub fn append_batch(&mut self, facts: &[Fact]) -> Result<(), WalError> {
        fault::point("wal.append")?;
        let record = encode_record(facts)?;
        if let Err(e) = fault::point("wal.partial_write") {
            // Simulate a crash mid-write: half the record reaches the disk,
            // then the append fails. Recovery must truncate this tail.
            self.file.write_all(&record[..record.len() / 2])?;
            let _ = self.file.sync_data();
            return Err(e.into());
        }
        self.file.write_all(&record)?;
        fault::point("wal.fsync")?;
        self.file.sync_data()?;
        Ok(())
    }
}

/// Warm measured-cost table in crate-neutral form: per adorned plan the
/// predicate name, the adornment (`true` = bound position) and the measured
/// per-rule costs, plus the unadorned fallback plan's costs.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct WarmCosts {
    /// `(predicate, adornment, per-rule costs)` per compiled plan.
    pub per_plan: Vec<(String, Vec<bool>, Vec<Option<f64>>)>,
    /// Costs of the unadorned fallback plan, when measured.
    pub fallback: Option<Vec<Option<f64>>>,
}

/// Sidecar path for a WAL path: `<wal>.costs`.
pub fn costs_path(wal_path: &Path) -> PathBuf {
    let mut name = wal_path.as_os_str().to_owned();
    name.push(".costs");
    PathBuf::from(name)
}

/// Persist the warm-cost table (whole-file rewrite; the table is tiny).
pub fn save_costs(path: &Path, costs: &WarmCosts) -> Result<(), WalError> {
    fault::point("wal.costs_write")?;
    let mut payload = Vec::new();
    put_u32(&mut payload, costs.per_plan.len() as u32);
    for (pred, adornment, plan_costs) in &costs.per_plan {
        put_str16(&mut payload, pred);
        put_u16(&mut payload, adornment.len() as u16);
        payload.extend(adornment.iter().map(|&b| b as u8));
        put_costs(&mut payload, plan_costs);
    }
    match &costs.fallback {
        None => payload.push(0),
        Some(fb) => {
            payload.push(1);
            put_costs(&mut payload, fb);
        }
    }
    let mut bytes = Vec::with_capacity(COSTS_MAGIC.len() + 8 + payload.len());
    bytes.extend_from_slice(&COSTS_MAGIC);
    bytes.extend_from_slice(&fnv64(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    let mut file = File::create(path)?;
    file.write_all(&bytes)?;
    file.sync_data()?;
    Ok(())
}

/// Load the warm-cost sidecar. `Ok(None)` when the file does not exist;
/// `Err` when it exists but is corrupt (callers warn and start cold).
pub fn load_costs(path: &Path) -> Result<Option<WarmCosts>, WalError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => f.read_to_end(&mut bytes)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let corrupt = || WalError::BadMagic(path.to_owned());
    if bytes.len() < COSTS_MAGIC.len() + 8 || bytes[..COSTS_MAGIC.len()] != COSTS_MAGIC {
        return Err(corrupt());
    }
    let checksum = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let payload = &bytes[16..];
    if fnv64(payload) != checksum {
        return Err(corrupt());
    }
    let mut c = Cursor::new(payload);
    let parse = |c: &mut Cursor| -> Option<WarmCosts> {
        let plans = c.u32()?;
        let mut per_plan = Vec::with_capacity(plans as usize);
        for _ in 0..plans {
            let pred = c.str16()?;
            let alen = c.u16()? as usize;
            let adornment = c.take(alen)?.iter().map(|&b| b != 0).collect();
            per_plan.push((pred, adornment, c.costs()?));
        }
        let fallback = match c.u8()? {
            0 => None,
            _ => Some(c.costs()?),
        };
        c.done()?;
        Some(WarmCosts { per_plan, fallback })
    };
    match parse(&mut c) {
        Some(costs) => Ok(Some(costs)),
        None => Err(corrupt()),
    }
}

// ---------------------------------------------------------------------------
// record encoding
// ---------------------------------------------------------------------------

fn encode_record(facts: &[Fact]) -> Result<Vec<u8>, WalError> {
    let mut payload = Vec::new();
    put_u32(&mut payload, facts.len() as u32);
    for fact in facts {
        if !fact.is_ground() {
            return Err(WalError::NonGround {
                predicate: fact.predicate_name(),
            });
        }
        put_str16(&mut payload, &fact.predicate_name());
        put_u16(&mut payload, fact.args.len() as u16);
        for value in &fact.args {
            encode_value(&mut payload, value);
        }
    }
    let mut record = Vec::with_capacity(12 + payload.len());
    put_u32(&mut record, payload.len() as u32);
    record.extend_from_slice(&fnv64(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    Ok(record)
}

/// Decode one record from the front of `bytes`; returns the batch and the
/// number of bytes consumed, or a human-readable reason the tail is torn.
fn decode_record(bytes: &[u8]) -> Result<(Vec<Fact>, usize), String> {
    if bytes.len() < 12 {
        return Err(format!("incomplete record header ({} bytes)", bytes.len()));
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    let Some(payload) = bytes.get(12..12 + len) else {
        return Err(format!(
            "incomplete record payload ({} of {len} bytes)",
            bytes.len() - 12
        ));
    };
    if fnv64(payload) != checksum {
        return Err("record checksum mismatch".into());
    }
    let mut c = Cursor::new(payload);
    let decode = |c: &mut Cursor| -> Option<Vec<Fact>> {
        let count = c.u32()?;
        let mut batch = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let predicate = c.str16()?;
            let arity = c.u16()? as usize;
            let mut args = Vec::with_capacity(arity);
            for _ in 0..arity {
                args.push(c.value()?);
            }
            batch.push(Fact::new(&predicate, args));
        }
        c.done()?;
        Some(batch)
    };
    match decode(&mut c) {
        Some(batch) => Ok((batch, 12 + len)),
        // A checksummed payload that fails structural decode means a version
        // or logic mismatch, not a torn write — but truncating is still the
        // safe recovery (we keep the trusted prefix).
        None => Err("record payload failed to decode".into()),
    }
}

fn encode_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Int(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(1);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(2);
            put_u32(out, s.len() as u32);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            out.push(3);
            out.push(*b as u8);
        }
        Value::Date(d) => {
            out.push(4);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::List(items) => {
            out.push(5);
            put_u32(out, items.len() as u32);
            for item in items {
                encode_value(out, item);
            }
        }
        Value::Set(items) => {
            out.push(6);
            put_u32(out, items.len() as u32);
            for item in items {
                encode_value(out, item);
            }
        }
        // Callers reject non-ground facts before encoding (WalError::NonGround).
        Value::Null(_) => unreachable!("non-ground facts are rejected before encoding"),
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|b| u16::from_le_bytes(b.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn str16(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn costs(&mut self) -> Option<Vec<Option<f64>>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(match self.u8()? {
                0 => None,
                _ => Some(f64::from_bits(self.u64()?)),
            });
        }
        Some(out)
    }

    fn value(&mut self) -> Option<Value> {
        Some(match self.u8()? {
            0 => Value::Int(i64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            1 => Value::Float(f64::from_bits(self.u64()?)),
            2 => {
                let len = self.u32()? as usize;
                let bytes = self.take(len)?;
                Value::str(std::str::from_utf8(bytes).ok()?)
            }
            3 => Value::Bool(self.u8()? != 0),
            4 => Value::Date(i64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            5 => {
                let n = self.u32()? as usize;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Value::List(items)
            }
            6 => {
                let n = self.u32()? as usize;
                let mut items = std::collections::BTreeSet::new();
                for _ in 0..n {
                    items.insert(self.value()?);
                }
                Value::Set(items)
            }
            _ => return None,
        })
    }

    fn done(&mut self) -> Option<()> {
        (self.pos == self.bytes.len()).then_some(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str16(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn put_costs(out: &mut Vec<u8>, costs: &[Option<f64>]) {
    put_u32(out, costs.len() as u32);
    for cost in costs {
        match cost {
            None => out.push(0),
            Some(c) => {
                out.push(1);
                out.extend_from_slice(&c.to_bits().to_le_bytes());
            }
        }
    }
}

/// FNV-1a 64 — stable, dependency-free, plenty for torn-write detection.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn temp_path(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vadalog-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    fn sample_batches() -> Vec<Vec<Fact>> {
        vec![
            vec![
                Fact::new("Edge", vec![Value::str("a"), Value::str("b")]),
                Fact::new("Score", vec![Value::Int(-7), Value::Float(2.5)]),
            ],
            vec![Fact::new(
                "Mixed",
                vec![
                    Value::Bool(true),
                    Value::Date(19000),
                    Value::List(vec![Value::Int(1), Value::str("x")]),
                    Value::Set(BTreeSet::from([Value::Int(3), Value::Int(1)])),
                ],
            )],
            vec![],
        ]
    }

    #[test]
    fn append_then_reopen_round_trips_batches() {
        let path = temp_path("roundtrip");
        let batches = sample_batches();
        {
            let mut open = Wal::open(&path).unwrap();
            assert!(open.batches.is_empty());
            assert!(open.torn_tail.is_none());
            for batch in &batches {
                open.wal.append_batch(batch).unwrap();
            }
        }
        let open = Wal::open(&path).unwrap();
        assert_eq!(open.batches, batches);
        assert!(open.torn_tail.is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_with_warning_and_log_stays_appendable() {
        let path = temp_path("torn");
        {
            let mut open = Wal::open(&path).unwrap();
            open.wal
                .append_batch(&[Fact::new("Edge", vec![Value::Int(1)])])
                .unwrap();
        }
        let good_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-write: half a record's worth of garbage.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[0x55; 7]).unwrap();
        drop(file);
        let mut open = Wal::open(&path).unwrap();
        assert_eq!(open.batches.len(), 1);
        let torn = open.torn_tail.expect("tail should be torn");
        assert_eq!(torn.offset, good_len);
        assert_eq!(torn.dropped_bytes, 7);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        // The truncated log accepts further appends.
        open.wal
            .append_batch(&[Fact::new("Edge", vec![Value::Int(2)])])
            .unwrap();
        let open = Wal::open(&path).unwrap();
        assert_eq!(open.batches.len(), 2);
        assert!(open.torn_tail.is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_payload_byte_is_caught_by_checksum() {
        let path = temp_path("corrupt");
        {
            let mut open = Wal::open(&path).unwrap();
            open.wal
                .append_batch(&[Fact::new("Edge", vec![Value::str("hello")])])
                .unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let open = Wal::open(&path).unwrap();
        assert!(open.batches.is_empty());
        let torn = open.torn_tail.expect("flipped byte should fail checksum");
        assert!(torn.reason.contains("checksum"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_wal_file_is_rejected_not_truncated() {
        let path = temp_path("notawal");
        std::fs::write(&path, b"definitely not a wal file").unwrap();
        assert!(matches!(Wal::open(&path), Err(WalError::BadMagic(_))));
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"definitely not a wal file".to_vec()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_ground_batches_are_rejected_before_any_write() {
        let path = temp_path("nonground");
        let mut open = Wal::open(&path).unwrap();
        let null_fact = Fact::new("P", vec![Value::Null(vadalog_model::NullId(7))]);
        assert!(matches!(
            open.wal.append_batch(&[null_fact]),
            Err(WalError::NonGround { .. })
        ));
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            WAL_MAGIC.len() as u64
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn costs_sidecar_round_trips_and_detects_corruption() {
        let wal_path = temp_path("costs");
        let path = costs_path(&wal_path);
        assert!(load_costs(&path).unwrap().is_none());
        let costs = WarmCosts {
            per_plan: vec![
                ("Reach".into(), vec![true, false], vec![Some(1.5), None]),
                ("Edge".into(), vec![false, false], vec![]),
            ],
            fallback: Some(vec![None, Some(0.25)]),
        };
        save_costs(&path, &costs).unwrap();
        assert_eq!(load_costs(&path).unwrap(), Some(costs.clone()));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_costs(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
