//! The worst-case-optimal (leapfrog-triejoin) intersection driver over
//! [`TrieCursor`]s.
//!
//! Binary joins materialise every intermediate: a triangle query
//! `Edge(x,y), Edge(y,z), Edge(x,z)` first enumerates all 2-paths — which
//! can be quadratically larger than the triangle count. The generic-join
//! family instead picks a **global variable order** and, per variable,
//! intersects the candidate values of *every* atom containing it before
//! binding; the run time is then bounded by the fractional-edge-cover
//! (AGM) bound of the query, i.e. by the worst-case output size.
//!
//! This module holds only the algorithm: [`leapfrog_join`] drives one
//! [`TrieCursor`] per atom through the per-variable intersection, calling
//! back into the owner for guard checks and leaf emission. Planning (which
//! bodies are cyclic, the variable order, the per-atom column orders) lives
//! in `vadalog-engine`; the chase reuses the same driver so engine-vs-chase
//! parity holds. Both callers seed the cursors via [`TrieCursor::open`]
//! with the columns their outer loop (delta row / first-atom candidate)
//! already binds.
//!
//! Determinism: values are enumerated in ascending `(OrderKey, ValueId)`
//! order — a pure function of the store contents — and leaf facts come back
//! `FactId`-ascending, so the driver's output order is identical on every
//! thread and at every chunk size.
//!
//! [`TrieCursor`]: crate::store::TrieCursor
//! [`TrieCursor::open`]: crate::store::TrieCursor::open

use crate::store::TrieCursor;
use vadalog_model::prelude::*;

/// One variable level of a leapfrog join: the binding slot the variable
/// writes and the cursors (atom positions) whose tries contain it.
#[derive(Clone, Debug)]
pub struct WcojLevel {
    /// Index into the rule's binding array.
    pub slot: usize,
    /// Indices into the cursor slice — every atom the variable occurs in.
    pub cursors: Vec<usize>,
}

/// Work counters of a leapfrog run: `seeks` counts cursor repositionings
/// (the leapfrogging itself), `intersections` counts values found in the
/// intersection of all participating tries (i.e. successful level
/// bindings). Both are pure functions of the store contents, so they merge
/// deterministically across parallel chunks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WcojCounters {
    /// Cursor seek operations performed while leapfrogging.
    pub seeks: u64,
    /// Values that survived a full per-variable intersection.
    pub intersections: u64,
}

impl WcojCounters {
    /// Fold another run's counters into this one.
    pub fn merge(&mut self, other: &WcojCounters) {
        self.seeks += other.seeks;
        self.intersections += other.intersections;
    }
}

/// Leaf callback of [`leapfrog_join`]: invoked with the full binding and
/// the cursors positioned at their leaves (read support facts via
/// [`TrieCursor::leaf_facts`](crate::store::TrieCursor::leaf_facts)).
pub type LeafEmit<'a, 'r> = dyn FnMut(&[Option<ValueId>], &[TrieCursor<'r>]) + 'a;

/// Run one leapfrog-triejoin over opened cursors.
///
/// `cursors` must each have been [`open`](TrieCursor::open)ed on their bound
/// prefix (and every open must have returned `true` — an empty prefix span
/// means zero matches, the caller skips the join). `levels` lists the free
/// variables in the global order; each level's variable is intersected
/// across its cursors, bound into `binding`, checked by
/// `level_ok(level_index, binding)` (pushed-condition guards — a `false`
/// prunes the subtree), and on reaching the last level `emit` is called
/// with the full binding and the cursors positioned at their leaves.
/// `binding` slots written by the driver are restored to `None` on return.
pub fn leapfrog_join<'r>(
    cursors: &mut [TrieCursor<'r>],
    levels: &[WcojLevel],
    binding: &mut [Option<ValueId>],
    counters: &mut WcojCounters,
    level_ok: &mut dyn FnMut(usize, &[Option<ValueId>]) -> bool,
    emit: &mut LeafEmit<'_, 'r>,
) {
    lf_level(cursors, levels, 0, binding, counters, level_ok, emit);
}

#[allow(clippy::too_many_arguments)]
fn lf_level<'r>(
    cursors: &mut [TrieCursor<'r>],
    levels: &[WcojLevel],
    li: usize,
    binding: &mut [Option<ValueId>],
    counters: &mut WcojCounters,
    level_ok: &mut dyn FnMut(usize, &[Option<ValueId>]) -> bool,
    emit: &mut LeafEmit<'_, 'r>,
) {
    let Some(level) = levels.get(li) else {
        emit(binding, cursors);
        return;
    };
    debug_assert!(
        !level.cursors.is_empty(),
        "every level variable occurs in some atom"
    );
    // Find the next value present in every participating trie: take the
    // current maximum as the target and seek the laggards up to it; any
    // overshoot raises the target, any exhausted cursor ends the level.
    'outer: while let Some(first) = cursors[level.cursors[0]].key() {
        let mut target = first;
        let mut stable = false;
        while !stable {
            stable = true;
            for &c in &level.cursors {
                match cursors[c].key() {
                    Some(pair) if pair == target => {}
                    Some(pair) if pair > target => {
                        target = pair;
                        stable = false;
                    }
                    Some(_) => {
                        counters.seeks += 1;
                        cursors[c].seek(target);
                        match cursors[c].key() {
                            Some(pair) if pair == target => {}
                            Some(pair) => {
                                target = pair;
                                stable = false;
                            }
                            None => break 'outer,
                        }
                    }
                    None => break 'outer,
                }
            }
        }
        counters.intersections += 1;
        binding[level.slot] = Some(target.1);
        if level_ok(li, binding) {
            for &c in &level.cursors {
                cursors[c].descend(target);
            }
            lf_level(cursors, levels, li + 1, binding, counters, level_ok, emit);
            for &c in &level.cursors {
                cursors[c].up();
            }
        }
        binding[level.slot] = None;
        for &c in &level.cursors {
            counters.seeks += 1;
            cursors[c].seek_past(target);
        }
    }
    binding[level.slot] = None;
    // Every cursor enters a level at the start of its current span (open
    // and descend both leave `pos = lo`); restore that invariant so the
    // enclosing level's next value re-enumerates this column from scratch.
    for &c in &level.cursors {
        cursors[c].rewind();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{FactId, Relation};

    fn edge(a: i64, b: i64) -> Fact {
        Fact::new("E", vec![a.into(), b.into()])
    }

    fn triangle_levels() -> Vec<WcojLevel> {
        // Variable order x, y, z over Edge(x,y), Edge(y,z), Edge(x,z):
        // cursor 0 has cols (x, y), cursor 1 (y, z), cursor 2 (x, z).
        vec![
            WcojLevel {
                slot: 0,
                cursors: vec![0, 2],
            },
            WcojLevel {
                slot: 1,
                cursors: vec![0, 1],
            },
            WcojLevel {
                slot: 2,
                cursors: vec![1, 2],
            },
        ]
    }

    fn run_triangles(rel: &Relation) -> Vec<(i64, i64, i64)> {
        let mut cursors = vec![
            rel.trie_cursor(&[0, 1]).unwrap(),
            rel.trie_cursor(&[0, 1]).unwrap(),
            rel.trie_cursor(&[0, 1]).unwrap(),
        ];
        for c in &mut cursors {
            assert!(c.open(&[]));
        }
        let levels = triangle_levels();
        let mut binding = vec![None; 3];
        let mut counters = WcojCounters::default();
        let mut out = Vec::new();
        leapfrog_join(
            &mut cursors,
            &levels,
            &mut binding,
            &mut counters,
            &mut |_, _| true,
            &mut |b, cs| {
                let mut facts = Vec::new();
                cs[0].leaf_facts(&mut facts);
                assert_eq!(facts.len(), 1, "set semantics: one leaf fact");
                let val = |s: Option<ValueId>| match resolve_value(s.unwrap()) {
                    Value::Int(i) => i,
                    v => panic!("unexpected {v:?}"),
                };
                out.push((val(b[0]), val(b[1]), val(b[2])));
            },
        );
        assert!(counters.intersections > 0);
        out
    }

    #[test]
    fn leapfrog_finds_exactly_the_triangles() {
        let mut rel = Relation::new();
        // Two triangles (1,2,3) and (2,3,4) plus noise edges.
        for (a, b) in [
            (1, 2),
            (2, 3),
            (1, 3),
            (3, 4),
            (2, 4),
            (5, 6),
            (6, 7),
            (1, 7),
        ] {
            rel.insert(edge(a, b));
        }
        rel.ensure_index(&[0, 1]);
        assert_eq!(run_triangles(&rel), vec![(1, 2, 3), (2, 3, 4)]);
    }

    #[test]
    fn leapfrog_respects_level_guards() {
        let mut rel = Relation::new();
        for (a, b) in [(1, 2), (2, 3), (1, 3), (3, 4), (2, 4)] {
            rel.insert(edge(a, b));
        }
        rel.ensure_index(&[0, 1]);
        let mut cursors = vec![
            rel.trie_cursor(&[0, 1]).unwrap(),
            rel.trie_cursor(&[0, 1]).unwrap(),
            rel.trie_cursor(&[0, 1]).unwrap(),
        ];
        for c in &mut cursors {
            assert!(c.open(&[]));
        }
        let levels = triangle_levels();
        let mut binding = vec![None; 3];
        let mut counters = WcojCounters::default();
        let two = Value::Int(2).interned();
        let mut hits = 0usize;
        leapfrog_join(
            &mut cursors,
            &levels,
            &mut binding,
            &mut counters,
            // Prune every subtree where x != 2 at level 0.
            &mut |li, b| li != 0 || b[0] == Some(two),
            &mut |_, _| hits += 1,
        );
        assert_eq!(hits, 1, "only (2,3,4) survives the x = 2 guard");
        assert!(binding.iter().all(Option::is_none), "driver restores slots");
    }

    #[test]
    fn trie_cursor_composes_runs_and_requires_flushed_tails() {
        let mut rel = Relation::new();
        for (a, b) in [(1, 2), (3, 4)] {
            rel.insert(edge(a, b));
        }
        rel.ensure_index(&[0, 1]);
        // Force a second run so the cursor must compose several.
        for (a, b) in [(1, 5), (0, 9)] {
            rel.insert(edge(a, b));
        }
        assert!(rel.trie_cursor(&[0, 1]).is_none(), "unflushed tail");
        rel.flush_indexes();
        let mut cur = rel.trie_cursor(&[0, 1]).unwrap();
        assert!(cur.open(&[Value::Int(1).interned()]));
        // Children of x = 1 across both runs, in ascending value order.
        let mut seen = Vec::new();
        while let Some(pair) = cur.key() {
            cur.descend(pair);
            let mut facts = Vec::new();
            cur.leaf_facts(&mut facts);
            seen.push((resolve_value(pair.1), facts));
            cur.up();
            cur.seek_past(pair);
        }
        assert_eq!(
            seen,
            vec![
                (Value::Int(2), vec![FactId(0)]),
                (Value::Int(5), vec![FactId(2)]),
            ]
        );
        assert!(!cur.open(&[Value::Int(7).interned()]), "empty prefix span");
        assert!(rel.trie_cursor(&[1, 0]).is_none(), "missing index");
    }

    #[test]
    fn trie_cursor_composes_base_and_overlay_fact_id_ascending() {
        use crate::store::FactStore;
        let mut store = FactStore::new();
        for (a, b) in [(1, 2), (2, 3)] {
            store.insert(edge(a, b));
        }
        store.relation_mut(intern("E")).ensure_index(&[0, 1]);
        let base = store.freeze();
        let mut overlay = base.overlay();
        overlay.insert(edge(1, 3));
        let rel = overlay.relation_mut(intern("E"));
        assert!(
            rel.trie_cursor(&[0, 1]).is_none(),
            "unindexed overlay rows are invisible to a trie walk"
        );
        rel.ensure_index(&[0, 1]);
        let mut cur = rel.trie_cursor(&[0, 1]).unwrap();
        assert!(cur.open(&[Value::Int(1).interned()]));
        let mut pairs = Vec::new();
        while let Some(pair) = cur.key() {
            cur.descend(pair);
            let mut facts = Vec::new();
            cur.leaf_facts(&mut facts);
            pairs.push((resolve_value(pair.1), facts));
            cur.up();
            cur.seek_past(pair);
        }
        assert_eq!(
            pairs,
            vec![
                (Value::Int(2), vec![FactId(0)]),
                (Value::Int(3), vec![FactId(2)]),
            ]
        );
    }
}
