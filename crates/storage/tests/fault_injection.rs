//! Fault-injected WAL tests. These live in their own integration binary
//! because armed fault points are process-global: a scenario armed here
//! must not race the library tests, which append to WALs unguarded.

use vadalog_fault as fault;
use vadalog_model::{Fact, Value};
use vadalog_storage::{Wal, WalError};

#[test]
fn injected_partial_write_leaves_a_recoverable_torn_tail() {
    // hit 0 is the first (intact) append; hit 1 tears the second one
    let _scenario = fault::Scenario::arm().fail_at("wal.partial_write", 1, fault::Action::Error);
    let path = std::env::temp_dir().join(format!(
        "vadalog-storage-fault-partial-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let batch = vec![Fact::new("Edge", vec![Value::str("a"), Value::str("b")])];
    {
        let mut open = Wal::open(&path).unwrap();
        open.wal.append_batch(&batch).unwrap();
        assert!(matches!(
            open.wal.append_batch(&batch),
            Err(WalError::Fault(_))
        ));
    }
    let open = Wal::open(&path).unwrap();
    assert_eq!(open.batches.len(), 1);
    assert!(open.torn_tail.is_some());
    std::fs::remove_file(&path).unwrap();
}
