//! Property-based tests for the storage substrate: relations with dynamic
//! indices, the fact store, the active domain, the buffer cache and the CSV
//! record manager.

use proptest::prelude::*;
use vadalog_model::prelude::*;
use vadalog_storage::{
    read_csv_facts, write_csv_facts, ActiveDomain, BufferCache, EvictionPolicy, FactStore,
    RangeFilter, Relation,
};

// ---------------------------------------------------------------- strategies

fn ground_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-20i64..20).prop_map(Value::Int),
        prop::sample::select(vec!["a", "b", "c", "d", "acme"]).prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn value_with_nulls() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => ground_value(),
        1 => (0u64..4).prop_map(|n| Value::Null(NullId(n))),
    ]
}

/// Mixed-type column values for the sorted-run probe tests: numerics with
/// cross-variant equality, strings sharing an 8-byte prefix (order-key
/// collisions), booleans and labelled nulls.
fn mixed_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => (-6i64..6).prop_map(Value::Int),
        3 => (-12i64..12).prop_map(|i| Value::Float(i as f64 / 4.0)),
        2 => prop::sample::select(vec![
            "a", "b", "shared-prefix-one", "shared-prefix-two", "shared-prefix-one-more",
        ])
        .prop_map(Value::str),
        1 => any::<bool>().prop_map(Value::Bool),
        1 => (0u64..4).prop_map(|n| Value::Null(NullId(n))),
    ]
}

fn fact(arity: std::ops::Range<usize>) -> impl Strategy<Value = Fact> {
    (
        prop::sample::select(vec!["P", "Q", "Own", "Control"]),
        prop::collection::vec(value_with_nulls(), arity),
    )
        .prop_map(|(p, args)| Fact::new(p, args))
}

/// Facts of a fixed predicate and arity, convenient for relation-level tests.
fn uniform_facts(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Fact>> {
    prop::collection::vec(
        prop::collection::vec(ground_value(), 3).prop_map(|args| Fact::new("R", args)),
        n,
    )
}

// ----------------------------------------------------------------- relations

proptest! {
    /// A relation stores each distinct fact exactly once, regardless of how
    /// many times it is inserted.
    #[test]
    fn relation_deduplicates(facts in uniform_facts(0..30)) {
        let mut rel = Relation::new();
        let mut distinct = std::collections::BTreeSet::new();
        for f in &facts {
            let fresh = distinct.insert(f.clone());
            prop_assert_eq!(rel.insert(f.clone()), fresh);
        }
        prop_assert_eq!(rel.len(), distinct.len());
        for f in &facts {
            prop_assert!(rel.contains(f));
        }
    }

    /// Indexed lookup returns exactly the positions a full scan would.
    #[test]
    fn index_lookup_matches_scan(facts in uniform_facts(1..40), col in 0usize..3) {
        let mut rel = Relation::new();
        for f in &facts {
            rel.insert(f.clone());
        }
        let stored: Vec<Fact> = rel.to_facts(intern("R"));
        // probe with every value that occurs in the column, plus one absent value
        let mut probes: Vec<Value> = stored.iter().map(|f| f.args[col].clone()).collect();
        probes.push(Value::str("definitely-absent-value"));
        for probe in probes {
            let via_index: Vec<usize> =
                rel.lookup(col, probe.interned()).iter().map(|id| id.index()).collect();
            let via_scan: Vec<usize> = stored
                .iter()
                .enumerate()
                .filter(|(_, f)| f.args[col] == probe)
                .map(|(i, _)| i)
                .collect();
            let mut a = via_index.clone();
            a.sort_unstable();
            prop_assert_eq!(a, via_scan);
        }
        // once built, the index is also available through the read-only path
        prop_assert!(rel.lookup_if_indexed(col, Value::str("x").interned()).is_some() || rel.index_count() == 0 || col >= 3);
    }

    /// Building an index never changes what the relation contains.
    #[test]
    fn ensure_index_preserves_contents(facts in uniform_facts(0..30), col in 0usize..3) {
        let mut rel = Relation::new();
        for f in &facts {
            rel.insert(f.clone());
        }
        let before: Vec<Fact> = rel.to_facts(intern("R"));
        rel.ensure_index(&[col]);
        let after: Vec<Fact> = rel.to_facts(intern("R"));
        prop_assert_eq!(before, after);
        prop_assert!(rel.index_count() >= 1);
    }

    /// Inserting facts after an index is built keeps the index consistent.
    #[test]
    fn index_stays_consistent_after_inserts(
        first in uniform_facts(1..15),
        second in uniform_facts(1..15),
        col in 0usize..3,
    ) {
        let mut rel = Relation::new();
        for f in &first {
            rel.insert(f.clone());
        }
        rel.ensure_index(&[col]);
        for f in &second {
            rel.insert(f.clone());
        }
        let stored: Vec<Fact> = rel.to_facts(intern("R"));
        for probe in stored.iter().map(|f| f.args[col].clone()) {
            let mut via_index: Vec<usize> =
                rel.lookup(col, probe.interned()).iter().map(|id| id.index()).collect();
            via_index.sort_unstable();
            let via_scan: Vec<usize> = stored
                .iter()
                .enumerate()
                .filter(|(_, f)| f.args[col] == probe)
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(via_index, via_scan);
        }
    }

    // ---------------------------------------------------- sorted-run probes

    /// Exact, composite and range probes over sorted runs agree with the
    /// post-filter reference (a full scan applying the same semantics:
    /// id equality for exact columns, `CmpOp::eval` for ranges) on random
    /// relations with labelled nulls and mixed-type columns — and the frozen
    /// relation answers identically from 1, 2 and 8 concurrent threads.
    #[test]
    fn sorted_run_probes_match_post_filter_reference(
        first in prop::collection::vec(prop::collection::vec(mixed_value(), 3), 1..25),
        second in prop::collection::vec(prop::collection::vec(mixed_value(), 3), 0..15),
        probe_row in prop::collection::vec(mixed_value(), 3),
        op in prop::sample::select(vec![CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]),
    ) {
        let mut rel = Relation::new();
        for args in &first {
            rel.insert(Fact::new("R", args.clone()));
        }
        // Indexes built mid-stream so probes cross runs *and* the tail.
        rel.ensure_index(&[0]);
        rel.ensure_index(&[0, 1]);
        rel.ensure_index(&[0, 2]);
        rel.ensure_index(&[2]);
        for args in &second {
            rel.insert(Fact::new("R", args.clone()));
        }
        let stored: Vec<Fact> = rel.to_facts(intern("R"));
        // Probe values: one from the data when available, one arbitrary.
        let v0 = probe_row[0].interned();
        let v1 = probe_row[1].interned();
        let bound = probe_row[2].interned();
        let range = RangeFilter::new(op, bound);

        let reference = |pred: &dyn Fn(&Fact) -> bool| -> Vec<usize> {
            stored.iter().enumerate().filter(|(_, f)| pred(f)).map(|(i, _)| i).collect()
        };
        let probe = |cols: &[usize], prefix: &[ValueId], range: Option<&RangeFilter>| -> Vec<usize> {
            let mut scratch = Vec::new();
            let hit = rel.probe_if_indexed(cols, prefix, range, &mut scratch)
                .expect("index was built");
            hit.as_slice(&scratch).iter().map(|id| id.index()).collect()
        };

        // exact single-column
        let exact = probe(&[0], &[v0], None);
        prop_assert_eq!(&exact, &reference(&|f: &Fact| f.args[0].interned() == v0));
        // exact composite
        let composite = probe(&[0, 1], &[v0, v1], None);
        prop_assert_eq!(
            &composite,
            &reference(&|f: &Fact| f.args[0].interned() == v0 && f.args[1].interned() == v1)
        );
        // pure range
        let bound_value = probe_row[2].clone();
        let ranged = probe(&[2], &[], Some(&range));
        prop_assert_eq!(
            &ranged,
            &reference(&|f: &Fact| op.eval(&f.args[2], &bound_value))
        );
        // composite prefix + range
        let prefixed = probe(&[0, 2], &[v0], Some(&range));
        prop_assert_eq!(
            &prefixed,
            &reference(&|f: &Fact| f.args[0].interned() == v0 && op.eval(&f.args[2], &bound_value))
        );

        // concurrent readers at thread counts 1, 2 and 8 all agree
        for threads in [1usize, 2, 8] {
            let results: Vec<Vec<Vec<usize>>> = std::thread::scope(|scope| {
                (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            vec![
                                probe(&[0], &[v0], None),
                                probe(&[0, 1], &[v0, v1], None),
                                probe(&[2], &[], Some(&range)),
                                probe(&[0, 2], &[v0], Some(&range)),
                            ]
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().expect("probe thread panicked"))
                    .collect()
            });
            for r in &results {
                prop_assert_eq!(r[0].clone(), exact.clone(), "exact diverges at {} threads", threads);
                prop_assert_eq!(r[1].clone(), composite.clone());
                prop_assert_eq!(r[2].clone(), ranged.clone());
                prop_assert_eq!(r[3].clone(), prefixed.clone());
            }
        }
    }

    // ----------------------------------------------------------- fact store

    /// The store partitions facts by predicate and counts them consistently.
    #[test]
    fn store_partitions_by_predicate(facts in prop::collection::vec(fact(1..4), 0..40)) {
        let store = FactStore::from_facts(facts.clone());
        let distinct: std::collections::BTreeSet<Fact> = facts.iter().cloned().collect();
        prop_assert_eq!(store.len(), distinct.len());
        // per-predicate counts sum to the total
        let sum: usize = store.predicates().iter().map(|p| store.count(*p)).sum();
        prop_assert_eq!(sum, store.len());
        // facts_of returns exactly the facts with that predicate
        for p in store.predicates() {
            for f in store.facts_of(p) {
                prop_assert_eq!(f.predicate, p);
                prop_assert!(distinct.contains(&f));
            }
        }
        // membership agrees with the input
        for f in &facts {
            prop_assert!(store.contains(f));
        }
    }

    /// Iterating the store yields every inserted fact exactly once.
    #[test]
    fn store_iteration_is_exhaustive(facts in prop::collection::vec(fact(1..4), 0..40)) {
        let store = FactStore::from_facts(facts.clone());
        let iterated: std::collections::BTreeSet<Fact> = store.iter().collect();
        let distinct: std::collections::BTreeSet<Fact> = facts.into_iter().collect();
        prop_assert_eq!(iterated, distinct);
    }

    // -------------------------------------------------------- active domain

    /// The active domain contains exactly the ground constants of the facts
    /// (labelled nulls are excluded, per the paper's ACDom definition).
    #[test]
    fn active_domain_is_exactly_the_ground_constants(
        facts in prop::collection::vec(fact(1..4), 0..30),
    ) {
        let dom = ActiveDomain::from_facts(facts.iter());
        for f in &facts {
            for v in &f.args {
                match v {
                    Value::Null(_) => prop_assert!(!dom.contains(v)),
                    other => prop_assert!(dom.contains(other)),
                }
            }
        }
        // every domain element occurs in some fact
        for c in dom.iter() {
            prop_assert!(facts.iter().any(|f| f.args.contains(c)));
        }
        // and the Dom(*) materialisation has one unary fact per constant
        let dom_facts = dom.to_facts("Dom");
        prop_assert_eq!(dom_facts.len(), dom.len());
        for f in &dom_facts {
            prop_assert_eq!(f.arity(), 1);
            prop_assert!(dom.contains(&f.args[0]));
        }
    }

    // ---------------------------------------------------------- buffer cache

    /// Whatever fits in a segment can be read back; capacity is never
    /// exceeded; reads of present keys are hits and of absent keys misses.
    #[test]
    fn cache_put_get(facts in prop::collection::vec(fact(1..3), 1..20), capacity in 1usize..32) {
        let cache = BufferCache::new(capacity, EvictionPolicy::Lru);
        for (i, f) in facts.iter().enumerate() {
            cache.put(0, i as u64, f.clone());
            prop_assert!(cache.segment_len(0) <= capacity);
        }
        if facts.len() <= capacity {
            // nothing was evicted: every position must hit and return the
            // exact fact that was stored
            for (i, f) in facts.iter().enumerate() {
                prop_assert_eq!(cache.get(0, i as u64), Some(f.clone()));
            }
            prop_assert_eq!(cache.stats().evictions, 0);
        }
        // absent positions miss
        prop_assert_eq!(cache.get(0, 10_000), None);
        let stats = cache.stats();
        prop_assert!(stats.misses >= 1);
    }

    /// Segments are independent: filling one segment never evicts another.
    #[test]
    fn cache_segments_are_independent(facts in prop::collection::vec(fact(1..3), 1..10)) {
        let cache = BufferCache::new(2, EvictionPolicy::Lfu);
        let pinned = Fact::new("Pinned", vec![Value::Int(1)]);
        cache.put(7, 0, pinned.clone());
        for (i, f) in facts.iter().enumerate() {
            cache.put(1, i as u64, f.clone());
        }
        prop_assert_eq!(cache.get(7, 0), Some(pinned));
    }

    // ------------------------------------------------------------------ CSV

    /// Writing ground facts to CSV and reading them back preserves them
    /// (values are limited to the types the CSV record manager round-trips).
    #[test]
    fn csv_roundtrip(rows in prop::collection::vec(
        prop::collection::vec(prop_oneof![
            (-1000i64..1000).prop_map(Value::Int),
            prop::sample::select(vec!["alpha", "beta corp", "x-1", "HSBC"]).prop_map(Value::str),
            any::<bool>().prop_map(Value::Bool),
        ], 3),
        1..30,
    )) {
        let facts: Vec<Fact> = rows.into_iter().map(|args| Fact::new("Row", args)).collect();
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "vadalog_prop_csv_{}_{}.csv",
            std::process::id(),
            {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                facts.hash(&mut h);
                h.finish()
            }
        ));
        write_csv_facts(&path, &facts).expect("write failed");
        let read = read_csv_facts(&path, "Row", false).expect("read failed");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(read, facts);
    }
}
