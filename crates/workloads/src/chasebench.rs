//! ChaseBench-style scenarios for Section 6.5: Doctors / DoctorsFD (schema
//! mapping from the literature) and a LUBM-style university-domain generator.
//! These are "warded by chance": mostly harmless joins, no null propagation —
//! the cases where the paper compares against RDFox / LLunatic stand-ins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::prelude::*;
use vadalog_parser::parse_program;

/// The Doctors data-integration scenario: map source hospital/doctor records
/// into a target schema, inventing ids where the source lacks them.
pub fn doctors_program() -> Program {
    parse_program(
        "Doctor(npi, name, spec, hospital) -> TargetDoctor(npi, name, spec).\n\
         Doctor(npi, name, spec, hospital) -> WorksAt(npi, hospital).\n\
         Hospital(hname, city) -> TargetHospital(hid, hname, city).\n\
         WorksAt(npi, hname), TargetHospital(hid, hname, city) -> Employment(npi, hid).\n\
         Patient(pid, name, doctor) -> TargetPatient(pid, name).\n\
         Patient(pid, name, doctor), TargetDoctor(doctor, dname, spec) -> TreatedBy(pid, doctor).\n\
         @output(\"Employment\"). @output(\"TreatedBy\"). @output(\"TargetDoctor\").",
    )
    .expect("static program parses")
}

/// DoctorsFD: the same mapping plus functional-dependency style EGDs on the
/// target (one hospital id per hospital name).
pub fn doctors_fd_program() -> Program {
    let mut p = doctors_program();
    let fd = parse_program(
        "Dom(h1), Dom(h2), TargetHospital(h1, n, c1), TargetHospital(h2, n, c2) -> h1 = h2.",
    )
    .expect("static program parses");
    p.extend(fd);
    p
}

/// Generate source facts for the Doctors scenarios.
pub fn doctors_facts(doctors: usize, seed: u64) -> Vec<Fact> {
    let mut rng = StdRng::seed_from_u64(seed);
    let hospitals = (doctors / 10).max(1);
    let mut facts = Vec::new();
    for h in 0..hospitals {
        facts.push(Fact::new(
            "Hospital",
            vec![
                Value::string(format!("hospital{h}")),
                Value::string(format!("city{}", h % 17)),
            ],
        ));
    }
    for d in 0..doctors {
        let h = rng.gen_range(0..hospitals);
        facts.push(Fact::new(
            "Doctor",
            vec![
                Value::Int(d as i64),
                Value::string(format!("doc{d}")),
                Value::string(format!("spec{}", d % 13)),
                Value::string(format!("hospital{h}")),
            ],
        ));
    }
    for p in 0..doctors * 2 {
        let d = rng.gen_range(0..doctors);
        facts.push(Fact::new(
            "Patient",
            vec![
                Value::Int(p as i64),
                Value::string(format!("patient{p}")),
                Value::Int(d as i64),
            ],
        ));
    }
    facts
}

/// A LUBM-style university-domain program (subset of the benchmark's
/// ontology, expressed as warded rules).
pub fn lubm_program() -> Program {
    parse_program(
        "GraduateStudent(x) -> Student(x).\n\
         UndergraduateStudent(x) -> Student(x).\n\
         FullProfessor(x) -> Professor(x).\n\
         AssociateProfessor(x) -> Professor(x).\n\
         Professor(x) -> Faculty(x).\n\
         Faculty(x) -> Employee(x).\n\
         TeacherOf(x, c), TakesCourse(s, c) -> TaughtBy(s, x).\n\
         MemberOf(x, d), SubOrganizationOf(d, u) -> MemberOfUniversity(x, u).\n\
         SubOrganizationOf(a, b), SubOrganizationOf(b, c) -> SubOrganizationOf(a, c).\n\
         Professor(x) -> WorksFor(x, d).\n\
         WorksFor(x, d), SubOrganizationOf(d, u) -> MemberOfUniversity(x, u).\n\
         AdvisedBy(s, p), Professor(p) -> HasAdvisor(s, p).\n\
         @output(\"Student\"). @output(\"TaughtBy\"). @output(\"MemberOfUniversity\"). @output(\"HasAdvisor\").",
    )
    .expect("static program parses")
}

/// Generate LUBM-style facts for `universities` universities.
pub fn lubm_facts(universities: usize, seed: u64) -> Vec<Fact> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut facts = Vec::new();
    let mut id = 0usize;
    for u in 0..universities {
        let uni = format!("u{u}");
        let departments = 5;
        for d in 0..departments {
            let dept = format!("u{u}_d{d}");
            facts.push(Fact::new(
                "SubOrganizationOf",
                vec![Value::string(dept.clone()), Value::string(uni.clone())],
            ));
            for p in 0..4 {
                let prof = format!("prof{id}_{p}");
                facts.push(Fact::new(
                    if p == 0 {
                        "FullProfessor"
                    } else {
                        "AssociateProfessor"
                    },
                    vec![Value::string(prof.clone())],
                ));
                facts.push(Fact::new(
                    "MemberOf",
                    vec![Value::string(prof.clone()), Value::string(dept.clone())],
                ));
                let course = format!("course{id}_{p}");
                facts.push(Fact::new(
                    "TeacherOf",
                    vec![Value::string(prof.clone()), Value::string(course.clone())],
                ));
                for s in 0..6 {
                    let student = format!("stud{id}_{p}_{s}");
                    facts.push(Fact::new(
                        if s % 3 == 0 {
                            "GraduateStudent"
                        } else {
                            "UndergraduateStudent"
                        },
                        vec![Value::string(student.clone())],
                    ));
                    facts.push(Fact::new(
                        "TakesCourse",
                        vec![
                            Value::string(student.clone()),
                            Value::string(course.clone()),
                        ],
                    ));
                    if rng.gen_bool(0.3) {
                        facts.push(Fact::new(
                            "AdvisedBy",
                            vec![Value::string(student), Value::string(prof.clone())],
                        ));
                    }
                }
            }
            id += 1;
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_analysis::classify;
    use vadalog_engine::Reasoner;

    #[test]
    fn doctors_is_warded_and_runs_end_to_end() {
        let mut program = doctors_program();
        for f in doctors_facts(50, 3) {
            program.add_fact(f);
        }
        assert!(classify(&program).is_warded);
        let result = Reasoner::new().reason(&program).unwrap();
        assert!(!result.output("Employment").is_empty());
        assert!(!result.output("TreatedBy").is_empty());
    }

    #[test]
    fn doctors_fd_detects_no_violations_on_clean_data() {
        let mut program = doctors_fd_program();
        for f in doctors_facts(30, 4) {
            program.add_fact(f);
        }
        let result = Reasoner::new().reason(&program).unwrap();
        // hospital ids are invented nulls, so the Dom-guarded EGD never
        // fires on them — no spurious violations.
        assert!(result.violations.is_empty());
    }

    #[test]
    fn lubm_hierarchy_and_closure() {
        let mut program = lubm_program();
        for f in lubm_facts(1, 5) {
            program.add_fact(f);
        }
        let result = Reasoner::new().reason(&program).unwrap();
        assert!(!result.output("Student").is_empty());
        assert!(!result.output("TaughtBy").is_empty());
        assert!(!result.output("MemberOfUniversity").is_empty());
    }
}
