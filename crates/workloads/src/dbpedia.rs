//! DBpedia-style company/person graphs and the four reasoning tasks of
//! Section 6.3 (PSC, AllPSC, SpecStrongLinks, AllStrongLinks).
//!
//! The real DBpedia dump (~67K companies, ~1.5M persons) is replaced by a
//! seeded synthetic generator with the same shape: a control DAG built from
//! parent-company chains plus a key-person relation assigning persons to
//! companies (see DESIGN.md, "Substitutions").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::prelude::*;
use vadalog_parser::parse_program;

/// Generate the extensional facts of a company/person graph.
///
/// * `companies` companies named `c0..`, each with a `Company` fact;
/// * `persons` persons named `p0..`, each with a `Person` fact;
/// * every company except roots gets a `Control(parent, child)` edge whose
///   parent is an earlier company (long control chains, as in the paper);
/// * each company receives up to `key_persons_per_company` `KeyPerson`
///   facts.
pub fn company_graph(
    companies: usize,
    persons: usize,
    key_persons_per_company: usize,
    seed: u64,
) -> Vec<Fact> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut facts = Vec::new();
    for c in 0..companies {
        facts.push(Fact::new("Company", vec![Value::string(format!("c{c}"))]));
        if c > 0 {
            // Prefer recent parents: produces long chains with some fan-out.
            let parent = if rng.gen_bool(0.7) {
                c - 1
            } else {
                rng.gen_range(0..c)
            };
            facts.push(Fact::new(
                "Control",
                vec![
                    Value::string(format!("c{parent}")),
                    Value::string(format!("c{c}")),
                ],
            ));
        }
    }
    for p in 0..persons {
        facts.push(Fact::new("Person", vec![Value::string(format!("p{p}"))]));
    }
    if persons > 0 {
        for c in 0..companies {
            let k = rng.gen_range(0..=key_persons_per_company);
            for _ in 0..k {
                let p = rng.gen_range(0..persons);
                facts.push(Fact::new(
                    "KeyPerson",
                    vec![
                        Value::string(format!("c{c}")),
                        Value::string(format!("p{p}")),
                    ],
                ));
            }
        }
    }
    facts
}

/// The PSC program (Example 11): persons with significant control, direct or
/// inherited along the control hierarchy.
pub fn psc_program() -> Program {
    parse_program(
        "KeyPerson(x, p), Person(p) -> PSC(x, p).\n\
         Control(y, x), PSC(y, p) -> PSC(x, p).\n\
         @output(\"PSC\").",
    )
    .expect("static program parses")
}

/// The AllPSC program (Example 12): group all PSCs of a company into one set
/// with `munion`.
pub fn all_psc_program() -> Program {
    parse_program(
        "KeyPerson(x, p), Person(p) -> PSC(x, p).\n\
         Control(y, x), PSC(y, p) -> PSC(x, p).\n\
         PSC(x, p), j = munion(p) -> AllPSC(x, j).\n\
         @output(\"AllPSC\").",
    )
    .expect("static program parses")
}

/// The strong-links program (Example 13): companies sharing at least
/// `min_shared` persons of significant control, with an existential PSC for
/// companies that have none.
pub fn strong_links_program(min_shared: i64) -> Program {
    parse_program(&format!(
        "KeyPerson(x, p) -> PSC(x, p).\n\
         Company(x) -> PSC(x, p).\n\
         Control(y, x), PSC(y, p) -> PSC(x, p).\n\
         PSC(x, p), PSC(y, p), x > y, w = mcount(p), w >= {min_shared} -> StrongLink(x, y, w).\n\
         @output(\"StrongLink\")."
    ))
    .expect("static program parses")
}

/// SpecStrongLinks: strong links of one specific company only.
pub fn spec_strong_links_program(company: &str, min_shared: i64) -> Program {
    parse_program(&format!(
        "KeyPerson(x, p) -> PSC(x, p).\n\
         Company(x) -> PSC(x, p).\n\
         Control(y, x), PSC(y, p) -> PSC(x, p).\n\
         PSC(x, p), PSC(y, p), x == \"{company}\", x > y, w = mcount(p), w >= {min_shared} -> StrongLink(x, y, w).\n\
         @output(\"StrongLink\")."
    ))
    .expect("static program parses")
}

/// Bundle a program with generated facts.
pub fn with_facts(mut program: Program, facts: Vec<Fact>) -> Program {
    for f in facts {
        program.add_fact(f);
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_engine::Reasoner;

    #[test]
    fn graph_generation_is_deterministic_and_shaped() {
        let a = company_graph(50, 200, 2, 42);
        let b = company_graph(50, 200, 2, 42);
        assert_eq!(a, b);
        let controls = a.iter().filter(|f| f.predicate_name() == "Control").count();
        assert_eq!(controls, 49);
        let companies = a.iter().filter(|f| f.predicate_name() == "Company").count();
        assert_eq!(companies, 50);
    }

    #[test]
    fn psc_propagates_along_control_chains() {
        let facts = company_graph(30, 60, 2, 7);
        let program = with_facts(psc_program(), facts);
        let result = Reasoner::new().reason(&program).unwrap();
        let psc = result.output("PSC");
        let keypersons = program
            .facts
            .iter()
            .filter(|f| f.predicate_name() == "KeyPerson")
            .count();
        // transitive closure can only add to the direct assignments
        assert!(psc.len() >= keypersons.min(1));
    }

    #[test]
    fn strong_links_smoke_test() {
        let facts = company_graph(20, 30, 3, 11);
        let program = with_facts(strong_links_program(1), facts);
        let result = Reasoner::new().reason(&program).unwrap();
        // No panic, reasonable sizes, and every strong link has a count >= 1.
        for f in result.output("StrongLink") {
            assert!(f.args[2].as_f64().unwrap_or(0.0) >= 1.0);
        }
    }
}
