//! Cyclic-join graph workloads: triangle and 4-clique enumeration, the
//! regime the worst-case-optimal join path targets.
//!
//! A binary plan evaluates a cyclic body one atom at a time, so some
//! step enumerates an open path before the closing edge filters it. With
//! a smart planner that step still costs `min(deg(x), deg(y))` per edge
//! `(x, y)` — which [`layered_edges`] drives to `Θ(m)` on *every* dense
//! edge: a complete layer chain `A → B → C` (each layer `m` vertices)
//! gives both endpoints of every core edge degree `m`, while the
//! triangles stay bounded by the `closing` sparse `A → C` edges (each
//! closes exactly `m` triangles, one per middle vertex). The AGM-style
//! per-variable intersection skips the dense block in a single seek —
//! layer ids are contiguous, so `out(a) = B ∪ {few c}` leapfrogs past
//! all of `B` at once when intersected with `out(b) = C` — making these
//! generators the instance family where `--wcoj-ablation` measures the
//! worst-case gap. [`random_edges`] is the plain uniform variant used by
//! the correctness tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::prelude::*;
use vadalog_parser::parse_program;

/// `Edge(a, b)` facts over a seeded uniform random directed graph:
/// `edges` independent draws among `nodes` vertices. Self-loops are kept
/// (valid triangle members, equality corners of the intersection) and
/// duplicate draws collapse under the store's set semantics.
pub fn random_edges(nodes: usize, edges: usize, seed: u64) -> Vec<Fact> {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = nodes.max(2);
    let mut facts = Vec::with_capacity(edges);
    for _ in 0..edges {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        facts.push(Fact::new(
            "Edge",
            vec![Value::Int(a as i64), Value::Int(b as i64)],
        ));
    }
    facts
}

/// `Edge(a, b)` facts of the layered worst-case instance: `layers`
/// consecutive vertex blocks of `m` vertices each (`L_i = [i·m, (i+1)·m)`)
/// with **complete** edge sets `L_i → L_{i+1}`, plus `closing` uniformly
/// random forward skip edges `L_i → L_j` (`j ≥ i + 2`). The dense chains
/// make every binary step enumerate `Θ(m)` candidates per core edge; the
/// sparse skips bound the output. Duplicate skip draws collapse under set
/// semantics.
pub fn layered_edges(m: usize, layers: usize, closing: usize, seed: u64) -> Vec<Fact> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = m.max(1);
    let layers = layers.max(3);
    let mut facts = Vec::with_capacity((layers - 1) * m * m + closing);
    let edge =
        |a: usize, b: usize| Fact::new("Edge", vec![Value::Int(a as i64), Value::Int(b as i64)]);
    for l in 0..layers - 1 {
        for a in l * m..(l + 1) * m {
            for b in (l + 1) * m..(l + 2) * m {
                facts.push(edge(a, b));
            }
        }
    }
    for _ in 0..closing {
        let i = rng.gen_range(0..layers - 2);
        let j = rng.gen_range(i + 2..layers);
        let a = i * m + rng.gen_range(0..m);
        let b = j * m + rng.gen_range(0..m);
        facts.push(edge(a, b));
    }
    facts
}

/// The triangle program alone: one cyclic rule, directed orientation.
pub fn triangle_program() -> Program {
    parse_program(
        "Edge(x, y), Edge(y, z), Edge(x, z) -> Triangle(x, y, z).\n\
         @output(\"Triangle\").",
    )
    .expect("triangle program parses")
}

/// Triangle enumeration over the 3-layer worst-case instance — the
/// canonical cyclic-body workload (`fig10_graph/triangle` in the bench
/// gate). `2m²` dense core edges plus `closing` sparse `A → C` edges;
/// each distinct closing edge yields exactly `m` triangles.
pub fn triangle(m: usize, closing: usize, seed: u64) -> Program {
    let mut program = triangle_program();
    for f in layered_edges(m, 3, closing, seed) {
        program.add_fact(f);
    }
    program
}

/// The directed 4-clique program alone: six edge atoms over four
/// variables, every pair oriented low-to-high in body order. The body's
/// GYO reduction leaves the full hypergraph — maximally cyclic — and a
/// binary plan's open path prefix pays the dense-layer degree once per
/// free variable instead of the triangle's once.
pub fn four_clique_program() -> Program {
    parse_program(
        "Edge(x, y), Edge(x, z), Edge(x, w), Edge(y, z), Edge(y, w), Edge(z, w) \
         -> Clique(x, y, z, w).\n\
         @output(\"Clique\").",
    )
    .expect("four-clique program parses")
}

/// 4-clique enumeration over the 4-layer worst-case instance: a clique
/// `(a, b, c, d)` uses three consecutive dense edges plus three sparse
/// skips (`a → c`, `b → d`, `a → d`), so the output stays sparse while
/// every binary prefix pays the dense degree.
pub fn four_clique(m: usize, closing: usize, seed: u64) -> Program {
    let mut program = four_clique_program();
    for f in layered_edges(m, 4, closing, seed) {
        program.add_fact(f);
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_datalog() {
        let a = layered_edges(20, 3, 50, 7);
        let b = layered_edges(20, 3, 50, 7);
        assert_eq!(a, b);
        assert_ne!(a, layered_edges(20, 3, 50, 8));
        assert_eq!(a.len(), 2 * 20 * 20 + 50);
        assert_eq!(random_edges(100, 500, 7), random_edges(100, 500, 7));
        for program in [triangle(12, 30, 7), four_clique(8, 30, 7)] {
            assert!(vadalog_analysis::classify(&program).is_datalog);
        }
    }

    #[test]
    fn triangle_bodies_are_cyclic_and_route_through_wcoj() {
        use vadalog_analysis::rule_body_is_cyclic;
        let tri = triangle(12, 40, 11);
        let clique = four_clique(8, 60, 11);
        assert!(rule_body_is_cyclic(&tri.rules[0]));
        assert!(rule_body_is_cyclic(&clique.rules[0]));
        // Every distinct A -> C closing edge closes exactly m triangles.
        let distinct_closing: std::collections::BTreeSet<_> = layered_edges(12, 3, 40, 11)
            [2 * 12 * 12..]
            .iter()
            .map(|f| f.args.clone())
            .collect();
        // Engine smoke: the WCOJ path activates and agrees with the
        // binary-join plan exactly. Explicit knob so the test holds even
        // under a `VADALOG_WCOJ=0` CI leg.
        let wcoj = vadalog_engine::Reasoner::with_options(vadalog_engine::ReasonerOptions {
            wcoj: true,
            ..Default::default()
        })
        .reason(&tri)
        .expect("wcoj run failed");
        assert!(wcoj.stats.pipeline.wcoj_activations > 0);
        assert!(wcoj.stats.pipeline.wcoj_intersections > 0);
        assert_eq!(wcoj.output("Triangle").len(), distinct_closing.len() * 12);
        let binary = vadalog_engine::Reasoner::with_options(vadalog_engine::ReasonerOptions {
            wcoj: false,
            ..Default::default()
        })
        .reason(&tri)
        .expect("binary run failed");
        assert_eq!(binary.stats.pipeline.wcoj_activations, 0);
        assert_eq!(wcoj.output("Triangle"), binary.output("Triangle"));
        assert!(!wcoj.output("Triangle").is_empty());
    }
}
