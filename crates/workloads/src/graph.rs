//! Cyclic-join graph workloads: triangle and 4-clique enumeration, the
//! regime the worst-case-optimal join path targets.
//!
//! A binary plan evaluates a cyclic body one atom at a time, so some
//! step enumerates an open path before the closing edge filters it. With
//! a smart planner that step still costs `min(deg(x), deg(y))` per edge
//! `(x, y)` — which [`layered_edges`] drives to `Θ(m)` on *every* dense
//! edge: a complete layer chain `A → B → C` (each layer `m` vertices)
//! gives both endpoints of every core edge degree `m`, while the
//! triangles stay bounded by the `closing` sparse `A → C` edges (each
//! closes exactly `m` triangles, one per middle vertex). The AGM-style
//! per-variable intersection skips the dense block in a single seek —
//! layer ids are contiguous, so `out(a) = B ∪ {few c}` leapfrogs past
//! all of `B` at once when intersected with `out(b) = C` — making these
//! generators the instance family where `--wcoj-ablation` measures the
//! worst-case gap. [`random_edges`] is the plain uniform variant used by
//! the correctness tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::prelude::*;
use vadalog_parser::parse_program;

/// `Edge(a, b)` facts over a seeded uniform random directed graph:
/// `edges` independent draws among `nodes` vertices. Self-loops are kept
/// (valid triangle members, equality corners of the intersection) and
/// duplicate draws collapse under the store's set semantics.
pub fn random_edges(nodes: usize, edges: usize, seed: u64) -> Vec<Fact> {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = nodes.max(2);
    let mut facts = Vec::with_capacity(edges);
    for _ in 0..edges {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        facts.push(Fact::new(
            "Edge",
            vec![Value::Int(a as i64), Value::Int(b as i64)],
        ));
    }
    facts
}

/// `Edge(a, b)` facts of the layered worst-case instance: `layers`
/// consecutive vertex blocks of `m` vertices each (`L_i = [i·m, (i+1)·m)`)
/// with **complete** edge sets `L_i → L_{i+1}`, plus `closing` uniformly
/// random forward skip edges `L_i → L_j` (`j ≥ i + 2`). The dense chains
/// make every binary step enumerate `Θ(m)` candidates per core edge; the
/// sparse skips bound the output. Duplicate skip draws collapse under set
/// semantics.
pub fn layered_edges(m: usize, layers: usize, closing: usize, seed: u64) -> Vec<Fact> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = m.max(1);
    let layers = layers.max(3);
    let mut facts = Vec::with_capacity((layers - 1) * m * m + closing);
    let edge =
        |a: usize, b: usize| Fact::new("Edge", vec![Value::Int(a as i64), Value::Int(b as i64)]);
    for l in 0..layers - 1 {
        for a in l * m..(l + 1) * m {
            for b in (l + 1) * m..(l + 2) * m {
                facts.push(edge(a, b));
            }
        }
    }
    for _ in 0..closing {
        let i = rng.gen_range(0..layers - 2);
        let j = rng.gen_range(i + 2..layers);
        let a = i * m + rng.gen_range(0..m);
        let b = j * m + rng.gen_range(0..m);
        facts.push(edge(a, b));
    }
    facts
}

/// The triangle program alone: one cyclic rule, directed orientation.
pub fn triangle_program() -> Program {
    parse_program(
        "Edge(x, y), Edge(y, z), Edge(x, z) -> Triangle(x, y, z).\n\
         @output(\"Triangle\").",
    )
    .expect("triangle program parses")
}

/// Triangle enumeration over the 3-layer worst-case instance — the
/// canonical cyclic-body workload (`fig10_graph/triangle` in the bench
/// gate). `2m²` dense core edges plus `closing` sparse `A → C` edges;
/// each distinct closing edge yields exactly `m` triangles.
pub fn triangle(m: usize, closing: usize, seed: u64) -> Program {
    let mut program = triangle_program();
    for f in layered_edges(m, 3, closing, seed) {
        program.add_fact(f);
    }
    program
}

/// The directed 4-clique program alone: six edge atoms over four
/// variables, every pair oriented low-to-high in body order. The body's
/// GYO reduction leaves the full hypergraph — maximally cyclic — and a
/// binary plan's open path prefix pays the dense-layer degree once per
/// free variable instead of the triangle's once.
pub fn four_clique_program() -> Program {
    parse_program(
        "Edge(x, y), Edge(x, z), Edge(x, w), Edge(y, z), Edge(y, w), Edge(z, w) \
         -> Clique(x, y, z, w).\n\
         @output(\"Clique\").",
    )
    .expect("four-clique program parses")
}

/// 4-clique enumeration over the 4-layer worst-case instance: a clique
/// `(a, b, c, d)` uses three consecutive dense edges plus three sparse
/// skips (`a → c`, `b → d`, `a → d`), so the output stays sparse while
/// every binary prefix pays the dense degree.
pub fn four_clique(m: usize, closing: usize, seed: u64) -> Program {
    let mut program = four_clique_program();
    for f in layered_edges(m, 4, closing, seed) {
        program.add_fact(f);
    }
    program
}

/// `pred(v, k)` pendant-fan facts: `fan` out-edges per vertex of
/// `[from, from + count)`, targets packed contiguously from
/// `from + count` — disjoint from the sources, so one tier's targets can
/// seed the next tier without ever re-entering the cycle relation.
pub fn pendant_fan(pred: &str, from: usize, count: usize, fan: usize) -> Vec<Fact> {
    let base = from + count;
    let mut facts = Vec::with_capacity(count * fan);
    for v in 0..count {
        for j in 0..fan {
            facts.push(Fact::new(
                pred,
                vec![
                    Value::Int((from + v) as i64),
                    Value::Int((base + v * fan + j) as i64),
                ],
            ));
        }
    }
    facts
}

/// The lollipop program alone: a triangle core with an attributed two-hop
/// pendant tail (`z → w → u`, the midpoint `w` carrying a label and a
/// weight — the usual knowledge-graph shape of an entity hanging off a
/// cyclic motif). GYO strips the whole tail, so the hybrid route leapfrogs
/// only the three `Edge` atoms and finishes the tail with binary probes.
/// The full-WCOJ route drags the tail atoms into the leapfrog, where `w`'s
/// four occurrences outrank the core variable `z` in the degree-ordered
/// level sequence: the leapfrog enumerates every pendant midpoint before
/// the core has constrained it. The binary route enumerates the dense open
/// path of the triangle.
pub fn lollipop_program() -> Program {
    parse_program(
        "Edge(x, y), Edge(y, z), Edge(x, z), Pend(z, w), Label(w, a), Weight(w, b), Hop(w, u) \
         -> Lollipop(x, y, z, w, u).\n\
         @output(\"Lollipop\").",
    )
    .expect("lollipop program parses")
}

/// Lollipop enumeration over the 3-layer worst-case triangle instance
/// plus an attributed pendant fan on every vertex: each of the
/// `closing · m` triangles spawns `fan²` two-hop tails. Every pendant
/// midpoint carries exactly one label and one weight, so the attribute
/// atoms never multiply the output — they exist to inflate `w`'s degree in
/// the full-leapfrog variable ranking (see [`lollipop_program`]).
pub fn lollipop(m: usize, closing: usize, fan: usize, seed: u64) -> Program {
    let mut program = lollipop_program();
    for f in layered_edges(m, 3, closing, seed) {
        program.add_fact(f);
    }
    // Pendant tier on the 3·m triangle vertices, then hops and attributes
    // on the tier's targets, ids packed past the cycle vertex space.
    let nodes = 3 * m;
    let tier = nodes * fan;
    for f in pendant_fan("Pend", 0, nodes, fan) {
        program.add_fact(f);
    }
    for f in pendant_fan("Hop", nodes, tier, fan) {
        program.add_fact(f);
    }
    for t in nodes..nodes + tier {
        let t = t as i64;
        program.add_fact(Fact::new("Label", vec![Value::Int(t), Value::Int(t + 1)]));
        program.add_fact(Fact::new("Weight", vec![Value::Int(t), Value::Int(2 * t)]));
    }
    program
}

/// The diamond program alone: a directed 4-cycle (`x → y → z → w` closed
/// by `x → w`) with an attributed two-hop pendant tail, the same tail
/// shape as [`lollipop_program`] over a larger cyclic core. The 4-cycle is
/// the GYO residue; the tail tip `u` (four occurrences) outranks every
/// core variable in the full-leapfrog degree ordering, so the pure WCOJ
/// plan enumerates all pendant midpoints per delta row before the core
/// constrains anything, while the hybrid plan leapfrogs the unpolluted
/// 4-cycle and probes the tail per match.
pub fn diamond_program() -> Program {
    parse_program(
        "Edge(x, y), Edge(y, z), Edge(z, w), Edge(x, w), \
         Pend(w, u), Label(u, a), Weight(u, b), Hop(u, t) \
         -> Diamond(x, y, z, w, u).\n\
         @output(\"Diamond\").",
    )
    .expect("diamond program parses")
}

/// Diamond enumeration over the 4-layer worst-case instance: the chain
/// `L0 → L1 → L2 → L3` is dense, the closing `x → w` skips are sparse, so
/// each distinct `L0 → L3` closing edge closes `m²` quadrangles while a
/// binary plan enumerates the `Θ(m⁴)` open chain. Pendant tiers and
/// attributes mirror [`lollipop`].
pub fn diamond(m: usize, closing: usize, fan: usize, seed: u64) -> Program {
    let mut program = diamond_program();
    for f in layered_edges(m, 4, closing, seed) {
        program.add_fact(f);
    }
    let nodes = 4 * m;
    let tier = nodes * fan;
    for f in pendant_fan("Pend", 0, nodes, fan) {
        program.add_fact(f);
    }
    for f in pendant_fan("Hop", nodes, tier, fan) {
        program.add_fact(f);
    }
    for t in nodes..nodes + tier {
        let t = t as i64;
        program.add_fact(Fact::new("Label", vec![Value::Int(t), Value::Int(t + 1)]));
        program.add_fact(Fact::new("Weight", vec![Value::Int(t), Value::Int(2 * t)]));
    }
    program
}

/// The 5-cycle program alone: fully cyclic (its own GYO residue), so the
/// hybrid planner declines it and the strategy knob falls through to the
/// full leapfrog — planner-coverage workload, not an ablation target.
pub fn five_cycle_program() -> Program {
    parse_program(
        "Edge(a, b), Edge(b, c), Edge(c, d), Edge(d, e), Edge(a, e) \
         -> Penta(a, b, c, d, e).\n\
         @output(\"Penta\").",
    )
    .expect("five-cycle program parses")
}

/// 5-cycle enumeration over the 5-layer worst-case instance, closed by
/// sparse `L0 → L4` skips (each closing edge closes `m³` pentagons of the
/// dense chain).
pub fn five_cycle(m: usize, closing: usize, seed: u64) -> Program {
    let mut program = five_cycle_program();
    for f in layered_edges(m, 5, closing, seed) {
        program.add_fact(f);
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_datalog() {
        let a = layered_edges(20, 3, 50, 7);
        let b = layered_edges(20, 3, 50, 7);
        assert_eq!(a, b);
        assert_ne!(a, layered_edges(20, 3, 50, 8));
        assert_eq!(a.len(), 2 * 20 * 20 + 50);
        assert_eq!(random_edges(100, 500, 7), random_edges(100, 500, 7));
        for program in [triangle(12, 30, 7), four_clique(8, 30, 7)] {
            assert!(vadalog_analysis::classify(&program).is_datalog);
        }
    }

    #[test]
    fn triangle_bodies_are_cyclic_and_route_through_wcoj() {
        use vadalog_analysis::rule_body_is_cyclic;
        let tri = triangle(12, 40, 11);
        let clique = four_clique(8, 60, 11);
        assert!(rule_body_is_cyclic(&tri.rules[0]));
        assert!(rule_body_is_cyclic(&clique.rules[0]));
        // Every distinct A -> C closing edge closes exactly m triangles.
        let distinct_closing: std::collections::BTreeSet<_> = layered_edges(12, 3, 40, 11)
            [2 * 12 * 12..]
            .iter()
            .map(|f| f.args.clone())
            .collect();
        // Engine smoke: the WCOJ path activates and agrees with the
        // binary-join plan exactly. Explicit knob so the test holds even
        // under a `VADALOG_WCOJ=0` CI leg.
        let wcoj = vadalog_engine::Reasoner::with_options(vadalog_engine::ReasonerOptions {
            join_strategy: vadalog_engine::JoinStrategy::Wcoj,
            ..Default::default()
        })
        .reason(&tri)
        .expect("wcoj run failed");
        assert!(wcoj.stats.pipeline.wcoj_activations > 0);
        assert!(wcoj.stats.pipeline.wcoj_intersections > 0);
        assert_eq!(wcoj.output("Triangle").len(), distinct_closing.len() * 12);
        let binary = vadalog_engine::Reasoner::with_options(vadalog_engine::ReasonerOptions {
            join_strategy: vadalog_engine::JoinStrategy::Binary,
            ..Default::default()
        })
        .reason(&tri)
        .expect("binary run failed");
        assert_eq!(binary.stats.pipeline.wcoj_activations, 0);
        assert_eq!(wcoj.output("Triangle"), binary.output("Triangle"));
        assert!(!wcoj.output("Triangle").is_empty());
    }

    #[test]
    fn hybrid_workloads_route_and_agree_across_all_strategies() {
        use vadalog_engine::{JoinStrategy, Reasoner, ReasonerOptions};
        let run = |program: &vadalog_model::prelude::Program, strategy: JoinStrategy| {
            Reasoner::with_options(ReasonerOptions {
                join_strategy: strategy,
                ..Default::default()
            })
            .reason(program)
            .expect("run failed")
        };
        // Lollipop and diamond have a proper cyclic core plus acyclic
        // ears: the hybrid strategy must activate its route and agree
        // bit-for-bit with both pure strategies.
        for (program, out, expect) in [
            (lollipop(8, 20, 2, 7), "Lollipop", None),
            // Each distinct L0 → L3 closing skip closes m² quadrangles,
            // times the fan.
            (diamond(6, 30, 2, 7), "Diamond", None),
            // Each distinct L0 → L4 closing skip closes m³ pentagons.
            (five_cycle(4, 20, 7), "Penta", None),
        ] {
            let hybrid = run(&program, JoinStrategy::Hybrid);
            let wcoj = run(&program, JoinStrategy::Wcoj);
            let binary = run(&program, JoinStrategy::Binary);
            assert!(!hybrid.output(out).is_empty(), "{out} output is empty");
            assert_eq!(
                hybrid.output(out),
                wcoj.output(out),
                "{out}: hybrid vs wcoj"
            );
            assert_eq!(
                hybrid.output(out),
                binary.output(out),
                "{out}: hybrid vs binary"
            );
            assert_eq!(binary.stats.pipeline.wcoj_activations, 0);
            assert_eq!(binary.stats.pipeline.hybrid_activations, 0);
            if out == "Penta" {
                // Fully cyclic: the hybrid planner declines and the knob
                // falls through to the full leapfrog.
                assert_eq!(hybrid.stats.pipeline.hybrid_activations, 0);
                assert!(hybrid.stats.pipeline.wcoj_activations > 0);
            } else {
                assert!(
                    hybrid.stats.pipeline.hybrid_activations > 0,
                    "{out} must take the hybrid route"
                );
                assert!(wcoj.stats.pipeline.wcoj_activations > 0);
            }
            if let Some(expect) = expect {
                assert_eq!(hybrid.output(out).len(), expect);
            }
        }
    }

    #[test]
    fn pendant_fans_chain_without_reentering_the_cycle() {
        let nodes = 6;
        let tier1 = pendant_fan("Pend", 0, nodes, 3);
        let tier2 = pendant_fan("Hop", nodes, nodes * 3, 3);
        assert_eq!(tier1.len(), nodes * 3);
        assert_eq!(tier2.len(), nodes * 9);
        // Every tier-1 target is a tier-2 source, and no target of either
        // tier collides with a source id space below it.
        let t2_sources: std::collections::BTreeSet<i64> =
            tier2.iter().map(|f| f.args[0].as_i64().unwrap()).collect();
        for f in &tier1 {
            let target = f.args[1].as_i64().unwrap();
            assert!(target >= nodes as i64);
            assert!(t2_sources.contains(&target));
        }
        for f in &tier2 {
            assert!(f.args[1].as_i64().unwrap() >= (nodes + nodes * 3) as i64);
        }
    }
}
