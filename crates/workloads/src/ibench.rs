//! iBench-style integration scenarios (Section 6.2): STB-128 and ONT-256
//! analogues — large, non-trivially warded rule sets with many existentials,
//! harmful joins and pervasive recursion, plus `n` source facts per source
//! predicate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::prelude::*;

/// Parameters of an iBench-style scenario.
#[derive(Clone, Copy, Debug)]
pub struct IBenchSpec {
    /// Total number of rules to generate.
    pub rules: usize,
    /// Fraction of rules with existential quantification (0..1).
    pub existential_fraction: f64,
    /// Number of harmful joins to include.
    pub harmful_joins: usize,
    /// Number of source predicates.
    pub source_predicates: usize,
    /// Facts per source predicate.
    pub facts_per_source: usize,
    /// Distinct constants (join selectivity).
    pub domain_size: usize,
}

/// The STB-128 analogue (≈250 warded rules, 25% existential, 15 harmful
/// joins), scaled by `scale` on the data side.
pub fn stb_128(scale: f64, seed: u64) -> Program {
    generate(
        &IBenchSpec {
            rules: 250,
            existential_fraction: 0.25,
            harmful_joins: 15,
            source_predicates: 40,
            facts_per_source: ((1000.0 * scale) as usize).max(10),
            domain_size: ((200.0 * scale) as usize).max(20),
        },
        seed,
    )
}

/// The ONT-256 analogue (≈789 warded rules, 35% existential, many harmful
/// joins), scaled by `scale` on the data side.
pub fn ont_256(scale: f64, seed: u64) -> Program {
    generate(
        &IBenchSpec {
            rules: 789,
            existential_fraction: 0.35,
            harmful_joins: 100,
            source_predicates: 80,
            facts_per_source: ((1000.0 * scale) as usize).max(10),
            domain_size: ((300.0 * scale) as usize).max(20),
        },
        seed,
    )
}

/// Generate an iBench-style warded program.
pub fn generate(spec: &IBenchSpec, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut program = Program::new();
    let src = |i: usize| format!("Src_{i}");
    let tgt = |i: usize| format!("Tgt_{i}");

    // Source facts.
    for s in 0..spec.source_predicates {
        for _ in 0..spec.facts_per_source {
            let a = rng.gen_range(0..spec.domain_size) as i64;
            let b = rng.gen_range(0..spec.domain_size) as i64;
            program.add_fact(Fact::new(&src(s), vec![Value::Int(a), Value::Int(b)]));
        }
        program.add_annotation(Annotation::new(AnnotationKind::Input, &src(s), vec![]));
    }

    let n_targets = spec.rules / 2;

    // Harmful-join block first: each harmful join needs a guaranteed-affected
    // pair of target predicates, so its two rules are generated explicitly
    // (an existential source rule plus the join itself).
    let harmful_pairs = spec.harmful_joins.min(spec.rules / 2);
    for j in 0..harmful_pairs {
        let s = src(j % spec.source_predicates);
        program.add_rule(Rule::tgd(
            vec![Atom::vars(&s, &["x", "y"])],
            vec![Atom::vars(&format!("AffT_{j}"), &["x", "n"])],
        ));
        program.add_rule(Rule::tgd(
            vec![
                Atom::vars(&format!("AffT_{j}"), &["x", "n"]),
                Atom::vars(
                    &format!("AffT_{}", (j + 1) % harmful_pairs.max(1)),
                    &["y", "n"],
                ),
            ],
            vec![Atom::vars("Link", &["x", "y"])],
        ));
    }

    let remaining = spec.rules - 2 * harmful_pairs;
    for r in 0..remaining {
        let existential = rng.gen_bool(spec.existential_fraction);
        let kind = r % 4;
        match kind {
            // source-to-target copy (possibly inventing a value)
            0 => {
                let s = src(r % spec.source_predicates);
                let t = tgt(r % n_targets);
                let head_vars: &[&str] = if existential {
                    &["x", "n"]
                } else {
                    &["x", "y"]
                };
                program.add_rule(Rule::tgd(
                    vec![Atom::vars(&s, &["x", "y"])],
                    vec![Atom::vars(&t, head_vars)],
                ));
            }
            // target-to-target propagation (recursion, null propagation)
            1 => {
                let t1 = tgt(r % n_targets);
                let t2 = tgt((r + 3) % n_targets);
                program.add_rule(Rule::tgd(
                    vec![Atom::vars(&t1, &["x", "n"])],
                    vec![Atom::vars(&t2, &["x", "n"])],
                ));
            }
            // warded join: target (ward, carries the possibly-null value)
            // joined with a source on the ground key
            2 => {
                let t1 = tgt(r % n_targets);
                let s = src((r + 1) % spec.source_predicates);
                let t2 = tgt((r + 7) % n_targets);
                program.add_rule(Rule::tgd(
                    vec![Atom::vars(&t1, &["x", "n"]), Atom::vars(&s, &["x", "y"])],
                    vec![Atom::vars(&t2, &["y", "n"])],
                ));
            }
            // plain ground join
            _ => {
                let s1 = src(r % spec.source_predicates);
                let s2 = src((r + 1) % spec.source_predicates);
                program.add_rule(Rule::tgd(
                    vec![Atom::vars(&s1, &["x", "y"]), Atom::vars(&s2, &["y", "z"])],
                    vec![Atom::vars("Join2", &["x", "z"])],
                ));
            }
        }
    }
    program.add_annotation(Annotation::new(AnnotationKind::Output, "Link", vec![]));
    program.add_annotation(Annotation::new(AnnotationKind::Output, "Join2", vec![]));
    for i in 0..n_targets.min(5) {
        program.add_annotation(Annotation::new(AnnotationKind::Output, &tgt(i), vec![]));
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_analysis::classify;

    #[test]
    fn stb_and_ont_have_paper_rule_counts_and_are_warded() {
        let stb = stb_128(0.02, 1);
        assert_eq!(stb.rules.len(), 250);
        assert!(classify(&stb).is_warded);

        let ont = ont_256(0.01, 1);
        assert_eq!(ont.rules.len(), 789);
        assert!(classify(&ont).is_warded);
    }

    #[test]
    fn harmful_joins_are_present() {
        let stb = stb_128(0.02, 1);
        let report = classify(&stb);
        assert!(report.wardedness.harmful_join_count() >= 10);
        assert!(!report.is_harmless_warded);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = stb_128(0.02, 5);
        let b = stb_128(0.02, 5);
        assert_eq!(a.rules.len(), b.rules.len());
        assert_eq!(a.facts, b.facts);
    }
}
