//! iWarded: the synthetic warded-scenario generator of Section 6.1.
//!
//! The generator is parameterised exactly by the columns of Figure 6: number
//! of linear / non-linear rules, how many of each are recursive, how many
//! rules carry existential quantification, and how the joins split between
//! harmless-harmless with a ward, harmless-harmless without a ward, and
//! harmful-harmful. [`Scenario`] provides the eight configurations
//! SynthA–SynthH with the paper's values.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::prelude::*;

/// The tunable parameters of an iWarded scenario (one row of Figure 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IWardedSpec {
    /// Linear rules (`L rules`).
    pub linear_rules: usize,
    /// Non-linear (join) rules (`⋈ rules`).
    pub join_rules: usize,
    /// Recursive linear rules (`L recursive`).
    pub linear_recursive: usize,
    /// Recursive non-linear rules (`⋈ recursive`).
    pub join_recursive: usize,
    /// Rules with existential quantification (`∃ rules`).
    pub existential_rules: usize,
    /// Harmless-harmless joins where one atom is a ward.
    pub hh_with_ward: usize,
    /// Harmless-harmless joins with no ward involved.
    pub hh_without_ward: usize,
    /// Harmful-harmful joins.
    pub harmful_joins: usize,
    /// Facts per input predicate.
    pub facts_per_input: usize,
    /// Number of distinct constants used when generating facts (controls the
    /// join selectivity).
    pub domain_size: usize,
}

/// The eight scenarios of Figure 6.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scenario {
    /// Mostly linear rules.
    SynthA,
    /// Mostly join rules, many warded joins (best case in the paper).
    SynthB,
    /// Baseline 30/70 mix with every kind of join.
    SynthC,
    /// Many harmful joins.
    SynthD,
    /// Heavy non-linear recursion.
    SynthE,
    /// Heavy linear recursion.
    SynthF,
    /// Datalog-like: harmless joins without wards.
    SynthG,
    /// Warded joins emphasised.
    SynthH,
}

impl Scenario {
    /// All eight scenarios in paper order.
    pub fn all() -> [Scenario; 8] {
        [
            Scenario::SynthA,
            Scenario::SynthB,
            Scenario::SynthC,
            Scenario::SynthD,
            Scenario::SynthE,
            Scenario::SynthF,
            Scenario::SynthG,
            Scenario::SynthH,
        ]
    }

    /// Short name as used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::SynthA => "synthA",
            Scenario::SynthB => "synthB",
            Scenario::SynthC => "synthC",
            Scenario::SynthD => "synthD",
            Scenario::SynthE => "synthE",
            Scenario::SynthF => "synthF",
            Scenario::SynthG => "synthG",
            Scenario::SynthH => "synthH",
        }
    }

    /// The Figure 6 parameter row for this scenario (with laptop-scale
    /// default fact counts).
    pub fn spec(&self) -> IWardedSpec {
        let base = IWardedSpec {
            linear_rules: 30,
            join_rules: 70,
            linear_recursive: 9,
            join_recursive: 20,
            existential_rules: 30,
            hh_with_ward: 25,
            hh_without_ward: 20,
            harmful_joins: 5,
            facts_per_input: 200,
            domain_size: 50,
        };
        match self {
            Scenario::SynthA => IWardedSpec {
                linear_rules: 90,
                join_rules: 10,
                linear_recursive: 27,
                join_recursive: 3,
                existential_rules: 20,
                hh_with_ward: 5,
                hh_without_ward: 4,
                harmful_joins: 1,
                ..base
            },
            Scenario::SynthB => IWardedSpec {
                linear_rules: 10,
                join_rules: 90,
                linear_recursive: 3,
                join_recursive: 27,
                existential_rules: 20,
                hh_with_ward: 45,
                hh_without_ward: 40,
                harmful_joins: 5,
                ..base
            },
            Scenario::SynthC => IWardedSpec {
                existential_rules: 40,
                hh_with_ward: 25,
                hh_without_ward: 20,
                harmful_joins: 5,
                ..base
            },
            Scenario::SynthD => IWardedSpec {
                existential_rules: 22,
                hh_with_ward: 10,
                hh_without_ward: 9,
                harmful_joins: 50,
                ..base
            },
            Scenario::SynthE => IWardedSpec {
                linear_recursive: 15,
                join_recursive: 40,
                existential_rules: 20,
                hh_with_ward: 35,
                hh_without_ward: 29,
                harmful_joins: 5,
                ..base
            },
            Scenario::SynthF => IWardedSpec {
                linear_recursive: 25,
                join_recursive: 20,
                existential_rules: 50,
                hh_with_ward: 35,
                hh_without_ward: 29,
                harmful_joins: 5,
                ..base
            },
            Scenario::SynthG => IWardedSpec {
                join_recursive: 21,
                existential_rules: 30,
                hh_with_ward: 0,
                hh_without_ward: 60,
                harmful_joins: 0,
                ..base
            },
            Scenario::SynthH => IWardedSpec {
                join_recursive: 21,
                existential_rules: 30,
                hh_with_ward: 60,
                hh_without_ward: 10,
                harmful_joins: 0,
                ..base
            },
        }
    }

    /// Generate the scenario's program with the default spec.
    pub fn generate(&self, seed: u64) -> Program {
        generate(&self.spec(), seed)
    }
}

/// Generate an iWarded program from a spec.
///
/// The construction keeps every rule warded by design:
///
/// * a pool of EDB predicates `In_i(x, y, z)` provides ground facts;
/// * *existential* linear rules `In_i(x, y, z) -> Aff_j(x, n)` inject nulls,
///   making `Aff_j[1]` affected;
/// * warded joins `Aff_j(x, n), In_k(x, y, z) -> Aff_m(x, n)` propagate the
///   null through the ward `Aff_j` (harmless join on `x`);
/// * no-ward joins `In_a(x, y, z), In_b(x, u, v) -> Plain_c(x, y, u)` only
///   touch ground values;
/// * harmful joins `Aff_a(x, n), Aff_b(y, n) -> Plain_c(x, y)` join two
///   affected positions without propagating the null;
/// * recursive variants close the respective predicates transitively.
pub fn generate(spec: &IWardedSpec, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut program = Program::new();

    let n_inputs = 10.max(spec.linear_rules / 5);
    let input_pred = |i: usize| format!("In_{i}");
    let aff_pred = |i: usize| format!("Aff_{i}");
    let plain_pred = |i: usize| format!("Plain_{i}");
    let out_pred = |i: usize| format!("Out_{i}");

    // --- Facts for the EDB predicates -------------------------------------
    for i in 0..n_inputs {
        for _ in 0..spec.facts_per_input {
            let a = rng.gen_range(0..spec.domain_size) as i64;
            let b = rng.gen_range(0..spec.domain_size) as i64;
            let c = rng.gen_range(0..spec.domain_size) as i64;
            program.add_fact(Fact::new(
                &input_pred(i),
                vec![Value::Int(a), Value::Int(b), Value::Int(c)],
            ));
        }
        program.add_annotation(Annotation::new(
            AnnotationKind::Input,
            &input_pred(i),
            vec![],
        ));
    }

    let mut n_affected = 0usize;
    let mut n_plain = 0usize;
    let mut existentials_left = spec.existential_rules;

    // --- Linear rules ------------------------------------------------------
    for i in 0..spec.linear_rules {
        let src = input_pred(i % n_inputs);
        if existentials_left > 0 {
            // In_i(x, y, z) -> Aff_k(x, n)
            let head = aff_pred(n_affected);
            n_affected += 1;
            existentials_left -= 1;
            program.add_rule(Rule::tgd(
                vec![Atom::vars(&src, &["x", "y", "z"])],
                vec![Atom::vars(&head, &["x", "n"])],
            ));
        } else {
            // In_i(x, y, z) -> Plain_k(x, y)
            let head = plain_pred(n_plain);
            n_plain += 1;
            program.add_rule(Rule::tgd(
                vec![Atom::vars(&src, &["x", "y", "z"])],
                vec![Atom::vars(&head, &["x", "y"])],
            ));
        }
    }
    // Recursive linear rules: Aff_k(x, n) -> Aff_k(n ...) would be unsafe;
    // use a ground rotation Plain_k(x, y) -> Plain_k(y, x) and
    // Aff_k(x, n) -> Aff_k'(x, n) chains folded back.
    for i in 0..spec.linear_recursive {
        if n_plain > 0 {
            let p = plain_pred(i % n_plain);
            program.add_rule(Rule::tgd(
                vec![Atom::vars(&p, &["x", "y"])],
                vec![Atom::vars(&p, &["y", "x"])],
            ));
        } else if n_affected > 0 {
            let p = aff_pred(i % n_affected);
            program.add_rule(Rule::tgd(
                vec![Atom::vars(&p, &["x", "n"])],
                vec![Atom::vars(&p, &["x", "m"])],
            ));
        }
    }

    // Make sure at least one affected predicate exists for the join rules.
    if n_affected == 0 {
        program.add_rule(Rule::tgd(
            vec![Atom::vars(&input_pred(0), &["x", "y", "z"])],
            vec![Atom::vars(&aff_pred(0), &["x", "n"])],
        ));
        n_affected = 1;
    }

    // --- Join rules --------------------------------------------------------
    let mut join_budget = spec.join_rules;
    let add_join = |program: &mut Program, kind: usize, idx: usize| {
        let a = idx % n_affected;
        let b = (idx + 1) % n_inputs;
        match kind {
            // harmless-harmless with ward: propagate the null
            0 => {
                let head = aff_pred(n_affected + (idx % 5));
                program.add_rule(Rule::tgd(
                    vec![
                        Atom::vars(&aff_pred(a), &["x", "n"]),
                        Atom::vars(&input_pred(b), &["x", "y", "z"]),
                    ],
                    vec![Atom::vars(&head, &["y", "n"])],
                ));
            }
            // harmless-harmless without ward: ground-only join
            1 => {
                let head = out_pred(idx % 7);
                program.add_rule(Rule::tgd(
                    vec![
                        Atom::vars(&input_pred(idx % n_inputs), &["x", "y", "z"]),
                        Atom::vars(&input_pred(b), &["x", "u", "v"]),
                    ],
                    vec![Atom::vars(&head, &["x", "y", "u"])],
                ));
            }
            // harmful-harmful join (not propagated to the head)
            _ => {
                let head = out_pred(7 + idx % 3);
                program.add_rule(Rule::tgd(
                    vec![
                        Atom::vars(&aff_pred(a), &["x", "n"]),
                        Atom::vars(&aff_pred((a + 1) % n_affected.max(1)), &["y", "n"]),
                    ],
                    vec![Atom::vars(&head, &["x", "y"])],
                ));
            }
        }
    };

    let mut idx = 0usize;
    for _ in 0..spec.hh_with_ward.min(join_budget) {
        add_join(&mut program, 0, idx);
        idx += 1;
        join_budget -= 1;
    }
    for _ in 0..spec.hh_without_ward.min(join_budget) {
        add_join(&mut program, 1, idx);
        idx += 1;
        join_budget -= 1;
    }
    for _ in 0..spec.harmful_joins.min(join_budget) {
        add_join(&mut program, 2, idx);
        idx += 1;
        join_budget -= 1;
    }
    // whatever is left becomes ward joins
    for _ in 0..join_budget {
        add_join(&mut program, 0, idx);
        idx += 1;
    }

    // Recursive join rules: transitive closure over an Out predicate.
    for i in 0..spec.join_recursive {
        let p = out_pred(i % 10);
        program.add_rule(Rule::tgd(
            vec![
                Atom::vars(&p, &["x", "y"]),
                Atom::vars(&out_pred((i + 1) % 10), &["y", "z"]),
            ],
            vec![Atom::vars(&p, &["x", "z"])],
        ));
    }

    // Outputs: the Out_* predicates (the multi-query of the paper touches
    // all rules).
    for i in 0..10 {
        program.add_annotation(Annotation::new(
            AnnotationKind::Output,
            &out_pred(i),
            vec![],
        ));
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_analysis::classify;

    #[test]
    fn figure6_rows_have_the_documented_rule_mix() {
        let spec = Scenario::SynthB.spec();
        assert_eq!(spec.linear_rules + spec.join_rules, 100);
        assert_eq!(spec.hh_with_ward, 45);
        let spec_d = Scenario::SynthD.spec();
        assert_eq!(spec_d.harmful_joins, 50);
    }

    #[test]
    fn generated_scenarios_are_warded_and_deterministic() {
        for scenario in Scenario::all() {
            let p1 = scenario.generate(7);
            let p2 = scenario.generate(7);
            assert_eq!(p1.rules.len(), p2.rules.len(), "{}", scenario.name());
            assert_eq!(p1.facts, p2.facts, "{}", scenario.name());
            let report = classify(&p1);
            assert!(
                report.is_warded,
                "{} must generate a warded program",
                scenario.name()
            );
        }
    }

    #[test]
    fn synthg_has_no_harmful_joins_and_synthd_has_many() {
        let g = classify(&Scenario::SynthG.generate(1));
        assert!(g.is_harmless_warded);
        let d = classify(&Scenario::SynthD.generate(1));
        assert!(d.wardedness.harmful_join_count() > 10);
    }

    #[test]
    fn rule_counts_are_close_to_one_hundred() {
        for scenario in Scenario::all() {
            let p = scenario.generate(3);
            assert!(
                (80..=160).contains(&p.rules.len()),
                "{}: {} rules",
                scenario.name(),
                p.rules.len()
            );
        }
    }
}
