//! # vadalog-workloads
//!
//! Deterministic (seeded) generators for every workload of the paper's
//! evaluation (Section 6). Each generator produces a
//! [`vadalog_model::Program`] (rules + extensional facts) ready to be handed
//! to `vadalog_engine::Reasoner` or to the baseline engines in
//! `vadalog-chase`.
//!
//! | Paper artefact | Module |
//! |---|---|
//! | iWarded synthetic scenarios SynthA–SynthH (Fig. 5a, Fig. 6) | [`iwarded`] |
//! | iBench STB-128 / ONT-256 analogues (Fig. 5b) | [`ibench`] |
//! | DBpedia company/person graphs, PSC / AllPSC / StrongLinks (Fig. 5c,d, Fig. 7) | [`dbpedia`] |
//! | Industrial ownership graphs + scale-free synthetic graphs (Fig. 5e,f) | [`ownership`] |
//! | Doctors / DoctorsFD / LUBM-style ChaseBench scenarios (Fig. 5g-i) | [`chasebench`] |
//! | DbSize / Rule# / Atom# / Arity scalability variants (Fig. 8) | [`scaling`] |
//! | Range-guarded control (`w > θ` pushdown vs post-filter) | [`range`] |
//! | Triangle / 4-clique cyclic joins (WCOJ vs binary-join ablation) | [`graph`] |
//! | Repeated bound queries over a large EDB (query sessions / magic sets) | [`query`] |
//! | Streaming appends over a growing EDB (incremental maintenance ablation) | [`stream`] |
//! | Repeated overlapping server queries (shared cone-cache ablation) | [`serve`] |
//! | Durable appends + cold WAL replay (crash-recovery workload) | [`recover`] |
//!
//! All generators take explicit seeds and sizes so that EXPERIMENTS.md
//! numbers are reproducible; the real DBpedia dumps and the proprietary
//! European ownership graph are replaced by synthetic equivalents with the
//! same shape parameters (see DESIGN.md, "Substitutions").

pub mod chasebench;
pub mod dbpedia;
pub mod graph;
pub mod ibench;
pub mod iwarded;
pub mod ownership;
pub mod query;
pub mod range;
pub mod recover;
pub mod scaling;
pub mod serve;
pub mod stream;

pub use iwarded::{IWardedSpec, Scenario};
