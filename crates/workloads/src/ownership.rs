//! Ownership graphs for the industrial validation of Section 6.4: directed
//! scale-free networks generated with the Bollobás–Borgs–Chayes–Riordan
//! α/β/γ process, using the parameters the paper learnt from the European
//! graph of financial companies (α = 0.71, β = 0.09, γ = 0.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::prelude::*;
use vadalog_parser::parse_program;

/// Parameters of the directed scale-free generator.
#[derive(Clone, Copy, Debug)]
pub struct ScaleFreeParams {
    /// Probability of adding a new node with an edge *to* an existing node
    /// chosen by in-degree.
    pub alpha: f64,
    /// Probability of adding an edge between two existing nodes.
    pub beta: f64,
    /// Probability of adding a new node with an edge *from* an existing node
    /// chosen by out-degree.
    pub gamma: f64,
}

impl Default for ScaleFreeParams {
    fn default() -> Self {
        // The values reported in Section 6.4.
        ScaleFreeParams {
            alpha: 0.71,
            beta: 0.09,
            gamma: 0.2,
        }
    }
}

/// Generate a directed scale-free ownership graph with roughly `companies`
/// nodes; returns `Own(owner, owned, share)` facts plus `Company` facts.
pub fn scale_free_ownership(companies: usize, params: ScaleFreeParams, seed: u64) -> Vec<Fact> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut in_deg: Vec<usize> = vec![1, 1];
    let mut out_deg: Vec<usize> = vec![1, 1];
    edges.push((0, 1));

    let pick_by = |deg: &[usize], rng: &mut StdRng| -> usize {
        let total: usize = deg.iter().sum::<usize>().max(1);
        let mut t = rng.gen_range(0..total);
        for (i, d) in deg.iter().enumerate() {
            if t < *d {
                return i;
            }
            t -= d;
        }
        deg.len() - 1
    };

    while in_deg.len() < companies {
        let r: f64 = rng.gen();
        if r < params.alpha {
            // new node -> existing (chosen by in-degree)
            let target = pick_by(&in_deg, &mut rng);
            let new = in_deg.len();
            in_deg.push(1);
            out_deg.push(1);
            edges.push((new, target));
            in_deg[target] += 1;
            out_deg[new] += 1;
        } else if r < params.alpha + params.beta {
            // edge between existing nodes
            let source = pick_by(&out_deg, &mut rng);
            let target = pick_by(&in_deg, &mut rng);
            if source != target {
                edges.push((source, target));
                out_deg[source] += 1;
                in_deg[target] += 1;
            }
        } else {
            // existing (by out-degree) -> new node
            let source = pick_by(&out_deg, &mut rng);
            let new = in_deg.len();
            in_deg.push(1);
            out_deg.push(1);
            edges.push((source, new));
            out_deg[source] += 1;
            in_deg[new] += 1;
        }
    }

    let mut facts: Vec<Fact> = (0..in_deg.len())
        .map(|c| Fact::new("Company", vec![Value::string(format!("f{c}"))]))
        .collect();
    // Share weights: split each owned company's capital among its owners.
    let mut owners_of: Vec<Vec<usize>> = vec![Vec::new(); in_deg.len()];
    for (a, b) in &edges {
        owners_of[*b].push(*a);
    }
    for (owned, owners) in owners_of.iter().enumerate() {
        if owners.is_empty() {
            continue;
        }
        for (i, owner) in owners.iter().enumerate() {
            // The first owner tends to hold a majority stake.
            let share = if i == 0 {
                0.4 + rng.gen::<f64>() * 0.5
            } else {
                rng.gen::<f64>() * 0.4 / owners.len() as f64
            };
            facts.push(Fact::new(
                "Own",
                vec![
                    Value::string(format!("f{owner}")),
                    Value::string(format!("f{owned}")),
                    Value::Float((share * 1000.0).round() / 1000.0),
                ],
            ));
        }
    }
    facts
}

/// The company-control program of Example 2 (msum over jointly-held shares).
pub fn company_control_program() -> Program {
    parse_program(
        "Own(x, y, w), w > 0.5 -> Control(x, y).\n\
         Control(x, y), Own(y, z, w), v = msum(w, <y>), v > 0.5 -> Control(x, z).\n\
         @output(\"Control\").",
    )
    .expect("static program parses")
}

/// The significantly-controlled-companies program of Example 7.
pub fn significant_control_program() -> Program {
    parse_program(
        "Company(x) -> Owns(p, s, x).\n\
         Owns(p, s, x) -> Stock(x, s).\n\
         Owns(p, s, x) -> PSC(x, p).\n\
         PSC(x, p), Controls(x, y) -> Owns(p, s, y).\n\
         PSC(x, p), PSC(y, p) -> StrongLink(x, y).\n\
         StrongLink(x, y) -> Owns(p, s, x).\n\
         StrongLink(x, y) -> Owns(p, s, y).\n\
         Stock(x, s) -> Company(x).\n\
         @output(\"StrongLink\").",
    )
    .expect("static program parses")
}

/// Derive `Controls(x, y)` facts (majority ownership) from `Own` facts, for
/// feeding the Example 7 program with the generated graphs.
pub fn majority_controls(facts: &[Fact]) -> Vec<Fact> {
    facts
        .iter()
        .filter(|f| f.predicate_name() == "Own")
        .filter(|f| f.args[2].as_f64().unwrap_or(0.0) > 0.5)
        .map(|f| Fact::new("Controls", vec![f.args[0].clone(), f.args[1].clone()]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_engine::Reasoner;

    #[test]
    fn scale_free_graphs_are_deterministic_and_skewed() {
        let a = scale_free_ownership(200, ScaleFreeParams::default(), 3);
        let b = scale_free_ownership(200, ScaleFreeParams::default(), 3);
        assert_eq!(a, b);
        // Degree skew: some company owns many others (a hub).
        let mut out_counts = std::collections::HashMap::new();
        for f in a.iter().filter(|f| f.predicate_name() == "Own") {
            *out_counts.entry(f.args[0].clone()).or_insert(0usize) += 1;
        }
        let max_out = out_counts.values().copied().max().unwrap_or(0);
        assert!(max_out >= 5, "expected a hub, max out-degree {max_out}");
    }

    #[test]
    fn company_control_runs_on_generated_graphs() {
        let facts = scale_free_ownership(100, ScaleFreeParams::default(), 9);
        let mut program = company_control_program();
        for f in facts {
            program.add_fact(f);
        }
        let result = Reasoner::new().reason(&program).unwrap();
        assert!(!result.output("Control").is_empty());
    }
}
