//! Query-driven workload: repeated **bound queries over a large EDB**, the
//! regime the `QuerySession` snapshot + magic-sets machinery targets.
//!
//! The program is a long `Edge` chain closed transitively into `Reach`: a
//! full bottom-up run derives the quadratic closure (`n·(n+1)/2` facts),
//! while a bound query `Reach("n_i", y)` only needs the linear suffix from
//! its source. Answering many such queries therefore separates the four
//! execution modes of `bench_gate --query-ablation` sharply:
//!
//! * *session + magic* — one EDB intern/index build, per-query magic runs
//!   over copy-on-write snapshots (the tentpole configuration);
//! * *session, no magic* — snapshot reuse but full bottom-up per query;
//! * *fresh + magic* — per-query store rebuild, magic rewrite each time;
//! * *fresh bottom-up* — per-query store rebuild and full closure, answers
//!   post-filtered (the paper-era baseline).

use vadalog_model::prelude::*;

/// The chain program: `n` `Edge` facts `n0 → n1 → … → n_n`, transitive
/// closure rules, an `@output` annotation, and `bulk_rows` extra `Attr`
/// facts. The bulk rows model the realistic large-EDB regime: no query
/// touches them, but every **fresh** run re-interns, re-registers and
/// re-stores all of them, while a session pays that cost exactly once and
/// shares the frozen rows by reference.
pub fn chain(n: usize, bulk_rows: usize) -> Program {
    let mut program = vadalog_parser::parse_program(
        "Edge(x, y) -> Reach(x, y).\n\
         Reach(x, y), Edge(y, z) -> Reach(x, z).\n\
         @output(\"Reach\").",
    )
    .expect("static program parses");
    for i in 0..n {
        program.add_fact(Fact::new(
            "Edge",
            vec![
                Value::str(&format!("n{i}")),
                Value::str(&format!("n{}", i + 1)),
            ],
        ));
    }
    for j in 0..bulk_rows {
        program.add_fact(Fact::new(
            "Attr",
            vec![
                Value::str(&format!("n{}", j % (n + 1))),
                Value::Int(j as i64),
            ],
        ));
    }
    program
}

/// `count` bound query atoms `Reach("n_s", y)` with sources spread evenly
/// over the first half of the chain (so every query has a non-trivial
/// answer set).
pub fn bound_queries(n: usize, count: usize) -> Vec<Atom> {
    let stride = (n / 2).max(1) / count.max(1);
    (0..count)
        .map(|q| Atom {
            predicate: intern("Reach"),
            terms: vec![
                Term::Const(Value::str(&format!("n{}", q * stride.max(1)))),
                Term::var("y"),
            ],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_and_queries_are_well_formed() {
        let program = chain(20, 30);
        assert_eq!(program.facts.len(), 50);
        assert_eq!(program.rules.len(), 2);
        let queries = bound_queries(20, 5);
        assert_eq!(queries.len(), 5);
        assert!(queries.iter().all(|q| q.terms[0].is_const()));
        // sources are distinct, so the queries exercise the seed path (not
        // just the compile cache)
        let sources: std::collections::BTreeSet<_> = queries
            .iter()
            .filter_map(|q| q.terms[0].as_const().cloned())
            .collect();
        assert_eq!(sources.len(), 5);
    }
}
