//! Range-condition workloads: fig5-style ownership reasoning whose rules
//! carry selective comparison guards (`w > θ`).
//!
//! The paper's company-control programs guard every join on the ownership
//! share (`Own(x, y, w), w > 0.5 -> Control(x, y)`). These generators make
//! the guard's **selectivity** a parameter: with weights uniform in `[0, 1)`
//! a threshold θ keeps a `1 - θ` fraction of the edges, so high θ is the
//! regime where pushing the condition into the index (a sorted-run range
//! probe on the weight column under the join-key prefix) beats the
//! post-filter plan by the widest margin. `vadalog-bench`'s `bench_gate`
//! runs these at several thresholds and `--range-ablation` compares
//! pushdown against the post-filter baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::prelude::*;
use vadalog_parser::parse_program;

/// `Own(owner, owned, w)` facts over a random dense-ish graph: `edges`
/// ownership edges among `companies` companies, weights uniform in `[0, 1)`.
pub fn ownership_edges(companies: usize, edges: usize, seed: u64) -> Vec<Fact> {
    let mut rng = StdRng::seed_from_u64(seed);
    let companies = companies.max(2);
    let mut facts = Vec::with_capacity(edges);
    for _ in 0..edges {
        let a = rng.gen_range(0..companies);
        let b = rng.gen_range(0..companies);
        let w: f64 = rng.gen();
        facts.push(Fact::new(
            "Own",
            vec![
                Value::str(&format!("c{a}")),
                Value::str(&format!("c{b}")),
                Value::Float(w),
            ],
        ));
    }
    facts
}

/// The guarded transitive-control program: both the base rule and the
/// recursive join carry a `w > θ` guard, so the recursive step probes
/// `Own` on `(y, w > θ)` — composite prefix plus pushed range condition.
pub fn guarded_control_program(theta: f64) -> Program {
    parse_program(&format!(
        "Own(x, y, w), w > {theta} -> Control(x, y).\n\
         Control(x, y), Own(y, z, w), w > {theta} -> Control(x, z).\n\
         @output(\"Control\")."
    ))
    .expect("guarded control program parses")
}

/// A complete range workload: guarded transitive control over a random
/// ownership graph. `theta` is the guard threshold (selectivity `1 - θ`).
pub fn guarded_control(companies: usize, edges: usize, theta: f64, seed: u64) -> Program {
    let mut program = guarded_control_program(theta);
    for f in ownership_edges(companies, edges, seed) {
        program.add_fact(f);
    }
    program
}

/// `Own(owner, owned, w, k)` facts for the two-guard workload: the weight
/// `w` is **quantised** to ten levels (a coarse range column — few distinct
/// order keys, wide postings groups) while the capital `k` stays uniform in
/// `[0, 1)` (a fine range column — one group per edge, roughly).
pub fn two_guard_edges(companies: usize, edges: usize, seed: u64) -> Vec<Fact> {
    let mut rng = StdRng::seed_from_u64(seed);
    let companies = companies.max(2);
    let mut facts = Vec::with_capacity(edges);
    for _ in 0..edges {
        let a = rng.gen_range(0..companies);
        let b = rng.gen_range(0..companies);
        let w = (rng.gen_range(0..10) as f64) / 10.0;
        let k: f64 = rng.gen();
        facts.push(Fact::new(
            "Own",
            vec![
                Value::str(&format!("c{a}")),
                Value::str(&format!("c{b}")),
                Value::Float(w),
                Value::Float(k),
            ],
        ));
    }
    facts
}

/// The two-guard control workload for the adaptive-range ablation: both
/// rules carry a coarse weight guard (`w > θ`, first in body order — the
/// planner's static default probe) **and** a fine capital guard (`k < κ`).
/// When κ is selective, probing the capital column wins, but only the run
/// directory's group-width statistics can see that: the adaptive selection
/// must demote the weight range to a guard per activation.
pub fn two_guard_control(
    companies: usize,
    edges: usize,
    theta: f64,
    kappa: f64,
    seed: u64,
) -> Program {
    let mut program = parse_program(&format!(
        "Own(x, y, w, k), w > {theta}, k < {kappa} -> Control(x, y).\n\
         Control(x, y), Own(y, z, w, k), w > {theta}, k < {kappa} -> Control(x, z).\n\
         @output(\"Control\")."
    ))
    .expect("two-guard control program parses");
    for f in two_guard_edges(companies, edges, seed) {
        program.add_fact(f);
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_uniform_and_program_is_datalog() {
        let program = guarded_control(50, 400, 0.9, 7);
        assert_eq!(program.facts.len(), 400);
        assert!(program
            .facts
            .iter()
            .all(|f| matches!(f.args[2], Value::Float(w) if (0.0..1.0).contains(&w))));
        assert_eq!(program.rules.len(), 2);
        assert!(vadalog_analysis::classify(&program).is_datalog);
    }

    #[test]
    fn two_guard_workload_triggers_adaptive_range_selection() {
        let program = two_guard_control(40, 600, 0.5, 0.25, 13);
        assert!(program.facts.iter().all(|f| f.args.len() == 4
            && matches!(f.args[2], Value::Float(w) if w * 10.0 == (w * 10.0).round())));
        let result = vadalog_engine::Reasoner::new()
            .reason(&program)
            .expect("run failed");
        // The fine capital column must replace the planner's default weight
        // range in at least one activation, and the answer must match the
        // static-choice plan exactly.
        assert!(result.stats.pipeline.adaptive_range_picks > 0);
        let static_plan = vadalog_engine::Reasoner::with_options(vadalog_engine::ReasonerOptions {
            adaptive_ranges: false,
            ..Default::default()
        })
        .reason(&program)
        .expect("static run failed");
        assert_eq!(static_plan.stats.pipeline.adaptive_range_picks, 0);
        assert_eq!(result.output("Control"), static_plan.output("Control"));
    }

    #[test]
    fn higher_thresholds_derive_fewer_controls() {
        let run = |theta: f64| {
            let program = guarded_control(40, 300, theta, 11);
            vadalog_engine::Reasoner::new()
                .reason(&program)
                .expect("run failed")
                .output("Control")
                .len()
        };
        let low = run(0.2);
        let high = run(0.95);
        assert!(
            high < low,
            "selective guards must prune: θ=0.95 gave {high}, θ=0.2 gave {low}"
        );
        assert!(high > 0, "θ=0.95 still keeps ~5% of 300 edges");
    }
}
