//! Crash-recovery workload: **durable appends and cold replay** over a
//! growing EDB — the regime of `QuerySession::recover` and the write-ahead
//! log (`bench_gate --recover-ablation`).
//!
//! A reasoning server that survives restarts pays for durability twice:
//! once on the hot path (every acknowledged append is fsync'd to the log
//! before the session promotes it) and once at startup (recovery replays
//! the logged batches over the seed EDB to rebuild the exact pre-crash
//! session). This module generates the schedule that prices both sides: a
//! chain-closure program whose EDB grows by `batches` durable batches of
//! `batch_size` edges each, plus a set of bound probe queries asked after
//! replay — the check that recovery produced an answerable session, not
//! just a parsed log.
//!
//! The chain shape is deliberate: each appended edge derives the linear
//! `Reach` suffix behind it, so replay cost is dominated by the same
//! incremental maintenance work the live session did, and the gated
//! `fig13_recover/replay` entry measures recovery end to end — open the
//! log, verify checksums, replay every batch through the layered base,
//! answer a probe query. The ablation report adds the two comparison
//! points: the same appends without a log attached (the durability
//! premium) and a from-scratch rebuild that re-derives everything
//! (what a restart would cost with no log at all).

use vadalog_model::prelude::*;

/// The recovered program: `n` seed `Edge` facts `n0 → n1 → … → n_n` closed
/// transitively into `Reach`.
pub fn chain_program(n: usize) -> Program {
    let mut program = vadalog_parser::parse_program(
        "Edge(x, y) -> Reach(x, y).\n\
         Reach(x, y), Edge(y, z) -> Reach(x, z).\n\
         @output(\"Reach\").",
    )
    .expect("static program parses");
    for i in 0..n {
        program.add_fact(edge(i));
    }
    program
}

/// The durable append schedule: `batches` batches of `batch_size` chain
/// edges each, continuing where [`chain_program`]'s EDB left off.
/// Deterministic — the batch contents are a pure function of
/// `(n, batches, batch_size)`, so a replayed log and a freshly generated
/// schedule describe the same session.
pub fn append_batches(n: usize, batches: usize, batch_size: usize) -> Vec<Vec<Fact>> {
    (0..batches)
        .map(|b| {
            (0..batch_size)
                .map(|k| edge(n + b * batch_size + k))
                .collect()
        })
        .collect()
}

/// Bound `Reach` probe queries spread over the seed chain, asked after
/// recovery: `count` sources at even strides through the first `n` nodes.
/// Their answer sets cover both seed-EDB facts and facts derived from
/// replayed appends, so a replay that dropped or reordered a batch shows
/// up as a wrong answer count.
pub fn probe_queries(n: usize, count: usize) -> Vec<Atom> {
    let stride = (n.max(1) / count.max(1)).max(1);
    (0..count)
        .map(|q| Atom {
            predicate: intern("Reach"),
            terms: vec![
                Term::Const(Value::str(&format!("n{}", q * stride))),
                Term::var("y"),
            ],
        })
        .collect()
}

/// Chain edge `n_i → n_{i+1}`.
fn edge(i: usize) -> Fact {
    Fact::new(
        "Edge",
        vec![
            Value::str(&format!("n{i}")),
            Value::str(&format!("n{}", i + 1)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_contiguous() {
        let program = chain_program(12);
        assert_eq!(program.facts.len(), 12);
        assert_eq!(program.rules.len(), 2);
        let schedule = append_batches(12, 3, 4);
        assert_eq!(schedule.len(), 3);
        assert!(schedule.iter().all(|b| b.len() == 4));
        assert_eq!(schedule, append_batches(12, 3, 4));
        // the first appended edge continues the chain end
        assert_eq!(
            schedule[0][0],
            Fact::new("Edge", vec![Value::str("n12"), Value::str("n13")])
        );
    }

    #[test]
    fn probes_are_distinct_bound_sources() {
        let probes = probe_queries(100, 4);
        assert_eq!(probes.len(), 4);
        let sources: Vec<_> = probes
            .iter()
            .map(|q| q.terms[0].as_const().unwrap().clone())
            .collect();
        assert_eq!(
            sources,
            vec![
                Value::str("n0"),
                Value::str("n25"),
                Value::str("n50"),
                Value::str("n75")
            ]
        );
    }
}
