//! Scalability variants of SynthB (Section 6.7, Figure 8): database size,
//! number of rules, number of body atoms and predicate arity.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog_model::prelude::*;

use crate::iwarded::{self, Scenario};

/// Figure 8(a): SynthB with `facts` source facts per input predicate.
pub fn db_size(facts: usize, seed: u64) -> Program {
    let mut spec = Scenario::SynthB.spec();
    spec.facts_per_input = facts;
    spec.domain_size = (facts / 4).max(10);
    iwarded::generate(&spec, seed)
}

/// Figure 8(b): `blocks` independent copies of SynthB (100 rules each), so
/// the number of rules scales without increasing the per-block reasoning
/// complexity.
pub fn rule_blocks(blocks: usize, seed: u64) -> Program {
    let mut combined = Program::new();
    for b in 0..blocks {
        let block = iwarded::generate(&Scenario::SynthB.spec(), seed.wrapping_add(b as u64));
        combined.extend(rename_block(block, b));
    }
    combined
}

fn rename_block(program: Program, block: usize) -> Program {
    // Prefix every predicate with the block id so blocks stay independent.
    let rename = |sym: Sym| intern(&format!("B{block}_{}", sym.as_str()));
    let rename_atom = |a: &Atom| Atom {
        predicate: rename(a.predicate),
        terms: a.terms.clone(),
    };
    let mut out = Program::new();
    for rule in &program.rules {
        out.add_rule(Rule {
            label: rule.label.clone(),
            body: rule
                .body
                .iter()
                .map(|l| match l {
                    Literal::Atom(a) => Literal::Atom(rename_atom(a)),
                    Literal::Negated(a) => Literal::Negated(rename_atom(a)),
                    other => other.clone(),
                })
                .collect(),
            head: match &rule.head {
                RuleHead::Atoms(atoms) => RuleHead::Atoms(atoms.iter().map(rename_atom).collect()),
                other => other.clone(),
            },
        });
    }
    for fact in &program.facts {
        out.add_fact(Fact::new_sym(rename(fact.predicate), fact.args.clone()));
    }
    for a in &program.annotations {
        out.add_annotation(Annotation {
            kind: a.kind.clone(),
            predicate: rename(a.predicate),
            args: a.args.clone(),
        });
    }
    out
}

/// Figure 8(c): a join pipeline whose rules have `atoms` body atoms each
/// (the execution optimizer turns them into a cascade of binary joins).
pub fn atom_count(atoms: usize, facts: usize, seed: u64) -> Program {
    let atoms = atoms.max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut program = Program::new();
    let domain = (facts / 2).max(10);
    for i in 0..atoms {
        for _ in 0..facts {
            let a = rng.gen_range(0..domain) as i64;
            let b = rng.gen_range(0..domain) as i64;
            program.add_fact(Fact::new(
                &format!("R{i}"),
                vec![Value::Int(a), Value::Int(b)],
            ));
        }
    }
    // R0(x0, x1), R1(x1, x2), ..., R{k-1}(x{k-1}, xk) -> Chain(x0, xk)
    let body: Vec<Atom> = (0..atoms)
        .map(|i| {
            Atom::new(
                &format!("R{i}"),
                vec![
                    Term::var(&format!("x{i}")),
                    Term::var(&format!("x{}", i + 1)),
                ],
            )
        })
        .collect();
    program.add_rule(Rule::tgd(
        body.clone(),
        vec![Atom::new(
            "Chain",
            vec![Term::var("x0"), Term::var(&format!("x{atoms}"))],
        )],
    ));
    // A recursive variant to keep the workload recursive like SynthB.
    program.add_rule(Rule::tgd(
        vec![
            Atom::vars("Chain", &["x", "y"]),
            Atom::new("R0", vec![Term::var("y"), Term::var("z")]),
        ],
        vec![Atom::vars("Chain", &["x", "z"])],
    ));
    program.add_annotation(Annotation::new(AnnotationKind::Output, "Chain", vec![]));
    program
}

/// Figure 8(d): SynthB-like workload with predicates of the given arity
/// (extra columns carry payload values that never join).
pub fn arity(arity: usize, facts: usize, seed: u64) -> Program {
    let arity = arity.max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut program = Program::new();
    let domain = (facts / 2).max(10);
    for _ in 0..facts {
        let mut args = vec![
            Value::Int(rng.gen_range(0..domain) as i64),
            Value::Int(rng.gen_range(0..domain) as i64),
        ];
        for k in 2..arity {
            args.push(Value::Int(
                (k * 1000) as i64 + rng.gen_range(0..1000) as i64,
            ));
        }
        program.add_fact(Fact::new("Wide", args));
    }
    let head_vars: Vec<Term> = (0..arity).map(|i| Term::var(&format!("v{i}"))).collect();
    let mut shifted = head_vars.clone();
    shifted.swap(0, 1);
    // Wide(v0, v1, ...) -> Copy(v1, v0, ...), plus a join on the first column.
    program.add_rule(Rule::tgd(
        vec![Atom::new("Wide", head_vars.clone())],
        vec![Atom::new("Copy", shifted)],
    ));
    let mut other: Vec<Term> = (0..arity).map(|i| Term::var(&format!("w{i}"))).collect();
    other[0] = Term::var("v0");
    program.add_rule(Rule::tgd(
        vec![Atom::new("Wide", head_vars), Atom::new("Copy", other)],
        vec![Atom::vars("Meet", &["v0", "v1", "w1"])],
    ));
    program.add_annotation(Annotation::new(AnnotationKind::Output, "Meet", vec![]));
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_analysis::classify;

    #[test]
    fn rule_blocks_scale_linearly_in_rule_count() {
        let one = rule_blocks(1, 2);
        let three = rule_blocks(3, 2);
        assert_eq!(three.rules.len(), 3 * one.rules.len());
        assert!(classify(&three).is_warded);
    }

    #[test]
    fn atom_count_builds_chains_of_the_requested_length() {
        let p = atom_count(8, 50, 1);
        assert_eq!(p.rules[0].body_atoms().len(), 8);
        assert!(classify(&p).is_warded);
    }

    #[test]
    fn arity_variants_have_wide_tuples() {
        let p = arity(24, 50, 1);
        assert_eq!(p.facts[0].args.len(), 24);
        assert!(classify(&p).is_warded);
    }

    #[test]
    fn db_size_controls_fact_count() {
        let small = db_size(10, 1);
        let big = db_size(100, 1);
        assert!(big.facts.len() > 5 * small.facts.len());
    }
}
