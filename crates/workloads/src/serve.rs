//! Serve workload: **repeated overlapping queries** against one shared
//! knowledge graph — the regime of the concurrent reasoning server and its
//! magic-cone derivation cache.
//!
//! A server answering a real query stream sees heavy repetition: a few hot
//! query shapes asked over and over (dashboards, per-entity lookups,
//! polling clients) interleaved with each other. This module generates that
//! stream over the [`crate::query::chain`] program: `distinct` bound
//! sources cycled round-robin for `repeats` rounds, so every repetition is
//! **non-adjacent** — a cache that only remembered the immediately
//! preceding query would miss every time, while the shared cone cache
//! serves `distinct · (repeats − 1)` of the `distinct · repeats` queries
//! from stored derivations.
//!
//! `bench_gate --serve-ablation` runs this stream through a
//! [`ReasoningServer`]-style session with the cone cache on and off (the
//! gated `fig12_serve/cone_cache` entry times the cache-on configuration).
//!
//! [`ReasoningServer`]: https://docs.rs/vadalog-server

use vadalog_model::prelude::*;

/// The overlapping query stream: `distinct` bound `Reach` sources spread
/// over the first half of an `n`-edge chain, cycled round-robin for
/// `repeats` rounds (total `distinct · repeats` queries, repetitions
/// maximally spaced).
pub fn overlapping_queries(n: usize, distinct: usize, repeats: usize) -> Vec<Atom> {
    let stride = ((n / 2).max(1) / distinct.max(1)).max(1);
    let sources: Vec<String> = (0..distinct).map(|q| format!("n{}", q * stride)).collect();
    (0..repeats)
        .flat_map(|_| sources.iter().cloned())
        .map(|s| Atom {
            predicate: intern("Reach"),
            terms: vec![Term::Const(Value::str(&s)), Term::var("y")],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn stream_cycles_distinct_sources_without_adjacent_repeats() {
        let queries = overlapping_queries(100, 6, 8);
        assert_eq!(queries.len(), 48);
        let sources: Vec<_> = queries
            .iter()
            .map(|q| q.terms[0].as_const().unwrap().clone())
            .collect();
        let distinct: BTreeSet<_> = sources.iter().cloned().collect();
        assert_eq!(distinct.len(), 6);
        // round-robin: no query repeats its predecessor
        assert!(sources.windows(2).all(|w| w[0] != w[1]));
        // every round asks the same sources in the same order
        assert_eq!(&sources[..6], &sources[6..12]);
    }
}
