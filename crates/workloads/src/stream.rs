//! Streaming-append workload: incremental view maintenance over a growing
//! EDB, the regime the layered-base `QuerySession::append_facts` machinery
//! targets (`bench_gate --ivm-ablation`).
//!
//! The program closes an `Edge` chain transitively into `Reach` and folds a
//! per-source `mcount` out-degree aggregate, so appends exercise both the
//! delta join path and the monotonic-aggregate path. The initial EDB holds
//! the first `n` chain edges; the stream then delivers `batches` batches of
//! `batch_size` edges each, extending the chain at its live end.
//!
//! Extending the chain *at the end* is the sharply separating shape: every
//! appended edge `n_k → n_{k+1}` derives the `k` new `Reach(n_i, n_{k+1})`
//! suffix facts and nothing else, so
//!
//! * the **incremental** session re-derives `O(chain length)` facts per
//!   batch — the wake-list re-activates only the `Edge`/`Reach` readers and
//!   the persistent cursors skip everything already at fixpoint — while
//! * the **rebuild** ablation (`ReasonerOptions::incremental = false`,
//!   env `VADALOG_IVM=0`) pays the full `O(chain length²)` closure again on
//!   every batch.
//!
//! With `b` batches the rebuild does `Θ(b)`× the incremental join work, so
//! the measured separation grows with the schedule length — the acceptance
//! bar (≥3× at the largest gated size) sits well inside that envelope.

use vadalog_model::prelude::*;

/// The streamed program: `n` initial `Edge` facts `n0 → n1 → … → n_n`,
/// transitive closure into `Reach`, and an `OutDegree` `mcount` aggregate
/// per source.
pub fn stream_program(n: usize) -> Program {
    let mut program = vadalog_parser::parse_program(
        "Edge(x, y) -> Reach(x, y).\n\
         Reach(x, y), Edge(y, z) -> Reach(x, z).\n\
         Reach(x, y), c = mcount(y) -> OutDegree(x, c).\n\
         @output(\"Reach\"). @output(\"OutDegree\").",
    )
    .expect("static program parses");
    for i in 0..n {
        program.add_fact(edge(i));
    }
    program
}

/// The append schedule: `batches` batches of `batch_size` chain edges each,
/// continuing where [`stream_program`]'s EDB left off (`n_n → n_{n+1}`
/// onwards). Deterministic — the batch contents are a pure function of
/// `(n, batches, batch_size)`.
pub fn append_batches(n: usize, batches: usize, batch_size: usize) -> Vec<Vec<Fact>> {
    (0..batches)
        .map(|b| {
            (0..batch_size)
                .map(|k| edge(n + b * batch_size + k))
                .collect()
        })
        .collect()
}

/// Chain edge `n_i → n_{i+1}`.
fn edge(i: usize) -> Fact {
    Fact::new(
        "Edge",
        vec![
            Value::str(&format!("n{i}")),
            Value::str(&format!("n{}", i + 1)),
        ],
    )
}

/// Total number of `Reach` facts after the whole schedule has been applied:
/// the closure of a chain with `total` edges has `total·(total+1)/2` pairs.
pub fn expected_reach_facts(n: usize, batches: usize, batch_size: usize) -> usize {
    let total = n + batches * batch_size;
    total * (total + 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_contiguous() {
        let program = stream_program(10);
        assert_eq!(program.facts.len(), 10);
        assert_eq!(program.rules.len(), 3);
        let schedule = append_batches(10, 3, 4);
        assert_eq!(schedule.len(), 3);
        assert!(schedule.iter().all(|b| b.len() == 4));
        assert_eq!(schedule, append_batches(10, 3, 4));
        // the first appended edge continues the chain end
        assert_eq!(
            schedule[0][0],
            Fact::new("Edge", vec![Value::str("n10"), Value::str("n11")])
        );
        assert_eq!(expected_reach_facts(10, 3, 4), 22 * 23 / 2);
    }
}
