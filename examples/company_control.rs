//! Company control with monotonic aggregation (Example 2 of the paper):
//! a company controls another if it directly owns more than half of it, or
//! if the companies it controls *jointly* own more than half of it.
//!
//! Run with `cargo run --example company_control -p vadalog-engine`.

use vadalog_engine::Reasoner;

fn main() {
    let program = r#"
        % Ownership shares (comp1 owns w of comp2).
        Own("holding", "alpha", 0.60).
        Own("holding", "beta",  0.55).
        Own("alpha",   "target", 0.30).
        Own("beta",    "target", 0.25).
        Own("outsider","target", 0.45).

        % Example 2: direct control, plus joint control through msum.
        Own(x, y, w), w > 0.5 -> Control(x, y).
        Control(x, y), Own(y, z, w), v = msum(w, <y>), v > 0.5 -> Control(x, z).

        @output("Control").
    "#;

    let result = Reasoner::new()
        .reason_text(program)
        .expect("reasoning failed");

    println!("Control relationships (including joint control):");
    for fact in result.output("Control") {
        println!("  {fact}");
    }
    // "holding" controls alpha and beta directly, and therefore controls
    // "target" through their combined 55% stake, while "outsider" does not.
    assert!(result
        .output("Control")
        .iter()
        .any(|f| f.args[0].as_str() == Some("holding") && f.args[1].as_str() == Some("target")));
}
