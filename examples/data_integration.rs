//! Data integration / data exchange flavour: load an external CSV source via
//! `@bind`, map it into a target schema with existential ids, and check an
//! EGD on the result (the Doctors scenario of Section 6.5 in miniature).
//!
//! Run with `cargo run --example data_integration -p vadalog-engine`.

use std::io::Write;
use vadalog_engine::Reasoner;

fn main() {
    // Write a small CSV "source database" to a temp file.
    let dir = std::env::temp_dir().join("vadalog_example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv_path = dir.join("doctors.csv");
    let mut file = std::fs::File::create(&csv_path).expect("create csv");
    writeln!(file, "1001,dr_house,diagnostics,princeton").unwrap();
    writeln!(file, "1002,dr_wilson,oncology,princeton").unwrap();
    writeln!(file, "1003,dr_grey,surgery,seattle_grace").unwrap();
    drop(file);

    let program = format!(
        r#"
        @bind("Doctor", "csv:{}").

        Hospital("princeton", "nj"). Hospital("seattle_grace", "wa").

        % Source-to-target mapping with invented hospital ids.
        Doctor(npi, name, spec, hospital) -> TargetDoctor(npi, name, spec).
        Doctor(npi, name, spec, hospital) -> WorksAt(npi, hospital).
        Hospital(hname, state) -> TargetHospital(hid, hname, state).
        WorksAt(npi, hname), TargetHospital(hid, hname, state) -> Employment(npi, hid).

        % Functional dependency on the target, checked on ground values only.
        Dom(h1), Dom(h2), TargetHospital(h1, n, s1), TargetHospital(h2, n, s2) -> h1 = h2.

        @output("TargetDoctor").
        @output("Employment").
    "#,
        csv_path.display()
    );

    let result = Reasoner::new()
        .reason_text(&program)
        .expect("reasoning failed");

    println!("Target doctors:");
    for fact in result.output("TargetDoctor") {
        println!("  {fact}");
    }
    println!("\nEmployment (doctor id -> invented hospital id):");
    for fact in result.output("Employment") {
        println!("  {fact}");
    }
    println!("\nConstraint violations: {:?}", result.violations);
    std::fs::remove_file(&csv_path).ok();
}
