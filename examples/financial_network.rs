//! Company-control reasoning over a synthetic European-style ownership
//! network (the industrial validation of Section 6.4).
//!
//! A directed scale-free ownership graph is generated with the α/β/γ
//! parameters the paper reports learning from the real graph of financial
//! companies (α = 0.71, β = 0.09, γ = 0.2). Two reasoning tasks are run on
//! top of it:
//!
//! * **AllRand** — the company-control program of Example 2 (monotonic `msum`
//!   aggregation of ownership shares) over the whole graph;
//! * **QueryRand** — point queries `Control(c, y)` for specific companies,
//!   answered with the query-driven entry point (magic sets when the slice is
//!   plain Datalog — here aggregation forces the bottom-up fallback, which is
//!   exactly what the paper observes for its own query scenarios).
//!
//! Run with: `cargo run --example financial_network`

use vadalog_engine::Reasoner;
use vadalog_model::prelude::*;
use vadalog_workloads::ownership::{self, ScaleFreeParams};

fn main() {
    let companies = 2_000;
    let seed = 42;

    // ----------------------------------------------------------- generation
    let params = ScaleFreeParams::default();
    println!(
        "generating a scale-free ownership graph: {} companies (α={}, β={}, γ={})",
        companies, params.alpha, params.beta, params.gamma
    );
    let own_facts = ownership::scale_free_ownership(companies, params, seed);
    let edges = own_facts
        .iter()
        .filter(|f| f.predicate_name() == "Own")
        .count();
    println!("generated {} Own edges", edges);

    // -------------------------------------------------------------- AllRand
    // Example 2: Control(x, y) via direct majority or joint majority of
    // controlled companies (monotonic sum over contributors).
    let mut program = ownership::company_control_program();
    for f in &own_facts {
        program.add_fact(f.clone());
    }

    let result = Reasoner::new().reason(&program).expect("reasoning failed");
    let controls = result.output("Control");
    println!(
        "\nAllRand: {} Control facts derived in {} ms ({} facts total)",
        controls.len(),
        result.stats.execution_time.as_millis(),
        result.stats.total_facts
    );

    // A couple of illustrative control chains.
    let mut by_controller: std::collections::BTreeMap<String, usize> = Default::default();
    for f in &controls {
        if let Some(name) = f.args[0].as_str() {
            *by_controller.entry(name.to_string()).or_default() += 1;
        }
    }
    let mut top: Vec<(String, usize)> = by_controller.into_iter().collect();
    top.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("largest controllers:");
    for (company, count) in top.iter().take(5) {
        println!("  {company} controls {count} companies");
    }

    // ------------------------------------------------------------ QueryRand
    // Ask for the companies controlled by each of the five biggest
    // controllers, one query at a time (the paper's QueryRand averages ten
    // such queries).
    println!("\nQueryRand:");
    let reasoner = Reasoner::new();
    for (company, _) in top.iter().take(5) {
        let query = Atom {
            predicate: intern("Control"),
            terms: vec![Term::Const(Value::str(company)), Term::var("y")],
        };
        let start = std::time::Instant::now();
        let answer = reasoner
            .reason_query(&program, &query)
            .expect("query reasoning failed");
        println!(
            "  Control({company}, y): {} answers in {} ms (magic sets: {})",
            answer.answers.len(),
            start.elapsed().as_millis(),
            answer.used_magic_sets
        );
    }

    // ------------------------------------------------------- significant PSC
    // The Example 7 program (persons of significant control with existential
    // witnesses) over the majority-control edges of the same graph.
    let mut sig_program = ownership::significant_control_program();
    let controls_facts = ownership::majority_controls(&own_facts);
    println!(
        "\nsignificant-control scenario: {} majority-control edges",
        controls_facts.len()
    );
    for f in own_facts.iter().chain(controls_facts.iter()) {
        sig_program.add_fact(f.clone());
    }
    let sig = Reasoner::new()
        .reason(&sig_program)
        .expect("reasoning failed");
    println!(
        "StrongLink facts: {} ({} ms, {} isomorphism checks, {} facts suppressed)",
        sig.output("StrongLink").len(),
        sig.stats.execution_time.as_millis(),
        sig.stats.pipeline.strategy.isomorphism_checks,
        sig.stats.pipeline.facts_suppressed,
    );
}
