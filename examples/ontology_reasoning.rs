//! Ontological reasoning over a knowledge graph (requirement 2 of the paper).
//!
//! An OWL 2 QL-style company ontology is loaded together with an RDF-style
//! triple ABox, translated into Warded Datalog± and answered with
//! conjunctive queries under certain-answer semantics — the SPARQL / OWL 2 QL
//! entailment-regime route the paper attributes to Warded Datalog± via
//! TriQ-Lite.
//!
//! Run with: `cargo run --example ontology_reasoning`

use vadalog_engine::Reasoner;
use vadalog_ontology::prelude::*;

fn main() {
    // ------------------------------------------------------------------ TBox
    let mut onto = Ontology::new();

    // Class hierarchy.
    onto.add_axiom(Axiom::sub_class_of(
        ClassExpr::named("Bank"),
        ClassExpr::named("FinancialCompany"),
    ));
    onto.add_axiom(Axiom::sub_class_of(
        ClassExpr::named("FinancialCompany"),
        ClassExpr::named("Company"),
    ));

    // Every company is controlled by some (possibly unknown) person of
    // significant control — existential quantification in the rule head.
    onto.add_axiom(Axiom::sub_class_of(
        ClassExpr::named("Company"),
        ClassExpr::some_inverse("hasSignificantControlOver"),
    ));
    onto.add_axiom(Axiom::Domain(
        "hasSignificantControlOver".into(),
        "Person".into(),
    ));

    // controls relates companies; controlledBy is its inverse.
    onto.add_axiom(Axiom::Domain("controls".into(), "Company".into()));
    onto.add_axiom(Axiom::Range("controls".into(), "Company".into()));
    onto.add_axiom(Axiom::InverseProperties(
        "controls".into(),
        "controlledBy".into(),
    ));
    onto.add_axiom(Axiom::IrreflexiveProperty("controls".into()));

    // Example 1 of the paper: marriage is symmetric.
    onto.add_axiom(Axiom::SymmetricProperty("spouseOf".into()));

    // Persons and companies are disjoint.
    onto.add_axiom(Axiom::disjoint_classes(
        ClassExpr::named("Person"),
        ClassExpr::named("Company"),
    ));

    // ------------------------------------------------------------------ ABox
    // The data arrives as an RDF-style triple graph.
    let triples = TripleStore::from_triples(vec![
        Triple::typed("hsbc", "Bank"),
        Triple::typed("iba", "Company"),
        Triple::typed("acme_holdings", "FinancialCompany"),
        Triple::new("hsbc", "controls", "hsb"),
        Triple::new("hsb", "controls", "iba"),
        Triple::new("acme_holdings", "controls", "acme_retail"),
        Triple::new("alice", "hasSignificantControlOver", "hsbc"),
        Triple::new("alice", "spouseOf", "bob"),
    ]);
    triples.extend_ontology(&mut onto);

    println!(
        "ontology: {} TBox axioms, {} ABox assertions",
        onto.tbox_size(),
        onto.abox_size()
    );

    // -------------------------------------------------- translate and reason
    let program = translate(&onto, &TranslationOptions::default());
    println!("translated into {} warded rules\n", program.rules.len());

    let result = Reasoner::new().reason(&program).expect("reasoning failed");
    println!(
        "entailed instance: {} facts ({} ms)",
        result.stats.total_facts,
        result.stats.execution_time.as_millis()
    );
    if !result.violations.is_empty() {
        println!("constraint violations: {:?}", result.violations);
    }

    // The entailed knowledge graph, as triples again (anonymous witnesses
    // rendered as blank nodes).
    let entailed = TripleStore::from_facts(result.store.iter(), true);
    println!("\nentailed companies:");
    for t in entailed.with_predicate(RDF_TYPE) {
        if t.object == "Company" {
            println!("  {t}");
        }
    }

    // ------------------------------------------------------------- queries
    // Which individuals are certainly companies?
    let companies = ConjunctiveQuery::new(vec!["x"])
        .with_class_atom("Company", "x")
        .certain_answers(&onto)
        .unwrap();
    println!("\ncertain Company members: {companies:?}");

    // Who controls a company that itself controls something? (a join query)
    let indirect = ConjunctiveQuery::new(vec!["x", "z"])
        .with_property_atom("controls", "x", "y")
        .with_property_atom("controls", "y", "z")
        .certain_answers(&onto)
        .unwrap();
    println!("two-step control chains: {indirect:?}");

    // Is every company certainly controlled by *someone*? (boolean query with
    // an anonymous witness — true thanks to the existential axiom)
    let q = ConjunctiveQuery::boolean().with_property_terms(
        "hasSignificantControlOver",
        vadalog_ontology::query::QueryTerm::Var("p".into()),
        vadalog_ontology::query::QueryTerm::Individual("iba".into()),
    );
    println!(
        "some person has significant control over iba: {}",
        q.is_entailed(&onto).unwrap()
    );

    // Marriage symmetry from Example 1.
    let spouses = ConjunctiveQuery::new(vec!["x"])
        .with_property_terms(
            "spouseOf",
            vadalog_ontology::query::QueryTerm::Var("x".into()),
            vadalog_ontology::query::QueryTerm::Individual("alice".into()),
        )
        .certain_answers(&onto)
        .unwrap();
    println!("spouses of alice (via symmetry): {spouses:?}");
}
