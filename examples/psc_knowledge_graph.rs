//! Persons of significant control over a small knowledge graph (Examples 7
//! and 11 of the paper): existential quantification invents unknown
//! controllers, wardedness keeps the reasoning finite, and the certain-answer
//! post-processing separates ground conclusions from anonymous witnesses.
//!
//! Run with `cargo run --example psc_knowledge_graph -p vadalog-engine`.

use vadalog_engine::{Reasoner, ReasonerOptions};

fn main() {
    let program = r#"
        Company("HSBC"). Company("HSB"). Company("IBA").
        Controls("HSBC", "HSB"). Controls("HSB", "IBA").
        KeyPerson("alice", "HSBC").

        % Example 7: significantly controlled companies.
        Company(x) -> Owns(p, s, x).
        Owns(p, s, x) -> Stock(x, s).
        Owns(p, s, x) -> PSC(x, p).
        PSC(x, p), Controls(x, y) -> Owns(p, s, y).
        PSC(x, p), PSC(y, p) -> StrongLink(x, y).
        StrongLink(x, y) -> Owns(p, s, x).
        StrongLink(x, y) -> Owns(p, s, y).
        Stock(x, s) -> Company(x).

        % Known key persons are persons of significant control too.
        KeyPerson(p, x) -> PSC(x, p).

        @output("PSC").
        @output("StrongLink").
    "#;

    let reasoner = Reasoner::new();
    let result = reasoner.reason_text(program).expect("reasoning failed");

    println!("Persons of significant control (including anonymous witnesses):");
    for fact in result.output("PSC") {
        println!("  {fact}");
    }
    println!("\nStrong links between companies:");
    for fact in result.output("StrongLink") {
        println!("  {fact}");
    }

    // The same program restricted to certain answers (no labelled nulls).
    let certain = Reasoner::with_options(ReasonerOptions {
        certain_answers_only: true,
        ..Default::default()
    })
    .reason_text(program)
    .expect("reasoning failed");
    println!("\nCertain PSC answers (ground only):");
    for fact in certain.output("PSC") {
        println!("  {fact}");
    }

    println!(
        "\nTermination: {} candidate facts suppressed by Algorithm 1, {} isomorphism checks",
        result.stats.pipeline.strategy.suppressed,
        result.stats.pipeline.strategy.isomorphism_checks
    );
}
