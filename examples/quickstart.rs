//! Quickstart: company control with plain Datalog rules (Example 2 without
//! aggregation).
//!
//! Run with `cargo run --example quickstart -p vadalog-engine`.

use vadalog_engine::Reasoner;

fn main() {
    let program = r#"
        % Who controls whom, starting from direct majority ownership.
        Own("acme", "subsidiary", 0.62).
        Own("subsidiary", "leaf", 0.80).
        Own("acme", "minor", 0.10).

        Own(x, y, w), w > 0.5 -> Control(x, y).
        Control(x, y), Control(y, z) -> Control(x, z).

        @output("Control").
    "#;

    let result = Reasoner::new()
        .reason_text(program)
        .expect("reasoning failed");

    println!("Control relationships:");
    for fact in result.output("Control") {
        println!("  {fact}");
    }
    println!(
        "\n{} facts derived in {:?} ({} rules compiled)",
        result.stats.pipeline.facts_derived,
        result.stats.execution_time,
        result.stats.compiled_rules
    );
}
