//! Facade crate for the Vadalog reproduction workspace.
//!
//! Re-exports the public surface of every sub-crate so downstream users (and
//! the workspace-level integration tests under `tests/`) can depend on a
//! single crate.
//!
//! How the crates fit together — and the bit-identity contract they are all
//! built against — is documented in `docs/ARCHITECTURE.md`; the command-line
//! surface in `docs/CLI.md`.

pub use vadalog_analysis as analysis;
pub use vadalog_chase as chase;
pub use vadalog_engine as engine;
pub use vadalog_model as model;
pub use vadalog_ontology as ontology;
pub use vadalog_parser as parser;
pub use vadalog_rewrite as rewrite;
pub use vadalog_server as server;
pub use vadalog_storage as storage;
pub use vadalog_workloads as workloads;

pub use vadalog_engine::{Reasoner, ReasonerOptions, RunResult};
pub use vadalog_server::{ReasoningServer, ServerConfig};
