//! Integration tests for monotonic aggregation (Section 5, Example 10 and
//! the aggregation-based scenarios of Section 6.3).

use vadalog_engine::{Reasoner, ReasonerOptions, TerminationKind};
use vadalog_model::prelude::*;

/// Example 10: msum with contributor windowing, final values per group.
#[test]
fn example10_msum_groups() {
    let result = Reasoner::new()
        .reason_text(
            "P(1, 2, 5.0). P(1, 2, 3.0). P(1, 3, 7.0). P(2, 4, 2.0). P(2, 4, 3.0). P(2, 5, 1.0).\n\
             P(x, y, w), j = msum(w, <y>) -> Q(x, j).\n\
             @output(\"Q\").",
        )
        .unwrap();
    let q = result.output("Q");
    assert_eq!(q.len(), 2);
    assert!(q.contains(&Fact::new("Q", vec![Value::Int(1), Value::Float(12.0)])));
    assert!(q.contains(&Fact::new("Q", vec![Value::Int(2), Value::Float(4.0)])));
}

/// The AllPSC grouping of Example 12: one set of persons per company.
#[test]
fn munion_collects_person_sets() {
    let result = Reasoner::new()
        .reason_text(
            "KeyPers(\"c1\", \"alice\"). KeyPers(\"c1\", \"bob\"). KeyPers(\"c2\", \"carol\").\n\
             Pers(\"alice\"). Pers(\"bob\"). Pers(\"carol\").\n\
             Control(\"c1\", \"c2\").\n\
             KeyPers(x, p), Pers(p) -> PSC(x, p).\n\
             Control(y, x), PSC(y, p) -> PSC(x, p).\n\
             PSC(x, p), j = munion(p) -> AllPSC(x, j).\n\
             @output(\"AllPSC\").",
        )
        .unwrap();
    let all = result.output("AllPSC");
    assert_eq!(all.len(), 2);
    let c2 = all.iter().find(|f| f.args[0] == Value::str("c2")).unwrap();
    match &c2.args[1] {
        Value::Set(s) => assert_eq!(s.len(), 3, "c2 inherits alice and bob plus carol"),
        other => panic!("expected a set, got {other}"),
    }
}

/// mcount-based strong links: threshold filtering works and intermediate
/// counts never leak into the final output.
#[test]
fn mcount_threshold_and_final_values() {
    let src = "PSCF(\"x\", \"p1\"). PSCF(\"x\", \"p2\"). PSCF(\"x\", \"p3\").\n\
               PSCF(\"y\", \"p1\"). PSCF(\"y\", \"p2\"). PSCF(\"y\", \"p3\").\n\
               PSCF(\"z\", \"p1\").\n\
               PSCF(a, p), PSCF(b, p), a > b, w = mcount(p), w >= 2 -> Linked(a, b, w).\n\
               @output(\"Linked\").";
    let result = Reasoner::new().reason_text(src).unwrap();
    let linked = result.output("Linked");
    // Exactly one surviving group: (y, x) wait — "y" > "x" and they share 3
    // persons; z shares only one with anybody so never reaches the threshold.
    assert_eq!(linked.len(), 1);
    let f = &linked[0];
    assert_eq!(f.args[0], Value::str("y"));
    assert_eq!(f.args[1], Value::str("x"));
    assert_eq!(f.args[2], Value::Int(3), "only the final count is reported");
}

/// Monotonic aggregation composes with recursion (Example 2): the aggregate
/// feeds a recursive predicate and the reasoner still terminates.
#[test]
fn msum_inside_recursion_terminates() {
    let src = "Own(\"h\", \"a\", 0.6). Own(\"h\", \"b\", 0.6).\n\
               Own(\"a\", \"t\", 0.3). Own(\"b\", \"t\", 0.3).\n\
               Own(\"t\", \"deep\", 0.9).\n\
               Own(x, y, w), w > 0.5 -> Control(x, y).\n\
               Control(x, y), Own(y, z, w), v = msum(w, <y>), v > 0.5 -> Control(x, z).\n\
               @output(\"Control\").";
    for termination in [TerminationKind::Warded, TerminationKind::ExactDedup] {
        let result = Reasoner::with_options(ReasonerOptions {
            termination,
            ..Default::default()
        })
        .reason_text(src)
        .unwrap();
        let control = result.output("Control");
        assert!(control.contains(&Fact::new("Control", vec!["h".into(), "t".into()])));
        assert!(control.contains(&Fact::new("Control", vec!["h".into(), "deep".into()])));
        assert!(!control
            .iter()
            .any(|f| f.args[0] == Value::str("a") && f.args[1] == Value::str("t")));
    }
}
