//! Cross-engine agreement tests: the pipeline engine, the terminating chase
//! and the baseline engines must agree on ground answers for programs in
//! their common fragment.

use vadalog_chase::baselines::seminaive_datalog;
use vadalog_chase::{run_chase, ChaseOptions, WardedStrategy};
use vadalog_engine::Reasoner;
use vadalog_model::prelude::*;
use vadalog_parser::parse_program;

fn ground_facts_of(facts: &[Fact]) -> std::collections::BTreeSet<Fact> {
    facts.iter().filter(|f| f.is_ground()).cloned().collect()
}

#[test]
fn datalog_transitive_closure_agreement() {
    let src = "Edge(\"a\", \"b\"). Edge(\"b\", \"c\"). Edge(\"c\", \"d\"). Edge(\"d\", \"a\").\n\
               Edge(x, y) -> Reach(x, y).\n\
               Reach(x, y), Edge(y, z) -> Reach(x, z).\n\
               @output(\"Reach\").";
    let program = parse_program(src).unwrap();

    let engine = Reasoner::new().reason(&program).unwrap();
    let mut strategy = WardedStrategy::new();
    let chase = run_chase(&program, &mut strategy, &ChaseOptions::default());
    let seminaive = seminaive_datalog(&program, 100);

    let engine_reach = ground_facts_of(&engine.output("Reach"));
    let chase_reach = ground_facts_of(&chase.facts_of("Reach"));
    let seminaive_reach = ground_facts_of(&seminaive.facts_of("Reach"));

    assert_eq!(engine_reach.len(), 16, "4-cycle closure has 16 pairs");
    assert_eq!(engine_reach, chase_reach);
    assert_eq!(engine_reach, seminaive_reach);
}

#[test]
fn warded_program_with_existentials_agreement_on_ground_atoms() {
    let src = "Company(\"a\"). Company(\"b\"). Control(\"a\", \"b\"). KeyPerson(\"kim\", \"a\").\n\
               Company(x) -> KeyPerson(p, x).\n\
               Control(x, y), KeyPerson(p, x) -> KeyPerson(p, y).\n\
               @output(\"KeyPerson\").";
    let program = parse_program(src).unwrap();

    let engine = Reasoner::new().reason(&program).unwrap();
    let mut strategy = WardedStrategy::new();
    let chase = run_chase(&program, &mut strategy, &ChaseOptions::default());

    assert_eq!(
        ground_facts_of(&engine.output("KeyPerson")),
        ground_facts_of(&chase.facts_of("KeyPerson"))
    );
}

#[test]
fn rewriting_does_not_change_ground_answers() {
    let src = "KeyPerson(\"c1\", \"ann\"). KeyPerson(\"c2\", \"ann\").\n\
               Company(\"c1\"). Company(\"c2\"). Company(\"c3\").\n\
               Control(\"c1\", \"c3\").\n\
               KeyPerson(x, p) -> PSC(x, p).\n\
               Company(x) -> PSC(x, p).\n\
               Control(y, x), PSC(y, p) -> PSC(x, p).\n\
               PSC(x, p), PSC(y, p), x > y -> StrongLink(x, y).\n\
               @output(\"StrongLink\").";
    let program = parse_program(src).unwrap();

    let with_rewriting = Reasoner::new().reason(&program).unwrap();
    let without = Reasoner::with_options(vadalog_engine::ReasonerOptions {
        apply_rewriting: false,
        ..Default::default()
    })
    .reason(&program)
    .unwrap();

    let a = ground_facts_of(&with_rewriting.output("StrongLink"));
    let b = ground_facts_of(&without.output("StrongLink"));
    // Ground strong links derivable without nulls must be present in both.
    assert!(a.contains(&Fact::new("StrongLink", vec!["c2".into(), "c1".into()])));
    assert!(a.is_superset(&b) || b.is_superset(&a));
}

#[test]
fn parallel_sweep_agrees_with_chase_and_itself_at_every_thread_count() {
    // The same parity source as above, run through the engine at several
    // worker counts: every run must be bit-identical (same facts in the same
    // insertion order, same null ids), and all of them must agree with the
    // terminating chase on ground answers. The CI `parallel-determinism` job
    // additionally runs this whole test binary under VADALOG_PARALLELISM=1
    // and =4 and diffs the outputs.
    let src = "Company(\"a\"). Company(\"b\"). Control(\"a\", \"b\"). KeyPerson(\"kim\", \"a\").\n\
               Company(x) -> KeyPerson(p, x).\n\
               Control(x, y), KeyPerson(p, x) -> KeyPerson(p, y).\n\
               @output(\"KeyPerson\").";
    let program = parse_program(src).unwrap();

    let runs: Vec<_> = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            Reasoner::with_options(vadalog_engine::ReasonerOptions {
                parallelism: threads,
                ..Default::default()
            })
            .reason(&program)
            .unwrap()
        })
        .collect();
    for r in &runs[1..] {
        assert_eq!(
            runs[0].facts_of("KeyPerson"),
            r.facts_of("KeyPerson"),
            "engine output must be bit-identical across thread counts"
        );
        assert_eq!(
            runs[0].stats.pipeline.facts_derived,
            r.stats.pipeline.facts_derived
        );
    }

    let mut strategy = WardedStrategy::new();
    let chase = run_chase(&program, &mut strategy, &ChaseOptions::default());
    for r in &runs {
        assert_eq!(
            ground_facts_of(&r.output("KeyPerson")),
            ground_facts_of(&chase.facts_of("KeyPerson"))
        );
    }
}

#[test]
fn violations_agree_between_engine_and_chase() {
    let src = "Own(\"a\", \"a\", 0.2). Own(\"a\", \"b\", 0.9).\n\
               Own(x, y, w) -> SoftLink(x, y).\n\
               Own(x, x, w) -> false.\n\
               @output(\"SoftLink\").";
    let program = parse_program(src).unwrap();
    let engine = Reasoner::new().reason(&program).unwrap();
    let mut strategy = WardedStrategy::new();
    let chase = run_chase(&program, &mut strategy, &ChaseOptions::default());
    assert_eq!(engine.violations.len(), 1);
    assert_eq!(chase.violations.len(), 1);
}
