//! End-to-end tests for the Harmful-Join Elimination algorithm of
//! Section 3.2, centred on the paper's own Examples 5, 7 and 9.
//!
//! The key claims checked here:
//!
//! * the rewriting removes every harmful join and keeps the program warded
//!   (so Theorem 2 applies and the termination strategy is correct);
//! * the rewritten program is *equivalent* for the reasoning task: the
//!   ground answers of the output predicates coincide with those computed by
//!   the exhaustive-isomorphism baseline on the original program;
//! * the shape of the output matches Example 9: a grounded copy of the
//!   harmful rule plus transitive-closure-style rules obtained by cause
//!   elimination.

use std::collections::BTreeSet;
use vadalog_analysis::{analyze_program, classify};
use vadalog_engine::{Reasoner, ReasonerOptions, TerminationKind};
use vadalog_model::prelude::*;
use vadalog_parser::parse_program;
use vadalog_rewrite::{eliminate_harmful_joins, prepare_for_execution, DOM_PREDICATE};

/// Example 7 (the running company-control scenario) with its EDB.
fn example7() -> Program {
    parse_program(
        "Company(\"HSBC\"). Company(\"HSB\"). Company(\"IBA\").\n\
         Controls(\"HSBC\", \"HSB\"). Controls(\"HSB\", \"IBA\").\n\
         Company(x) -> Owns(p, s, x).\n\
         Owns(p, s, x) -> Stock(x, s).\n\
         Owns(p, s, x) -> PSC(x, p).\n\
         PSC(x, p), Controls(x, y) -> Owns(p, s, y).\n\
         PSC(x, p), PSC(y, p) -> StrongLink(x, y).\n\
         StrongLink(x, y) -> Owns(p, s, x).\n\
         StrongLink(x, y) -> Owns(p, s, y).\n\
         Stock(x, s) -> Company(x).\n\
         @output(\"StrongLink\").",
    )
    .unwrap()
}

/// Example 5: the PSC program whose last rule contains a harmful
/// (non-dangerous) join on `p`.
fn example5() -> Program {
    parse_program(
        "KeyPerson(\"HSBC\", \"alice\"). KeyPerson(\"HSB\", \"alice\").\n\
         Company(\"HSBC\"). Company(\"HSB\"). Company(\"IBA\").\n\
         Control(\"HSBC\", \"HSB\"). Control(\"HSB\", \"IBA\").\n\
         KeyPerson(x, p) -> PSC(x, p).\n\
         Company(x) -> PSC(x, p).\n\
         Control(y, x), PSC(y, p) -> PSC(x, p).\n\
         PSC(x, p), PSC(y, p), x > y -> StrongLink(x, y).\n\
         @output(\"StrongLink\").",
    )
    .unwrap()
}

fn ground_output(result: &vadalog_engine::RunResult, predicate: &str) -> BTreeSet<Fact> {
    result
        .output(predicate)
        .into_iter()
        .filter(Fact::is_ground)
        .collect()
}

#[test]
fn example5_has_a_harmful_join_and_hje_removes_it() {
    let program = example5();
    let before = analyze_program(&program);
    assert!(before.is_warded());
    assert!(
        before.harmful_join_count() >= 1,
        "Example 5 must exhibit a harmful join"
    );

    let outcome = eliminate_harmful_joins(&program);
    let after = analyze_program(&outcome.program);
    assert_eq!(after.harmful_join_count(), 0);
    assert!(classify(&outcome.program).is_harmless_warded);
}

#[test]
fn example9_shape_grounded_copy_and_dom_guard() {
    // The rewriting of Example 5's harmful rule (shown in Example 9 of the
    // paper) introduces a Dom-guarded grounded copy of the predicate holding
    // the harmful variable.
    let outcome = eliminate_harmful_joins(&example5());
    let program = outcome.program;
    let uses_dom = program.rules.iter().any(|r| {
        r.body_predicates()
            .iter()
            .any(|p| p.as_str() == DOM_PREDICATE)
    });
    assert!(
        uses_dom,
        "expected a Dom(*)-guarded grounded copy, as in Example 9"
    );
    // and some rule still derives StrongLink
    assert!(program.rules.iter().any(|r| r
        .head_predicates()
        .iter()
        .any(|p| p.as_str() == "StrongLink")));
}

#[test]
fn hje_preserves_ground_answers_on_example5() {
    let program = example5();

    // Reference: exhaustive isomorphism baseline on the *original* program
    // (no rewriting applied).
    let reference = Reasoner::with_options(ReasonerOptions {
        termination: TerminationKind::TrivialIso,
        apply_rewriting: false,
        ..ReasonerOptions::default()
    })
    .reason(&program)
    .unwrap();

    // The default pipeline: logic optimizer + HJE + warded strategy.
    let rewritten = Reasoner::new().reason(&program).unwrap();

    assert_eq!(
        ground_output(&reference, "StrongLink"),
        ground_output(&rewritten, "StrongLink"),
        "harmful-join elimination changed the certain StrongLink answers"
    );
    // alice links HSBC and HSB, so at least one strong link must exist
    assert!(!ground_output(&rewritten, "StrongLink").is_empty());
}

#[test]
fn example7_strategies_agree_and_find_the_direct_links() {
    // Example 7 keeps its harmful join through a *recursive* null-propagation
    // cycle (PSC → StrongLink → Owns → PSC). The HJE implementation unfolds
    // indirect causes only up to a bounded depth (see the UNFOLD_BUDGET note
    // in vadalog-rewrite::hje), so strong links that require propagating an
    // anonymous PSC across more than one Controls step are a documented
    // under-approximation. What must hold:
    //
    // * both termination strategies agree on the rewritten program,
    // * every company is strongly linked to itself and to the companies it
    //   directly controls / is controlled by (the one-step propagation of
    //   the shared anonymous PSC),
    // * the answers strictly extend what isomorphism-pruning *without* the
    //   rewriting finds (Example 8's point: iso-pruning alone loses the
    //   cross-company links).
    let program = example7();
    let warded = Reasoner::new().reason(&program).unwrap();
    let trivial = Reasoner::with_options(ReasonerOptions {
        termination: TerminationKind::TrivialIso,
        ..ReasonerOptions::default()
    })
    .reason(&program)
    .unwrap();
    assert_eq!(
        ground_output(&warded, "StrongLink"),
        ground_output(&trivial, "StrongLink")
    );

    let links = ground_output(&warded, "StrongLink");
    for (a, b) in [
        ("HSBC", "HSBC"),
        ("HSB", "HSB"),
        ("IBA", "IBA"),
        ("HSBC", "HSB"),
        ("HSB", "HSBC"),
        ("HSB", "IBA"),
        ("IBA", "HSB"),
    ] {
        assert!(
            links.contains(&Fact::new("StrongLink", vec![a.into(), b.into()])),
            "missing StrongLink({a}, {b})"
        );
    }

    let unrewritten_iso_only = Reasoner::with_options(ReasonerOptions {
        termination: TerminationKind::TrivialIso,
        apply_rewriting: false,
        ..ReasonerOptions::default()
    })
    .reason(&program)
    .unwrap();
    let naive = ground_output(&unrewritten_iso_only, "StrongLink");
    assert!(
        naive.is_subset(&links) && naive.len() < links.len(),
        "the harmful-join rewriting must recover links that bare iso-pruning loses"
    );
}

#[test]
fn prepared_example7_satisfies_algorithm1_preconditions() {
    let prepared = prepare_for_execution(&example7());
    let analysis = analyze_program(&prepared);
    assert!(analysis.is_warded());
    assert_eq!(analysis.harmful_join_count(), 0);
    for rule in &prepared.rules {
        if rule.has_existentials() {
            assert!(
                rule.is_linear(),
                "existential rule is not linear after preparation: {rule}"
            );
        }
        assert!(rule.head_atoms().len() <= 1 || !rule.is_tgd());
    }
}

#[test]
fn hje_terminates_and_reports_its_work() {
    // Example 5's null-propagation cycle makes the unfolding hit the bounded
    // depth (outcome.complete may be false); the contract is that the pass
    // always terminates, reports its effort, and still emits a harmless
    // warded program (the grounded copies act as the safe fallback).
    let outcome = eliminate_harmful_joins(&example5());
    assert!(outcome.rounds >= 1);
    assert!(outcome.generated_rules >= 1);
    assert!(classify(&outcome.program).is_harmless_warded);
}

#[test]
fn termination_structures_are_exercised_on_example7() {
    // The warded strategy must actually cut the (otherwise infinite) chase of
    // Example 7 and record patterns in the summary structure.
    let result = Reasoner::new().reason(&example7()).unwrap();
    let strategy = &result.stats.pipeline.strategy;
    assert!(
        result.stats.pipeline.facts_suppressed > 0,
        "Example 7 has an infinite chase; the strategy must suppress something"
    );
    assert!(strategy.isomorphism_checks > 0);
    // The whole run stays tiny: this is the paper's bounded-memory claim in
    // miniature (three companies produce a handful of facts, not thousands).
    assert!(result.stats.total_facts < 500);
}
