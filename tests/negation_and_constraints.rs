//! End-to-end tests for the modelling features of Sections 2 and 5 that go
//! beyond plain TGDs: stratified negation, negative constraints (`→ ⊥`),
//! equality-generating dependencies, and the `Dom(*)` active-domain guard of
//! Example 6.

use vadalog_engine::{Reasoner, ReasonerOptions};
use vadalog_model::prelude::*;
use vadalog_parser::parse_program;

// ------------------------------------------------------------- negation

#[test]
fn stratified_negation_computes_the_complement() {
    // Active companies are companies not known to be dissolved.
    let src = "Company(\"a\"). Company(\"b\"). Company(\"c\").\n\
               Dissolved(\"b\").\n\
               Company(x), not Dissolved(x) -> Active(x).\n\
               @output(\"Active\").";
    let result = Reasoner::new().reason_text(src).unwrap();
    let active: Vec<Fact> = result.output("Active");
    assert_eq!(active.len(), 2);
    assert!(active.contains(&Fact::new("Active", vec!["a".into()])));
    assert!(active.contains(&Fact::new("Active", vec!["c".into()])));
    assert!(!active.contains(&Fact::new("Active", vec!["b".into()])));
}

#[test]
fn negation_composes_with_recursion_across_strata() {
    // Reachability in stratum 0, then "isolated" nodes in stratum 1.
    let src = "Edge(\"a\", \"b\"). Edge(\"b\", \"c\"). Node(\"a\"). Node(\"b\"). Node(\"c\"). Node(\"d\").\n\
               Edge(x, y) -> Reach(x, y).\n\
               Reach(x, y), Edge(y, z) -> Reach(x, z).\n\
               Reach(x, y) -> Connected(x).\n\
               Reach(x, y) -> Connected(y).\n\
               Node(x), not Connected(x) -> Isolated(x).\n\
               @output(\"Isolated\").";
    let result = Reasoner::new().reason_text(src).unwrap();
    let isolated = result.output("Isolated");
    assert_eq!(isolated, vec![Fact::new("Isolated", vec!["d".into()])]);
}

#[test]
fn non_stratifiable_negation_is_detected_by_the_analysis() {
    use vadalog_analysis::PredicateGraph;
    let src = "P(x), not Q(x) -> Q(x).";
    let program = parse_program(src).unwrap();
    let graph = PredicateGraph::build(&program);
    assert!(graph.stratify().is_err());
}

// ----------------------------------------------------- negative constraints

#[test]
fn negative_constraints_report_violations_without_stopping_reasoning() {
    // Rule 6 of Example 6: no company may own itself.
    let src = "Own(\"a\", \"a\", 0.3). Own(\"a\", \"b\", 0.7).\n\
               Own(x, x, w) -> false.\n\
               Own(x, y, w), w > 0.5 -> Control(x, y).\n\
               @output(\"Control\").";
    let result = Reasoner::new().reason_text(src).unwrap();
    assert_eq!(
        result.violations.len(),
        1,
        "the self-ownership must be flagged"
    );
    // reasoning still produced the unrelated control fact
    assert_eq!(
        result.output("Control"),
        vec![Fact::new("Control", vec!["a".into(), "b".into(),])]
    );
}

#[test]
fn satisfied_constraints_stay_silent() {
    let src = "Own(\"a\", \"b\", 0.6).\n\
               Own(x, x, w) -> false.\n\
               @output(\"Own\").";
    let result = Reasoner::new().reason_text(src).unwrap();
    assert!(result.violations.is_empty());
}

// ------------------------------------------------------------------- EGDs

#[test]
fn egd_violations_are_reported_on_ground_data() {
    // Example 6, rule 5: an incorporation must have a unique owner.
    let src = "Incorp(\"y\", \"z\").\n\
               Own(\"o1\", \"y\", 0.6). Own(\"o2\", \"z\", 0.6).\n\
               Incorp(y, z), Own(x1, y, w1), Own(x2, z, w2) -> x1 = x2.\n\
               @output(\"Incorp\").";
    let result = Reasoner::new().reason_text(src).unwrap();
    assert!(
        !result.violations.is_empty(),
        "distinct owners o1/o2 must violate the EGD"
    );
}

#[test]
fn egds_hold_when_the_equated_values_coincide() {
    let src = "Incorp(\"y\", \"z\").\n\
               Own(\"o\", \"y\", 0.6). Own(\"o\", \"z\", 0.6).\n\
               Incorp(y, z), Own(x1, y, w1), Own(x2, z, w2) -> x1 = x2.\n\
               @output(\"Incorp\").";
    let result = Reasoner::new().reason_text(src).unwrap();
    assert!(result.violations.is_empty());
}

// ------------------------------------------------------------------ Dom(*)

#[test]
fn dom_guard_restricts_rules_to_ground_values() {
    // Example 6 uses Dom(*) so the EGD is never checked against labelled
    // nulls produced by the existential rule. Here the same guard keeps a
    // copy rule from propagating anonymous witnesses.
    let src = "Company(\"a\").\n\
               Company(x) -> Owns(p, s, x).\n\
               Dom(p), Owns(p, s, x) -> KnownOwner(p, x).\n\
               @output(\"KnownOwner\").";
    let result = Reasoner::new().reason_text(src).unwrap();
    // The only Owns fact has an anonymous owner, so the Dom guard filters it.
    assert!(result.output("KnownOwner").is_empty());
    assert!(!result.facts_of("Owns").is_empty());

    // With a ground owner present, the guarded rule fires for it.
    let src_with_ground = "Company(\"a\"). Owns(\"alice\", \"60\", \"a\").\n\
               Company(x) -> Owns(p, s, x).\n\
               Dom(p), Owns(p, s, x) -> KnownOwner(p, x).\n\
               @output(\"KnownOwner\").";
    let result = Reasoner::new().reason_text(src_with_ground).unwrap();
    assert_eq!(
        result.output("KnownOwner"),
        vec![Fact::new("KnownOwner", vec!["alice".into(), "a".into()])]
    );
}

// ------------------------------------------- certain answers + constraints

#[test]
fn certain_answer_post_processing_composes_with_constraints() {
    let options = ReasonerOptions {
        certain_answers_only: true,
        ..ReasonerOptions::default()
    };
    let src = "Company(\"a\"). Company(\"b\"). Control(\"a\", \"b\"). KeyPerson(\"bob\", \"a\").\n\
               Company(x) -> KeyPerson(p, x).\n\
               Control(x, y), KeyPerson(p, x) -> KeyPerson(p, y).\n\
               KeyPerson(p, x), Control(x, x) -> false.\n\
               @output(\"KeyPerson\").";
    let result = Reasoner::with_options(options).reason_text(src).unwrap();
    assert!(result.violations.is_empty());
    assert!(result.output("KeyPerson").iter().all(Fact::is_ground));
    assert!(result
        .output("KeyPerson")
        .contains(&Fact::new("KeyPerson", vec!["bob".into(), "b".into()])));
}
