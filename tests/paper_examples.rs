//! Cross-crate integration tests: the worked examples of the paper, end to
//! end through parser → analysis → rewriting → engine.

use vadalog_analysis::{classify, Fragment};
use vadalog_engine::{Reasoner, ReasonerOptions, TerminationKind};
use vadalog_model::prelude::*;
use vadalog_parser::parse_program;

/// Example 1: marriage symmetry — a linear Datalog rule over a 5-ary
/// relation (the "multi-attributed graph" motivation).
#[test]
fn example1_spouse_symmetry() {
    let result = Reasoner::new()
        .reason_text(
            "Spouse(\"ann\", \"bo\", 1999, \"rome\", 0).\n\
             Spouse(x, y, s, l, e) -> Spouse(y, x, s, l, e).\n\
             @output(\"Spouse\").",
        )
        .unwrap();
    assert_eq!(result.output("Spouse").len(), 2);
}

/// Example 3 + the instance of Section 2.1: the answer must contain the
/// ground KeyPerson conclusions and be finite despite the existential rule.
#[test]
fn example3_key_persons() {
    let result = Reasoner::new()
        .reason_text(
            "Company(\"a\"). Company(\"b\"). Company(\"c\").\n\
             Control(\"a\", \"b\"). Control(\"a\", \"c\"). KeyPerson(\"Bob\", \"a\").\n\
             Company(x) -> KeyPerson(p, x).\n\
             Control(x, y), KeyPerson(p, x) -> KeyPerson(p, y).\n\
             @output(\"KeyPerson\").",
        )
        .unwrap();
    let kp = result.output("KeyPerson");
    for company in ["a", "b", "c"] {
        assert!(
            kp.iter()
                .any(|f| f.args[0] == Value::str("Bob") && f.args[1] == Value::str(company)),
            "Bob must be a key person of {company}"
        );
    }
    assert!(kp.len() < 50, "the chase must have been cut finitely");
}

/// Examples 4 and 5 are about wardedness itself: check the classifier
/// against the paper's statements.
#[test]
fn examples_4_and_5_wardedness() {
    let e4 = parse_program("P(x) -> Q(z, x).\nQ(x, y), P(y) -> T(x).").unwrap();
    assert!(classify(&e4).is_warded);

    let e5 = parse_program(
        "KeyPerson(x, p) -> PSC(x, p).\n\
         Company(x) -> PSC(x, p).\n\
         Control(y, x), PSC(y, p) -> PSC(x, p).\n\
         PSC(x, p), PSC(y, p), x > y -> StrongLink(x, y).",
    )
    .unwrap();
    let report = classify(&e5);
    assert!(report.is_warded);
    assert!(!report.is_harmless_warded, "Example 5 has a harmful join");
    assert_eq!(report.primary(), Fragment::Warded);
}

/// Example 6: constraints and EGDs with the Dom discipline.
#[test]
fn example6_soft_links_with_constraints() {
    let result = Reasoner::new()
        .reason_text(
            "Own(\"a\", \"b\", 0.3). Own(\"a\", \"c\", 0.4). Incorp(\"b\", \"c\").\n\
             Own(x, y, w) -> SoftLink(x, y).\n\
             SoftLink(x, y) -> SoftLink(y, x).\n\
             Own(z, x, w1), Own(z, y, w2) -> SoftLink(x, y).\n\
             Incorp(x, y) -> Own(z, x, w1), Own(z, y, w2).\n\
             Own(x, x, w) -> false.\n\
             @output(\"SoftLink\").",
        )
        .unwrap();
    let links = result.output("SoftLink");
    assert!(links.contains(&Fact::new("SoftLink", vec!["b".into(), "c".into()])));
    assert!(links.contains(&Fact::new("SoftLink", vec!["b".into(), "a".into()])));
    // No company owns itself in this instance.
    assert!(result.violations.is_empty());
}

/// Example 7 (the running example): termination and sensible answers under
/// both the warded strategy and the trivial baseline.
#[test]
fn example7_running_example_terminates_under_both_strategies() {
    let src = "Company(\"HSBC\"). Company(\"HSB\"). Company(\"IBA\").\n\
               Controls(\"HSBC\", \"HSB\"). Controls(\"HSB\", \"IBA\").\n\
               Company(x) -> Owns(p, s, x).\n\
               Owns(p, s, x) -> Stock(x, s).\n\
               Owns(p, s, x) -> PSC(x, p).\n\
               PSC(x, p), Controls(x, y) -> Owns(p, s, y).\n\
               PSC(x, p), PSC(y, p) -> StrongLink(x, y).\n\
               StrongLink(x, y) -> Owns(p, s, x).\n\
               StrongLink(x, y) -> Owns(p, s, y).\n\
               Stock(x, s) -> Company(x).\n\
               @output(\"StrongLink\").";
    let warded = Reasoner::new().reason_text(src).unwrap();
    let trivial = Reasoner::with_options(ReasonerOptions {
        termination: TerminationKind::TrivialIso,
        ..Default::default()
    })
    .reason_text(src)
    .unwrap();

    let pairs = |r: &vadalog_engine::RunResult| -> std::collections::BTreeSet<(Value, Value)> {
        r.output("StrongLink")
            .iter()
            .map(|f| (f.args[0].clone(), f.args[1].clone()))
            .collect()
    };
    assert!(!pairs(&warded).is_empty());
    assert_eq!(pairs(&warded), pairs(&trivial));
    // Both strategies keep the instance finite and small; the warded one may
    // store a few more facts (its isomorphism checks are tree-local) but wins
    // on check cost — which is what Figure 7 measures.
    assert!(warded.stats.total_facts < 2_000);
    assert!(trivial.stats.total_facts < 2_000);
}

/// Example 9's promise: after harmful-join elimination, StrongLink facts
/// derivable through shared anonymous controllers are still found, now via
/// the control hierarchy directly.
#[test]
fn harmful_join_elimination_preserves_control_derived_links() {
    let src = "Company(\"a\"). Company(\"b\").\n\
               Control(\"a\", \"b\").\n\
               KeyPerson(\"a\", \"kim\").\n\
               KeyPerson(x, p) -> PSC(x, p).\n\
               Company(x) -> PSC(x, p).\n\
               Control(y, x), PSC(y, p) -> PSC(x, p).\n\
               PSC(x, p), PSC(y, p), x > y -> StrongLink(x, y).\n\
               @output(\"StrongLink\").";
    let result = Reasoner::new().reason_text(src).unwrap();
    // b > a lexicographically, and they share kim (and the anonymous PSC of
    // a propagated to b), so the link must be found.
    assert!(result
        .output("StrongLink")
        .contains(&Fact::new("StrongLink", vec!["b".into(), "a".into()])));
}

/// Example 14 (Section 7): the Whistle/Cow program used to discuss
/// restricted-chase pitfalls must terminate and keep both Cow derivations.
#[test]
fn example14_whistle_cow() {
    let result = Reasoner::new()
        .reason_text(
            "Whistle(1, 1, 2, 3). Young(1).\n\
             Whistle(a, a, b, c) -> Whistle(b, b, a, c).\n\
             Whistle(a, a, b, c) -> Cow(a, b, h).\n\
             Cow(a, b, h), Young(a) -> Cow(b, a, h).\n\
             @output(\"Cow\").",
        )
        .unwrap();
    let cows = result.facts_of("Cow");
    assert!(cows.iter().any(|f| f.args[0] == Value::Int(1)));
    assert!(cows.iter().any(|f| f.args[0] == Value::Int(2)));
    assert!(cows.len() < 30);
}
